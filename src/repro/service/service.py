"""`MonitorService` — batched, multi-engine event ingestion.

The service fronts N independent :class:`~repro.runtime.engine.MonitoringEngine`
shards behind one ``emit()`` interface:

* the :class:`~repro.service.router.ShardRouter` sends each event to the
  shard(s) owning the slices it belongs to (anchor-parameter routing;
  anchor-free events broadcast, pinned properties stay whole);
* **thread mode** (the default) gives each shard a bounded FIFO queue and
  a dedicated worker thread; ``emit()`` applies backpressure by blocking
  when a shard's queue is full, and ``emit_batch()`` amortizes routing and
  queue locking over many events;
* **inline mode** dispatches synchronously in the caller's thread — fully
  deterministic, used by the determinism tests and the scaling benchmark
  (on one core the win of sharding is algorithmic: per-shard state, hence
  per-shard O(state) GC scans, shrinks by the shard count);
* **process mode** (``mode="process"`` or ``backend="process"``) runs each
  shard engine in a forked worker process fed serialized event batches —
  true multi-core execution for CPU-bound monitoring; see
  :mod:`repro.service.process_backend`.  Shards are checkpointed and
  migrated via the :mod:`repro.persist` snapshot codec, and the whole
  service checkpoints/restores with :meth:`MonitorService.checkpoint` /
  :meth:`MonitorService.restore` (all modes);
* verdicts from all shards land in one merged
  :class:`~repro.service.aggregate.VerdictLog`; statistics aggregate
  exactly via :func:`~repro.service.aggregate.merge_stats`.

Per-slice event order is preserved: one emitter enqueues to each shard in
emission order, each shard processes its queue FIFO, and the router
guarantees a slice never spans shards — so verdict *multisets* equal the
single-engine run even though cross-shard interleaving is scheduling
dependent (thread mode) or trivially sequential (inline mode).

Shard engines share the caller's compiled properties: compiled artifacts
(templates, enable/coenable analyses) are immutable at runtime, and each
engine builds its own indexing trees and statistics.  Handlers attached to
the compiled properties fire in shard worker threads under thread mode.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..core.errors import PersistError, RegistryError, ServiceError, UnknownEventError
from ..obs.catalogue import declare as _declare_metric
from ..obs.telemetry import Telemetry, as_telemetry
from ..runtime.engine import MonitoringEngine
from ..runtime.instance import MonitorInstance
from ..runtime.refs import SymbolRegistry
from ..runtime.statistics import MonitorStats
from ..spec.compiler import CompiledProperty
from ..spec.registry import (
    PORTABLE_ORIGIN_KINDS,
    PropertyRegistry,
    normalize_properties,
)
from .aggregate import StatsKey, VerdictLog, VerdictRecord, merge_stats
from .router import ShardRouter

__all__ = ["MonitorService", "ingest_symbolic"]

#: Service-checkpoint container identity (see :meth:`MonitorService.checkpoint`).
SERVICE_CHECKPOINT_FORMAT = "repro-service-checkpoint"
#: Version 2 added the dynamic property registry record.
SERVICE_CHECKPOINT_VERSION = 2

#: One routed delivery sitting in a shard queue: the event, its binding,
#: and the router's per-shard :data:`repro.service.router.Delivery` plan.
_Delivery = tuple[str, Mapping[str, Any], "tuple"]

#: Service-level verdict callback.
ServiceVerdictCallback = Callable[[VerdictRecord], None]


def _as_registry(specs: Any) -> PropertyRegistry:
    """Normalize the accepted spec forms into a property registry."""
    if isinstance(specs, PropertyRegistry):
        registry = specs.clone()
    else:
        registry = PropertyRegistry.from_specs(specs)
    if not any(True for _ in registry.loaded()):
        raise ValueError("MonitorService needs at least one property")
    return registry


def _check_service_checkpoint(checkpoint: Mapping[str, Any], shards: int) -> list:
    """Validate a service checkpoint container; returns the engine snapshots."""
    if checkpoint.get("format") != SERVICE_CHECKPOINT_FORMAT:
        raise PersistError(
            f"not a service checkpoint (format={checkpoint.get('format')!r})"
        )
    if checkpoint.get("version") != SERVICE_CHECKPOINT_VERSION:
        raise PersistError(
            f"unsupported service checkpoint version {checkpoint.get('version')!r}"
        )
    if checkpoint.get("shards") != shards:
        raise PersistError(
            f"checkpoint was taken with {checkpoint.get('shards')} shards, "
            f"restore target has {shards} (resharding is not supported yet)"
        )
    return checkpoint["engines"]


def _anchor_pin_assignments(
    checkpoint: Mapping[str, Any], router: ShardRouter
) -> dict[str, int]:
    """Which shard owns each anchor-position symbol of a checkpoint.

    A restored stand-in object's identity hash would route its events to
    an arbitrary shard; the checkpoint knows the truth — the shard whose
    engine snapshot holds the symbol's monitors (or touched bindings) for
    an anchored property.  The assignment is unique because the original
    placement came from one global identity hash.
    """
    pins: dict[str, int] = {}
    for route in router.routes:
        if route is None or route.anchor is None:
            continue
        for shard, snapshot in enumerate(checkpoint["engines"]):
            runtime = snapshot["runtimes"][route.index]
            if runtime is None:
                continue
            candidates = [
                payload["params"].get(route.anchor)
                for payload in runtime["monitors"]
            ] + [record["params"].get(route.anchor) for record in runtime["touched"]]
            for symbol in candidates:
                if symbol is None or symbol.startswith("!dead:"):
                    continue
                previous = pins.setdefault(symbol, shard)
                if previous != shard:
                    raise PersistError(
                        f"checkpoint is inconsistent: anchor symbol {symbol!r} "
                        f"appears on shards {previous} and {shard}"
                    )
    return pins


def _checkpoint_symbols(checkpoint: Mapping[str, Any]) -> set[str]:
    """Every live symbol a service checkpoint mentions (engines + router)."""
    symbols: set[str] = set()
    for snapshot in checkpoint["engines"]:
        for runtime in snapshot["runtimes"]:
            if runtime is None:
                continue
            for record in runtime["touched"]:
                symbols.update(record["params"].values())
            for monitor in runtime["monitors"]:
                symbols.update(
                    symbol
                    for symbol in monitor["params"].values()
                    if not symbol.startswith("!dead:")
                )
    for record in checkpoint.get("router", {}).get("sticky", {}).values():
        symbols.update(record.get("assoc", {}))
        for _domain, touch_symbols, _mask in record.get("touch_all", ()):
            symbols.update(touch_symbols)
    return symbols


class _ShardQueue:
    """Bounded FIFO of deliveries with drain accounting and backpressure.

    Optionally instrumented: a depth gauge tracks the queued-delivery
    level, a wait histogram records producer blocking time while the
    queue is full, and a lag histogram records how long the queue head
    sat waiting before a worker took it (the drain-loop lag).  All three
    are pre-labelled children — the queue never touches a family.
    """

    __slots__ = (
        "_items", "_capacity", "_pending", "_closed", "_failed", "_lock",
        "_changed", "_depth", "_wait", "_lag", "_head_since", "_wait_cell",
        "_saturation", "delay",
    )

    def __init__(
        self,
        capacity: int,
        depth_gauge: Any = None,
        wait_hist: Any = None,
        lag_hist: Any = None,
        wait_cell: Any = None,
        saturation_cb: Any = None,
    ):
        self._items: list[_Delivery] = []
        self._capacity = capacity
        #: Deliveries enqueued but not yet fully processed by the worker.
        self._pending = 0
        self._closed = False
        self._failed = False
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._depth = depth_gauge
        self._wait = wait_hist
        self._lag = lag_hist
        #: Attribution cell charged with queue-head wait (``queue-wait``).
        self._wait_cell = wait_cell
        #: Flight-recorder hook fired when the producer had to block.
        self._saturation = saturation_cb
        #: When the current queue head was enqueued (None while empty).
        self._head_since: float | None = None
        #: Fault-injection hook: seconds to stall this put (queue faults).
        self.delay: "Callable[[], float] | None" = None

    def put_many(self, deliveries: Sequence[_Delivery]) -> None:
        if self.delay is not None:
            pause = self.delay()
            if pause > 0:
                time.sleep(pause)
        start = 0
        while start < len(deliveries):
            saturated = False
            with self._changed:
                waited_from = (
                    perf_counter()
                    if self._wait is not None and len(self._items) >= self._capacity
                    else None
                )
                while (
                    len(self._items) >= self._capacity
                    and not self._closed
                    and not self._failed
                ):
                    saturated = True
                    self._changed.wait()
                if waited_from is not None:
                    self._wait.observe(perf_counter() - waited_from)
                if self._closed:
                    raise ServiceError("emit on a closed MonitorService")
                if self._failed:
                    return  # the service surfaces the worker's error
                room = max(1, self._capacity - len(self._items))
                chunk = deliveries[start : start + room]
                if not self._items and (
                    self._lag is not None or self._wait_cell is not None
                ):
                    self._head_since = perf_counter()
                self._items.extend(chunk)
                self._pending += len(chunk)
                start += len(chunk)
                if self._depth is not None:
                    self._depth.set(len(self._items))
                self._changed.notify_all()
            if saturated and self._saturation is not None:
                self._saturation()

    def take(self, limit: int) -> list[_Delivery] | None:
        """Up to ``limit`` deliveries; ``None`` once closed and empty."""
        with self._changed:
            while not self._items and not self._closed:
                self._changed.wait()
            if not self._items:
                return None
            batch = self._items[:limit]
            del self._items[:limit]
            if self._head_since is not None:
                now = perf_counter()
                if self._lag is not None:
                    self._lag.observe(now - self._head_since)
                if self._wait_cell is not None:
                    self._wait_cell.add(now - self._head_since)
                self._head_since = now if self._items else None
            if self._depth is not None:
                self._depth.set(len(self._items))
            self._changed.notify_all()
            return batch

    def mark_done(self, count: int) -> None:
        with self._changed:
            self._pending -= count
            self._changed.notify_all()

    def depth(self) -> int:
        """Deliveries currently queued (saturation watch; racy by nature)."""
        with self._lock:
            return len(self._items)

    @property
    def capacity(self) -> int:
        return self._capacity

    def fail(self) -> None:
        """Worker died: drop queued work, zero accounting, unblock everyone."""
        with self._changed:
            self._failed = True
            self._items.clear()
            self._pending = 0
            self._changed.notify_all()

    def close(self) -> None:
        with self._changed:
            self._closed = True
            self._changed.notify_all()

    def wait_idle(self) -> None:
        with self._changed:
            while self._pending > 0:
                self._changed.wait()


class MonitorService:
    """A sharded online monitoring service over N engine shards.

    ``specs`` accepts specification source text, compiled specs/properties,
    or property providers with a ``make()`` method (the library's
    ``PaperProperty`` objects), singly or as a sequence.  ``system`` /
    ``gc`` / ``propagation`` / ``scan_budget`` / ``dispatch`` configure
    every shard engine exactly as they configure
    :class:`MonitoringEngine` — ``dispatch="codegen"`` runs each shard on
    generated kernels (process-mode workers regenerate them in their own
    interpreter; see ``docs/dispatch-kernels.md``).

    ``mode`` is ``"thread"`` (queues + workers + backpressure) or
    ``"inline"`` (synchronous dispatch, deterministic).  ``on_verdict``
    receives every merged :class:`VerdictRecord` as it happens.

    ``telemetry`` turns on the observability plane (pass ``True`` for
    defaults or a configured :class:`repro.obs.telemetry.Telemetry`):
    shard queues, drain loops, engines, and control round trips feed the
    metric catalogue, :meth:`metrics_snapshot` merges every registry in
    play, and :meth:`serve_metrics` exposes it over HTTP.  Off (the
    default) the hot paths are exactly the un-instrumented ones.

    The verdict log retains every record — including strong references to
    the verdicts' parameter objects — for the service's lifetime.  For
    long-running, verdict-heavy deployments pass
    ``keep_verdict_log=False`` and consume verdicts through
    ``on_verdict``, or call ``verdict_log.clear()`` periodically.
    """

    def __init__(
        self,
        specs: Any,
        shards: int = 4,
        *,
        system: str | None = None,
        gc: str | None = None,
        propagation: str | None = None,
        scan_budget: int = 2,
        dispatch: str = "compiled",
        mode: str = "thread",
        backend: str | None = None,
        queue_capacity: int = 4096,
        batch_size: int = 256,
        on_verdict: ServiceVerdictCallback | None = None,
        keep_verdict_log: bool = True,
        telemetry: "Telemetry | bool | None" = None,
        flight_recorder: "bool | int | None" = None,
        _restore_from: "dict | None" = None,
        _fault_configs: "Sequence[dict | None] | None" = None,
        _quarantine: "dict | None" = None,
    ):
        if backend is not None:
            mode = backend
        if mode not in ("thread", "inline", "process"):
            raise ValueError(f"unknown service mode {mode!r}")
        if queue_capacity < 1 or batch_size < 1:
            raise ValueError("queue_capacity and batch_size must be >= 1")
        #: The authoritative dynamic property registry; shard engines hold
        #: independent clones mirroring every registry operation.
        self.registry = _as_registry(specs)
        self.properties: list[CompiledProperty | None] = self.registry.properties()
        self.router = ShardRouter(self.properties, shards)
        self.shards = shards
        self.mode = mode
        self.batch_size = batch_size
        self.verdict_log = VerdictLog()
        self._keep_verdict_log = keep_verdict_log
        self._on_verdict = on_verdict
        self._closed = False
        self._failure: BaseException | None = None
        self._failure_lock = threading.Lock()
        #: Serializes route+enqueue so per-shard delivery order equals
        #: routing order even with several emitter threads — the router's
        #: sticky state and the shard queues must advance in lock step.
        self._emit_lock = threading.Lock()
        self.restored_tokens: dict[str, Any] = {}
        #: Engine construction kwargs, kept for supervised shard rebuilds.
        self._engine_kwargs = {
            "system": system, "gc": gc,
            "propagation": propagation, "scan_budget": scan_budget,
            "dispatch": dispatch,
        }
        self._queue_capacity = queue_capacity

        # -- supervision hooks (installed by ShardSupervisor) --------------
        #: True once a ShardSupervisor owns this service: single-shard
        #: failures stay isolated (journal + replay recover them) instead
        #: of failing the whole service.
        self._supervised = False
        #: fn(shard, deliveries) — called under the emit lock before a
        #: shard's deliveries are enqueued (the supervisor's journal tap).
        self._delivery_tap: "Callable[[int, list], None] | None" = None
        #: fn(symbols) — called under the emit lock before a retire
        #: broadcast (process mode's death markers).
        self._retire_tap: "Callable[[list], None] | None" = None
        #: fn(shard, engine, batch) — replaces the thread workers' batch
        #: dispatch (fault injection + quarantine).
        self._dispatch_guard: "Callable[[int, MonitoringEngine, list], None] | None" = None
        #: fn(shard, exc) — a supervised thread worker died; fired from
        #: the dying worker thread after it failed its own queue.
        self._on_shard_failure: "Callable[[int, BaseException], None] | None" = None
        #: fn(record) — a process worker quarantined a delivery.
        self._on_worker_quarantine: "Callable[[dict], None] | None" = None
        #: fn(event, params) -> bool — load shedding: True drops the event
        #: (counted by the supervisor, not delivered to any shard).
        self._shed_filter: "Callable[[str, Mapping[str, Any]], bool] | None" = None
        #: Per-shard failure record for supervised restarts (thread mode).
        self._shard_failures: "list[BaseException | None]" = [None] * shards
        #: Worker incarnation per shard; verdicts from older epochs are
        #: stale (their replacement replays them) and must not re-admit.
        self._shard_epochs = [0] * shards
        #: Exactly-once verdict admission: the next global verdict ordinal
        #: each shard may admit.  A replayed worker regenerates ordinals
        #: below this floor; the drain paths skip them.
        self._admitted = [0] * shards

        #: The service-level telemetry plane (``True`` means "defaults").
        #: Thread/inline shard engines share this registry — their locked
        #: counters merge exactly across worker threads; process-mode
        #: workers build fresh registries from its config and their
        #: snapshots merge back at :meth:`metrics_snapshot` time.
        self.telemetry = as_telemetry(telemetry)
        self._exposition = None
        self._m_events = None
        self._m_roundtrip = None
        self._verdict_counters: list[Any] = []
        #: Span buffer shared with thread/inline shard workers (None when
        #: the telemetry policy has tracing off); see :meth:`trace_spans`.
        self._tracer = self.telemetry.tracer if self.telemetry is not None else None
        self._batch_seq = 0
        #: Service-side attribution cells (queue-wait); the shard engines
        #: own the per-property stages.
        self._attribution = None
        if self.telemetry is not None and self.telemetry.attribution:
            from ..obs.attribution import AttributionPlane

            self._attribution = AttributionPlane(self.telemetry)
        #: Per-shard flight recorders (thread/inline); process workers hold
        #: their own and ship dumps back over the control channel.
        self.flight_recorders: list[Any] = []
        if flight_recorder is True:
            self._recorder_capacity: "int | None" = 0  # 0 → recorder default
        elif flight_recorder:
            self._recorder_capacity = int(flight_recorder)
        else:
            self._recorder_capacity = None
        self._final_worker_spans: "list[list[dict]] | None" = None
        #: Dumps shipped back from process workers (crash-time or at close).
        self._worker_dumps: list[dict] = []
        if self.telemetry is not None:
            obs_registry = self.telemetry.registry
            self._m_events = _declare_metric(
                obs_registry, "repro_service_events_total"
            ).labels()
            verdict_family = _declare_metric(
                obs_registry, "repro_service_verdicts_total"
            )
            self._verdict_counters = [
                verdict_family.labels(str(shard)) for shard in range(shards)
            ]
            self._m_roundtrip = _declare_metric(
                obs_registry, "repro_service_roundtrip_seconds"
            )

        engine_snapshots = None
        if _restore_from is not None:
            engine_snapshots = _check_service_checkpoint(_restore_from, shards)

        self.engines: list[MonitoringEngine] = []
        self._pool = None
        self._queues: list[_ShardQueue] = []
        self._workers: list[threading.Thread] = []
        if mode == "process":
            from ..persist.codec import materialize_tokens, trace_symbol_of
            from .process_backend import ProcessShardPool

            # One symbol space for events, retires, verdicts and checkpoints.
            self._registry = SymbolRegistry(on_death=self._note_death)
            self._symbol_of = trace_symbol_of(self._registry)
            self._pending_retires: list[str] = []
            # Reentrant: the registry's death callbacks may fire from
            # cyclic GC in a thread already inside the retire flush.
            self._retire_lock = threading.RLock()
            self._control_lock = threading.Lock()
            self._final_shard_stats: "list[dict[StatsKey, MonitorStats]] | None" = None
            self._final_worker_telemetry: "list[dict] | None" = None
            self._verdict_cond = threading.Condition()
            #: Verdicts consumed per (shard, epoch): barrier counts are
            #: per-epoch, so waits stay exact across worker restarts.
            self._epoch_received: dict[tuple[int, int], int] = {}
            #: Global verdict ordinal each (shard, epoch) starts at — the
            #: admission floor covered by the epoch's starting snapshot.
            self._epoch_bases: dict[tuple[int, int], int] = {
                (shard, 0): 0 for shard in range(shards)
            }
            if engine_snapshots is not None:
                symbols = _checkpoint_symbols(_restore_from)
                materialize_tokens(symbols, self.restored_tokens)
                for symbol, token in self.restored_tokens.items():
                    if not symbol.startswith("v:"):
                        self._registry.register(token, symbol)
                self.router.restore_sticky(
                    _restore_from["router"], self.restored_tokens
                )
                self._apply_shard_pins(_restore_from)
            self._pool = ProcessShardPool(
                self.registry,
                shards,
                {
                    "system": system,
                    "gc": gc,
                    "propagation": propagation,
                    "scan_budget": scan_budget,
                    "dispatch": dispatch,
                },
                snapshots=engine_snapshots,
                queue_capacity=queue_capacity,
                # Per-shard configs: each forked worker rebuilds its own
                # Telemetry with a shard-offset sampler phase, so sampled
                # ticks do not phase-align across shards and bias
                # attribution toward co-routed events.
                telemetry_configs=(
                    [self.telemetry.config(shard=s) for s in range(shards)]
                    if self.telemetry is not None
                    else None
                ),
                flight_recorder_capacity=self._recorder_capacity,
                fault_configs=_fault_configs,
                quarantine_config=_quarantine,
            )
            self._drainer = threading.Thread(
                target=self._verdict_drain_loop, name="repro-verdicts", daemon=True
            )
            self._drainer.start()
            return

        self.engines = [
            MonitoringEngine(
                self.registry,
                system=system,
                gc=gc,
                propagation=propagation,
                scan_budget=scan_budget,
                dispatch=dispatch,
                on_verdict=self._verdict_callback(shard),
                telemetry=self.telemetry,
            )
            for shard in range(shards)
        ]
        if engine_snapshots is not None:
            from ..persist.codec import restore_into

            for engine, snapshot in zip(self.engines, engine_snapshots):
                restore_into(engine, snapshot, self.restored_tokens)
            self.router.restore_sticky(_restore_from["router"], self.restored_tokens)
            self._apply_shard_pins(_restore_from)

        if self._recorder_capacity is not None:
            from ..obs.recorder import FlightRecorder

            for engine in self.engines:
                recorder = (
                    FlightRecorder()
                    if self._recorder_capacity == 0
                    else FlightRecorder(capacity=self._recorder_capacity)
                )
                self.flight_recorders.append(engine.enable_flight_recorder(recorder))

        if mode == "thread":
            self._q_depth = self._q_wait = self._q_lag = None
            if self.telemetry is not None:
                obs_registry = self.telemetry.registry
                self._q_depth = _declare_metric(
                    obs_registry, "repro_service_queue_depth"
                )
                self._q_wait = _declare_metric(
                    obs_registry, "repro_service_backpressure_wait_seconds"
                )
                self._q_lag = _declare_metric(
                    obs_registry, "repro_service_drain_lag_seconds"
                )
            self._queues = [
                self._make_thread_queue(shard) for shard in range(shards)
            ]
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(shard, self._queues[shard], self.engines[shard]),
                    name=f"repro-shard-{shard}",
                    daemon=True,
                )
                for shard in range(shards)
            ]
            for worker in self._workers:
                worker.start()

    def _make_thread_queue(self, shard: int) -> _ShardQueue:
        """One shard's bounded queue, with its telemetry children wired.

        Late-binds the flight-recorder saturation hook through
        ``self.flight_recorders[shard]`` so a queue built for a restarted
        shard triggers the *replacement* engine's recorder.
        """
        saturation = None
        if self._recorder_capacity is not None:

            def saturation(shard: int = shard) -> None:
                if self.flight_recorders:
                    self.flight_recorders[shard].trigger(
                        "queue-saturation", shard=shard
                    )

        return _ShardQueue(
            self._queue_capacity,
            self._q_depth.labels(str(shard)) if self._q_depth is not None else None,
            self._q_wait.labels(str(shard)) if self._q_wait is not None else None,
            self._q_lag.labels(str(shard)) if self._q_lag is not None else None,
            (
                self._attribution.cell(f"shard:{shard}", "queue-wait")
                if self._attribution is not None
                else None
            ),
            saturation,
        )

    def _replace_thread_shard(self, shard: int, engine: MonitoringEngine) -> None:
        """Install a replacement engine + queue + worker for one shard.

        The supervised-restart primitive (thread mode): the caller holds
        the emit lock, has already bumped the shard's epoch, built and
        replayed the replacement engine, and cleared the failure record.
        The failed queue's producers were unblocked by its ``fail()``;
        anything it dropped is in the supervisor's journal.
        """
        old_queue = self._queues[shard]
        old_queue.fail()
        old_queue.close()
        self._shard_failures[shard] = None
        self.engines[shard] = engine
        if self._recorder_capacity is not None and self.flight_recorders:
            from ..obs.recorder import FlightRecorder

            recorder = (
                FlightRecorder()
                if self._recorder_capacity == 0
                else FlightRecorder(capacity=self._recorder_capacity)
            )
            self.flight_recorders[shard] = engine.enable_flight_recorder(recorder)
        queue = self._make_thread_queue(shard)
        queue.delay = old_queue.delay
        self._queues[shard] = queue
        worker = threading.Thread(
            target=self._worker_loop,
            args=(shard, queue, engine),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        self._workers[shard] = worker
        worker.start()

    def _apply_shard_pins(self, checkpoint: Mapping[str, Any]) -> None:
        for symbol, shard in _anchor_pin_assignments(checkpoint, self.router).items():
            token = self.restored_tokens.get(symbol)
            if token is not None:
                self.router.pin_shard(token, shard)

    # -- verdict plumbing ----------------------------------------------------

    def _verdict_callback(self, shard: int, epoch: int = 0, base: int = 0):
        """Per-shard engine verdict sink with exactly-once admission.

        ``epoch``/``base`` support supervised thread-shard restarts: a
        replacement engine replaying from a checkpoint regenerates the
        verdicts the old incarnation already delivered; assigning each
        verdict the global ordinal ``base + n`` and admitting only ordinals
        at or above the shard's floor dedups the replay without comparing
        verdict contents.  Callbacks from a superseded incarnation (its
        thread may still be unwinding) are dropped by the epoch check.
        """
        counter = self._verdict_counters[shard] if self._verdict_counters else None
        sent = [0]

        def on_verdict(
            prop: CompiledProperty, category: str, monitor: MonitorInstance
        ) -> None:
            if self._shard_epochs[shard] != epoch:
                return
            ordinal = base + sent[0]
            sent[0] += 1
            if ordinal < self._admitted[shard]:
                return
            self._admitted[shard] = ordinal + 1
            provenance = monitor.provenance
            if provenance is not None:
                provenance = {"shard": shard, **provenance}
            record = VerdictRecord(
                shard=shard,
                spec_name=prop.spec_name,
                formalism=prop.formalism,
                category=category,
                binding=monitor.binding().items(),
                provenance=provenance,
            )
            if counter is not None:
                counter.inc()
            if self._keep_verdict_log:
                self.verdict_log.append(record)
            if self._tracer is not None:
                self._tracer.record(
                    "service.verdict_merge", "service",
                    start=time.time(), duration=0.0,
                    shard=shard, property=prop.spec_name, category=category,
                )
            if self._on_verdict is not None:
                self._on_verdict(record)

        return on_verdict

    # -- process-backend plumbing -------------------------------------------

    def _note_death(self, symbol: str) -> None:
        """Registry death callback: queue a retire for the next flush.

        Runs in whatever thread drops the last reference to a parameter
        object, so it only appends under a dedicated lock — the actual
        cross-process send happens at the next emit/drain, preserving the
        events-before-retire order on every shard queue.
        """
        with self._retire_lock:
            self._pending_retires.append(symbol)

    def _flush_retires(self) -> None:
        with self._retire_lock:
            pending, self._pending_retires = self._pending_retires, []
        if pending:
            tap = self._retire_tap
            if tap is not None:
                tap(pending)
            try:
                self._pool.send_retires(pending, lossy=self._supervised)
            except ServiceError:
                if not self._supervised:
                    raise

    def _verdict_drain_loop(self) -> None:
        """Parent-side consumer of the shared worker verdict queue.

        Exceptions from the user's ``on_verdict`` callback are recorded as
        a service failure (surfaced by the next drain/emit) but never kill
        the drainer — the received counters must keep advancing or
        :meth:`drain` would wait forever.
        """
        while True:
            item = self._pool.verdict_q.get()
            if item is None:
                return
            if item[0] == "qa":
                # A worker quarantined a poisoned delivery: hand the
                # dead-letter record to the supervisor, not the verdict log.
                try:
                    sink = self._on_worker_quarantine
                    if sink is not None:
                        sink(item[1])
                except BaseException as exc:
                    with self._failure_lock:
                        if self._failure is None:
                            self._failure = exc
                continue
            (
                shard, spec_name, formalism, category,
                symbol_binding, provenance, epoch, idx,
            ) = item
            try:
                # Exactly-once admission across worker restarts: a replayed
                # worker regenerates verdicts the old incarnation already
                # delivered; its ordinals fall below the shard's floor.
                base = self._epoch_bases.get((shard, epoch), 0)
                ordinal = base + idx
                admit = ordinal >= self._admitted[shard]
                if admit:
                    self._admitted[shard] = ordinal + 1
                    pairs = []
                    for name, symbol in symbol_binding:
                        value = self._registry.resolve(symbol)
                        if value is None:
                            # The parent-side object died (or was a symbolic
                            # stream's immortal literal, whose text *is* the
                            # value): keep the symbol string — it keys
                            # identically under symbolic comparison, and a
                            # GC race between the worker's send and this
                            # resolve must not change the binding shape.
                            value = symbol
                        pairs.append((name, value))
                    record = VerdictRecord(
                        shard=shard,
                        spec_name=spec_name,
                        formalism=formalism,
                        category=category,
                        binding=tuple(pairs),
                        provenance=(
                            {"shard": shard, **provenance}
                            if provenance is not None
                            else None
                        ),
                    )
                    if self._verdict_counters:
                        self._verdict_counters[shard].inc()
                    if self._keep_verdict_log:
                        self.verdict_log.append(record)
                    if self._tracer is not None:
                        self._tracer.record(
                            "service.verdict_merge", "service",
                            start=time.time(), duration=0.0,
                            shard=shard, property=spec_name, category=category,
                        )
                    if self._on_verdict is not None:
                        self._on_verdict(record)
            except BaseException as exc:
                with self._failure_lock:
                    if self._failure is None:
                        self._failure = exc
            finally:
                with self._verdict_cond:
                    key = (shard, epoch)
                    self._epoch_received[key] = self._epoch_received.get(key, 0) + 1
                    self._verdict_cond.notify_all()

    def _await_verdicts(
        self, counts: "list[tuple[int, int]]", workers_exited: bool = False
    ) -> None:
        """Block until the drainer consumed each worker's reported
        ``(verdicts sent, epoch)`` — counts are per worker incarnation, so
        waits stay exact across supervised restarts.

        ``workers_exited`` marks the clean-close path: the workers already
        sent every verdict before acking close and have legitimately
        exited, so their death is not a failure — the backlog just needs
        draining.
        """

        def lagging() -> bool:
            return any(
                self._epoch_received.get((shard, epoch), 0) < wanted
                for shard, (wanted, epoch) in enumerate(counts)
            )

        def voided() -> bool:
            # A supervisor restart bumps the shard's epoch; the crashed
            # incarnation's remaining verdicts died with its queue feeder,
            # so a barrier against the old epoch can never fill.
            return any(
                self._shard_epochs[shard] != epoch
                and self._epoch_received.get((shard, epoch), 0) < wanted
                for shard, (wanted, epoch) in enumerate(counts)
            )

        with self._verdict_cond:
            while lagging():
                self._verdict_cond.wait(timeout=1.0)
                if workers_exited or not lagging():
                    continue
                if voided():
                    raise ServiceError("a shard worker restarted mid-drain")
                if not self._pool.alive():
                    # Supervised or not, this barrier cannot complete: the
                    # dead worker's backlog needs a respawn + replay first
                    # (the supervisor catches this and heals the shard).
                    raise ServiceError("a shard worker died mid-drain")

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self, shard: int, queue: _ShardQueue, engine: MonitoringEngine) -> None:
        batch_timer = None
        if self.telemetry is not None:
            batch_timer = _declare_metric(
                self.telemetry.registry, "repro_service_drain_batch_seconds"
            ).labels(str(shard))
        tracer = self._tracer
        while True:
            batch = queue.take(self.batch_size)
            if batch is None:
                return
            try:
                guard = self._dispatch_guard
                if guard is not None:
                    guard(shard, engine, batch)
                elif batch_timer is None and tracer is None:
                    engine.emit_selected_batch(batch)
                else:
                    wall = time.time()
                    started = perf_counter()
                    engine.emit_selected_batch(batch)
                    elapsed = perf_counter() - started
                    if batch_timer is not None:
                        batch_timer.observe(elapsed)
                    if tracer is not None:
                        tracer.record(
                            "shard.drain", "service",
                            start=wall, duration=elapsed,
                            shard=shard, events=len(batch),
                        )
            except BaseException as exc:  # surface at drain()/close()/emit()
                if self.flight_recorders:
                    self.flight_recorders[shard].trigger(
                        "worker-exception", shard=shard, error=repr(exc)
                    )
                if self._supervised:
                    # Contain the blast radius to this shard: record the
                    # failure, unblock this queue's producers, and let the
                    # supervisor rebuild the shard from checkpoint+journal.
                    self._shard_failures[shard] = exc
                    queue.fail()
                    cb = self._on_shard_failure
                    if cb is not None:
                        try:
                            cb(shard, exc)
                        except BaseException:
                            pass
                    return
                with self._failure_lock:
                    if self._failure is None:
                        self._failure = exc
                for other in self._queues:
                    other.fail()
                return
            finally:
                queue.mark_done(len(batch))

    def _pool_roundtrip(self, op: str, call: Callable[[], Any]) -> Any:
        """Run one process-backend control round trip, timed when telemetry
        is on (``repro_service_roundtrip_seconds{op=...}``)."""
        if self._m_roundtrip is None:
            return call()
        started = perf_counter()
        try:
            return call()
        finally:
            self._m_roundtrip.labels(op).observe(perf_counter() - started)

    def _check_failure(self) -> None:
        with self._failure_lock:
            failure = self._failure
        if failure is not None:
            raise ServiceError(
                f"a shard worker died while monitoring: {failure!r}"
            ) from failure

    # -- ingestion -----------------------------------------------------------

    def emit(self, event: str, _strict: bool = True, **params: Any) -> None:
        """Route one parametric event to its shard(s).

        Mirrors :meth:`MonitoringEngine.emit`: with ``_strict=False`` an
        event no property declares is dropped silently.  In thread mode the
        call blocks while every destination shard queue is full
        (backpressure); processing is asynchronous — use :meth:`drain` for
        a happens-before edge to the verdict log and statistics.
        """
        self.emit_batch([(event, params)], _strict=_strict)

    def emit_batch(
        self,
        events: Iterable[tuple[str, Mapping[str, Any]]],
        _strict: bool = True,
    ) -> int:
        """Route a batch of ``(event, params)`` pairs; returns how many were
        delivered to at least one shard.

        Routing happens up front and deliveries are grouped per shard, so
        the queue locks are taken once per (shard, batch) rather than once
        per event.
        """
        if self._closed:
            raise ServiceError("emit on a closed MonitorService")
        self._check_failure()
        per_shard: list[list[_Delivery]] = [[] for _ in range(self.shards)]
        route = self.router.route
        accepted = 0
        process = self.mode == "process"
        tracer = self._tracer
        batch_id = None
        if tracer is not None:
            span_wall = time.time()
            span_started = perf_counter()
        # Route and enqueue under one lock: per-shard delivery order must
        # equal routing order (the sticky state assumes it), so concurrent
        # emitters may not interleave between routing and enqueueing.
        with self._emit_lock:
            if tracer is not None:
                self._batch_seq += 1
                batch_id = self._batch_seq
            if process:
                # Deaths recorded since the last batch precede these events
                # on every shard queue (their objects died, so no event in
                # this batch can mention them).
                self._flush_retires()
            shed = self._shed_filter
            for event, params in events:
                if not self.router.declared(event):
                    if _strict:
                        raise UnknownEventError(
                            f"no monitored specification declares event {event!r}"
                        )
                    continue
                if shed is not None and shed(event, params):
                    # Load shedding: the supervisor counted the drop; the
                    # event reaches no shard and no statistics.
                    continue
                accepted += 1
                if process:
                    symbol_of = self._symbol_of
                    payload = {
                        name: symbol_of(value) for name, value in params.items()
                    }
                    for shard, delivery in route(event, params):
                        per_shard[shard].append((event, payload, delivery))
                    continue
                for shard, delivery in route(event, params):
                    per_shard[shard].append((event, params, delivery))
            tap = self._delivery_tap
            if self.mode == "inline":
                for shard, deliveries in enumerate(per_shard):
                    if deliveries:
                        if tap is not None:
                            tap(shard, deliveries)
                        self.engines[shard].emit_selected_batch(deliveries)
            elif process:
                for shard, deliveries in enumerate(per_shard):
                    if deliveries:
                        if tap is not None:
                            tap(shard, deliveries)
                        try:
                            self._pool.send_events(shard, deliveries, batch_id)
                        except ServiceError:
                            # Supervised: the journal holds these deliveries;
                            # the respawned worker replays them.
                            if not self._supervised:
                                raise
            else:
                for shard, deliveries in enumerate(per_shard):
                    if deliveries:
                        if tap is not None:
                            tap(shard, deliveries)
                        self._queues[shard].put_many(deliveries)
        if tracer is not None and accepted:
            tracer.record(
                "service.emit_batch", "service",
                start=span_wall, duration=perf_counter() - span_started,
                batch=batch_id, events=accepted,
            )
        if self._m_events is not None and accepted:
            self._m_events.inc(accepted)
        if self.mode == "thread":
            self._check_failure()
        elif process and not self._supervised and not self._pool.alive():
            raise ServiceError("a shard worker process died")
        return accepted

    def note_deaths(self, dead: Mapping[str, Iterable[int]]) -> None:
        """Forward externally observed parameter deaths to the shard engines.

        The live instrumentation layer (:mod:`repro.instrument.live`)
        drains its ``weakref``-callback ledger at each event boundary and
        hands the coalesced ``{param name: dead ids}`` map here; each
        thread/inline shard engine queues it exactly like its own eager
        watcher's observations (see
        :meth:`~repro.runtime.engine.MonitoringEngine.note_deaths` — a
        no-op under lazy propagation, where dead keys are discovered on
        access).  In process mode this is a no-op: worker GC is driven by
        the symbol registry's death-retire flow, which already watches
        every routed parameter object.
        """
        if self.mode == "process":
            return
        for engine in self.engines:
            engine.note_deaths(dead)

    # -- dynamic property registry -------------------------------------------

    @property
    def registry_epoch(self) -> int:
        """Monotonic version of the property set (bumped by every hot op)."""
        return self.registry.epoch

    def _quiesce_locked(self) -> None:
        """Shard barrier under the emit lock.

        Every event routed before now is fully processed on every shard,
        and no emitter can interleave (the emit lock is held) — so a
        registry operation applied next switches all shards between the
        same two events, keeping the determinism suite's verdict-multiset
        equality valid across hot load/unload.
        """
        if self.mode == "thread":
            for queue in self._queues:
                queue.wait_idle()
            self._check_failure()
        elif self.mode == "process":
            self._flush_retires()
            with self._control_lock:
                counts = self._pool_roundtrip("barrier", self._pool.barrier)
            self._await_verdicts(counts)

    def register_property(self, item: Any, name: str | None = None) -> list[int]:
        """Hot-load properties into the running service; returns new slots.

        ``item`` is anything the constructor accepts.  The service drains
        in-flight events behind a barrier, attaches the new properties to
        every shard engine (process-mode workers re-compile them from
        source text or a paper-property key and their fingerprints are
        verified against the parent's), extends the routing table, and
        bumps the registry epoch — all between two event sequence numbers.
        """
        if self._closed:
            raise ServiceError("register_property on a closed MonitorService")
        self._check_failure()
        normalized = normalize_properties(item)
        if name is not None and len(normalized) != 1:
            raise RegistryError(
                f"cannot register {len(normalized)} properties under one "
                f"name {name!r}"
            )
        if self.mode == "process":
            for _prop, origin in normalized:
                if origin.get("kind") not in PORTABLE_ORIGIN_KINDS:
                    raise ServiceError(
                        "process mode can only hot-load properties that are "
                        "re-materializable from data: pass specification "
                        "source text or a PaperProperty"
                    )
        with self._emit_lock:
            if name is not None and self.registry.has_name(name):
                raise RegistryError(f"property name {name!r} is already registered")
            self._quiesce_locked()
            indexes: list[int] = []
            for prop, origin in normalized:
                # Fallible work first (worker broadcasts can fail), the
                # registry/router bookkeeping only once it succeeded —
                # otherwise a failure would leave the registry one slot
                # ahead of the router and misroute the next registration.
                entry_name = (
                    name
                    if name is not None
                    else self.registry.unique_name(
                        f"{prop.spec_name}/{prop.formalism}"
                    )
                )
                want_fingerprint = prop.fingerprint()
                if self.mode == "process":
                    with self._control_lock:
                        fingerprints = self._pool.register_property(
                            {"name": entry_name, "origin": dict(origin)}
                        )
                    for shard, fingerprint in enumerate(fingerprints):
                        if fingerprint != want_fingerprint:
                            # The workers now hold a slot the parent will
                            # not commit: unrecoverable divergence.
                            failure = ServiceError(
                                f"shard {shard} compiled {entry_name!r} to "
                                f"fingerprint {fingerprint}, parent has "
                                f"{want_fingerprint}"
                            )
                            with self._failure_lock:
                                if self._failure is None:
                                    self._failure = failure
                            raise failure
                else:
                    for engine in self.engines:
                        engine.attach_property(
                            prop, name=entry_name, origin=origin
                        )
                self.router.add_property(prop)
                entry = self.registry.add(prop, name=entry_name, origin=origin)
                self.properties.append(prop)
                indexes.append(entry.index)
            return indexes

    def unregister_property(self, ref: Any) -> None:
        """Hot-unload one property (by name, slot index, or object).

        Behind the same barrier as :meth:`register_property`: every shard
        quiesces the property's runtime, folds its final statistics into
        the shard totals (so :meth:`stats` keeps reporting it), and drops
        its indexing state; the router stops delivering its events.
        """
        if self._closed:
            raise ServiceError("unregister_property on a closed MonitorService")
        self._check_failure()
        with self._emit_lock:
            entry = self.registry.entry(ref)
            if entry.removed:
                # Validate before broadcasting: a worker-side RegistryError
                # would kill every shard process over a caller mistake.
                raise RegistryError(
                    f"property {entry.name!r} is already removed"
                )
            self._quiesce_locked()
            if self.mode == "process":
                with self._control_lock:
                    self._pool.unregister_property(entry.index)
            else:
                for engine in self.engines:
                    engine.detach_property(entry.index)
            self.router.remove_property(entry.index)
            self.registry.remove(entry.index)
            self.properties[entry.index] = None

    def set_property_enabled(self, ref: Any, enabled: bool) -> None:
        """Pause or resume one property on every shard, state intact.

        A disabled property receives no events (they are dropped at the
        shard engines, uncounted) but keeps its monitors, statistics, and
        routing slot for a later :meth:`set_property_enabled` resume.
        """
        if self._closed:
            raise ServiceError("set_property_enabled on a closed MonitorService")
        self._check_failure()
        with self._emit_lock:
            entry = self.registry.entry(ref)
            if entry.removed:
                raise RegistryError(f"property {entry.name!r} has been removed")
            self._quiesce_locked()
            if self.mode == "process":
                with self._control_lock:
                    self._pool.set_property_enabled(entry.index, enabled)
            else:
                for engine in self.engines:
                    engine.set_property_enabled(entry.index, enabled)
            if enabled:
                self.registry.enable(entry.index)
            else:
                self.registry.disable(entry.index)

    # -- lifecycle -----------------------------------------------------------

    def drain(self) -> None:
        """Block until every enqueued event has been fully processed.

        In process mode this also waits for every verdict those events
        produced to land in the merged log (the cross-process analog of
        thread mode's happens-before edge).
        """
        if self.mode == "thread":
            for queue in self._queues:
                queue.wait_idle()
        elif self.mode == "process" and not self._closed:
            with self._emit_lock:
                self._flush_retires()
            with self._control_lock:
                counts = self._pool_roundtrip("barrier", self._pool.barrier)
            self._await_verdicts(counts)
        self._check_failure()

    def close(self) -> None:
        """Drain, stop the workers, and run end-of-run GC accounting.

        Idempotent.  After closing, :meth:`emit` raises
        :class:`~repro.core.errors.ServiceError`; statistics and the
        verdict log remain readable (process mode caches the workers'
        final statistics before they exit).
        """
        if self._closed:
            return
        if self._exposition is not None:
            self._exposition.close()
            self._exposition = None
        failure_seen = None
        try:
            self.drain()
        except ServiceError as exc:
            failure_seen = exc
        self._closed = True
        if self._pool is not None:
            try:
                if failure_seen is None:
                    with self._control_lock:
                        (
                            snapshots,
                            counts,
                            worker_telemetry,
                            worker_spans,
                            worker_dumps,
                        ) = self._pool_roundtrip("close", self._pool.close)
                    self._final_shard_stats = [
                        _stats_from_snapshot(snapshot) for snapshot in snapshots
                    ]
                    self._final_worker_telemetry = [
                        snap for snap in worker_telemetry if snap is not None
                    ]
                    self._final_worker_spans = [
                        spans for spans in worker_spans if spans
                    ]
                    self._worker_dumps.extend(worker_dumps)
                    self._await_verdicts(counts, workers_exited=True)
                else:
                    self._pool.terminate()
            finally:
                self._pool.verdict_q.put(None)  # stop the drainer thread
                self._drainer.join(timeout=10.0)
        for queue in self._queues:
            queue.close()
        for worker in self._workers:
            worker.join(timeout=10.0)
        for engine in self.engines:
            engine.flush_gc()
        if failure_seen is not None:
            raise failure_seen

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- checkpoint & migration ---------------------------------------------

    def checkpoint(self) -> dict:
        """Serialize the whole service: every shard engine + routing state.

        Drains first.  Engine states are captured with the
        :mod:`repro.persist.codec` snapshot format under one symbol
        namespace shared with the router's sticky-state snapshot, so a
        restored service (:meth:`restore`) routes and monitors exactly as
        this one would.  JSON-safe; wrap with
        :func:`repro.persist.snapshot_to_bytes` for storage.
        """
        if self._closed:
            raise ServiceError("checkpoint on a closed MonitorService")
        self.drain()
        if self.mode == "process":
            with self._emit_lock:
                with self._control_lock:
                    engines = self._pool_roundtrip(
                        "checkpoint", self._pool.checkpoints
                    )
                router = self.router.snapshot_sticky(self._symbol_of)
        else:
            from ..persist.codec import snapshot_engine, trace_symbol_of
            from ..runtime.tracelog import ReplayToken

            # Hold the emit lock across idle-wait + snapshot: with several
            # emitter threads, an emit slipping in between a bare drain()
            # and the snapshot would let shard workers mutate engines
            # mid-serialization.
            with self._emit_lock:
                for queue in self._queues:
                    queue.wait_idle()
                self._check_failure()
                # Seed the snapshot namespace with every replay token the
                # engines hold (including restore()-produced ones) before
                # any fresh `oN` minting — adoption-after-minting could
                # alias two objects under one symbol.
                registry = SymbolRegistry()
                for symbol, token in self.restored_tokens.items():
                    if not symbol.startswith("v:"):
                        registry.register(token, symbol)
                for engine in self.engines:
                    for runtime in engine.runtimes:
                        if runtime is None:
                            continue
                        for monitor in runtime.iter_reachable_instances():
                            for ref in monitor.params.values():
                                value = ref.get()
                                if isinstance(value, ReplayToken):
                                    registry.register(value, value.symbol)
                symbol_of = trace_symbol_of(registry)
                engines = [
                    snapshot_engine(engine, symbol_of) for engine in self.engines
                ]
                router = self.router.snapshot_sticky(symbol_of)
        return {
            "format": SERVICE_CHECKPOINT_FORMAT,
            "version": SERVICE_CHECKPOINT_VERSION,
            "shards": self.shards,
            "registry": self.registry.snapshot(),
            "engines": engines,
            "router": router,
        }

    @classmethod
    def restore(
        cls, checkpoint: Mapping[str, Any], specs: Any, **kwargs: Any
    ) -> "MonitorService":
        """Rebuild a service from a :meth:`checkpoint` payload.

        ``specs`` must compile to the same properties (fingerprints are
        verified); ``kwargs`` are the usual constructor options — the
        shard count comes from the checkpoint, and the engine
        configuration defaults to the snapshot's.  Properties that were
        hot-loaded from source text or a paper key before the checkpoint
        are re-materialized from the recorded registry automatically;
        removed slots are restored as tombstones.  Restored parameter
        objects are fresh tokens: feed the service through
        :attr:`restored_tokens` (e.g. ``ingest_symbolic(service, entries,
        start=..., tokens=service.restored_tokens)``).
        """
        engines = checkpoint.get("engines") or ()
        if engines:
            config = engines[0]["engine"]
            kwargs.setdefault("gc", config["gc"])
            kwargs.setdefault("propagation", config["propagation"])
            kwargs.setdefault("scan_budget", config["scan_budget"])
        kwargs.pop("shards", None)
        registry_payload = checkpoint.get("registry")
        if registry_payload is None:
            raise PersistError("service checkpoint lacks a registry record")
        registry = PropertyRegistry.from_snapshot(
            registry_payload, normalize_properties(specs)
        )
        return cls(
            registry,
            shards=checkpoint.get("shards", 0),
            _restore_from=dict(checkpoint),
            **kwargs,
        )

    def restart_shard(self, shard: int) -> None:
        """Migrate one process-mode shard: checkpoint it, stop the worker,
        start a replacement from the snapshot.  The replacement carries
        the full monitor state and statistics; event flow resumes
        seamlessly (the service drains first)."""
        if self.mode != "process":
            raise ServiceError("restart_shard requires mode='process'")
        if not 0 <= shard < self.shards:
            raise ServiceError(f"no shard {shard}")
        self.drain()
        with self._emit_lock:
            with self._control_lock:
                snapshot, sent = self._pool_roundtrip(
                    "checkpoint",
                    lambda: self._pool.checkpoint_shard_counted(shard),
                )
                # The fresh worker counts verdicts from zero in a new
                # epoch whose admission floor covers everything the old
                # incarnation sent — barrier counts and dedup stay exact.
                old = self._shard_epochs[shard]
                new = old + 1
                with self._verdict_cond:
                    self._epoch_bases[(shard, new)] = (
                        self._epoch_bases.get((shard, old), 0) + sent
                    )
                    self._shard_epochs[shard] = new
                self._pool.restart_shard(shard, snapshot, epoch=new)

    # -- telemetry exposure ----------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """The whole service's metrics as one merged registry snapshot.

        Folds the parent registry (service + thread/inline engine
        metrics), every process-mode worker's registry (fetched live, or
        the finals cached at close), and the ``repro_monitor_*`` series
        derived from the merged per-property statistics — the paper's
        Figure 10 counters.  Works with telemetry off too (statistics
        only).  JSON-safe; render with
        :func:`repro.obs.metrics.render_prometheus`.
        """
        from ..obs.metrics import merge_snapshots
        from ..obs.telemetry import stats_to_metrics

        snapshots: list[dict[str, Any]] = []
        if self.telemetry is not None:
            snapshots.append(self.telemetry.snapshot())
            if self.mode == "process":
                snapshots.extend(snap for snap in self._worker_telemetry() if snap)
        stats_view = {
            f"{name}/{formalism}": stats.snapshot()
            for (name, formalism), stats in self.stats().items()
        }
        snapshots.append(stats_to_metrics(stats_view))
        return merge_snapshots(*snapshots)

    def _worker_telemetry(self) -> "list[dict | None]":
        if self._final_worker_telemetry is not None:
            return list(self._final_worker_telemetry)
        with self._control_lock:
            return self._pool_roundtrip("stats", self._pool.telemetry_snapshots)

    def trace_spans(self) -> list[dict[str, Any]]:
        """Every structured span the service has recorded, merged in time.

        Thread/inline shards record into the parent tracer directly;
        process workers keep per-worker buffers that ship back over the
        snapshot channel (live polls while running, the final buffers at
        close) and are stitched into one stream here — the cross-process
        analog of ``merge_snapshots`` for spans.  Export with
        :func:`repro.obs.trace.spans_to_chrome` or
        :func:`repro.obs.trace.write_spans_ndjson`.
        """
        from ..obs.trace import merge_spans

        if self._tracer is None:
            return []
        buffers = [self._tracer.snapshot()]
        if self.mode == "process":
            if self._final_worker_spans is not None:
                buffers.extend(self._final_worker_spans)
            else:
                with self._control_lock:
                    buffers.extend(
                        self._pool_roundtrip("stats", self._pool.trace_snapshots)
                    )
        return merge_spans(*buffers)

    def flight_recorder_dumps(self) -> list[dict[str, Any]]:
        """Every flight-recorder dump taken so far, across all shards.

        Thread/inline mode reads the per-shard recorders directly;
        process mode returns the dumps workers shipped back (on a worker
        crash, and the remainder when the pool closes).
        """
        dumps = [
            dump for recorder in self.flight_recorders for dump in recorder.dumps
        ]
        dumps.extend(self._worker_dumps)
        if self._pool is not None:
            dumps.extend(self._pool.crash_dumps)
        return dumps

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start (or return) the Prometheus exposition endpoint.

        Serves :meth:`metrics_snapshot` over stdlib HTTP —
        ``/metrics`` (text format), ``/metrics.json`` (raw snapshot),
        ``/healthz`` — on a daemon thread; an OS-assigned port by
        default.  Returns the :class:`repro.obs.http.ExpositionServer`
        (``.url`` has the address); :meth:`close` shuts it down.
        """
        from ..obs.http import ExpositionServer

        if self._closed:
            raise ServiceError("serve_metrics on a closed MonitorService")
        if self._exposition is None:
            self._exposition = ExpositionServer(
                self.metrics_snapshot, host=host, port=port
            )
        return self._exposition

    # -- aggregate results ---------------------------------------------------

    def stats(self) -> dict[StatsKey, MonitorStats]:
        """Merged per-property statistics across every shard."""
        return merge_stats(self.per_shard_stats())

    def per_shard_stats(self) -> list[dict[StatsKey, MonitorStats]]:
        """Each shard engine's statistics, indexed by shard number."""
        if self.mode == "process":
            if self._final_shard_stats is not None:
                return [dict(shard_stats) for shard_stats in self._final_shard_stats]
            with self._control_lock:
                snapshots = self._pool_roundtrip("stats", self._pool.stats_snapshots)
            return [_stats_from_snapshot(snapshot) for snapshot in snapshots]
        return [engine.stats() for engine in self.engines]

    def stats_for(self, spec_name: str, formalism: str | None = None) -> MonitorStats:
        """One property's merged counters across every shard."""
        for (name, form), stats in self.stats().items():
            if name == spec_name and (formalism is None or form == formalism):
                return stats
        raise KeyError(f"no property {spec_name}/{formalism}")

    def verdicts(self) -> list[VerdictRecord]:
        """Chronological snapshot of the merged verdict stream."""
        return self.verdict_log.snapshot()

    def verdict_multiset(self) -> Counter:
        """Order/shard-independent verdict multiset (determinism checks)."""
        return self.verdict_log.multiset()

    def describe_routing(self) -> list[dict[str, Any]]:
        """The router's anchor/pinning table for every property."""
        return self.router.describe()

    def total_live_monitors(self) -> int:
        """Created-minus-collected, summed over shards and properties."""
        if self.mode == "process":
            return sum(
                stats.live_monitors
                for shard_stats in self.per_shard_stats()
                for stats in shard_stats.values()
            )
        return sum(engine.total_live_monitors() for engine in self.engines)


def _stats_key(label: str) -> StatsKey:
    spec_name, _, formalism = label.rpartition("/")
    return (spec_name, formalism)


def _stats_from_snapshot(snapshot: Mapping[str, Mapping]) -> dict[StatsKey, MonitorStats]:
    """One worker's ``stats_snapshot()`` dict as ``{(spec, formalism): stats}``."""
    return {
        _stats_key(label): MonitorStats.from_snapshot(record)
        for label, record in snapshot.items()
    }




def ingest_symbolic(
    target: Any,
    entries: Sequence[tuple[str, Mapping[str, str]]],
    retire_after_last_use: bool = False,
    *,
    start: int = 0,
    stop: int | None = None,
    tokens: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Feed a symbolic event stream into a service or engine.

    ``entries`` is a sequence of ``(event, {param: symbol})`` pairs — the
    shape :func:`repro.bench.workloads.record_workload_events` produces and
    :mod:`repro.runtime.tracelog` records.  A thin alias for
    :func:`repro.runtime.tracelog.replay_entries`, re-exported here because
    it is the service benchmarks' ingestion path.  ``start``/``stop`` and
    ``tokens`` resume a stream across a checkpoint/restore boundary (pass
    ``service.restored_tokens``).
    """
    from ..runtime.tracelog import replay_entries

    return replay_entries(
        list(entries),
        target,
        retire_after_last_use,
        start=start,
        stop=stop,
        tokens=tokens,
    )
