"""`ShardSupervisor` — the fault-tolerance plane over a sharded service.

A :class:`~repro.service.service.MonitorService` survives a shard failure
only if something outside the failed worker can rebuild its state and
re-feed the events it lost.  The supervisor is that something:

* **journal** — every routed delivery (and, in process mode, every retire
  broadcast) is appended to a per-shard write-ahead journal *before* it is
  handed to the shard, under the service's emit lock; the journal's
  delivery plans are recorded verbatim so recovery replays them without
  consulting the router (whose sticky state has moved on);
* **checkpoints** — every ``checkpoint_interval`` deliveries a shard's
  engine is snapshotted (process mode: over the worker control channel,
  FIFO behind the event stream; thread mode: behind the queue's idle
  barrier) together with its journal position and verdict-admission
  floor;
* **supervision loop** — a health thread watches worker liveness
  (process exit codes, thread worker failure records) and progress
  (heartbeats FIFO behind the event queue, queue-depth movement); a dead
  or hung shard is restarted from its last checkpoint plus the journal
  suffix, with capped exponential backoff and a restart budget.  Verdict
  **epochs** keep admission exactly-once across restarts: a replayed
  worker regenerates verdicts the old incarnation already delivered, and
  the per-shard ordinal floor drops them — the merged verdict multiset
  equals the unfaulted run's (the chaos benchmark
  ``benchmarks/bench_faults.py`` asserts exactly this);
* **quarantine** — a delivery whose dispatch raises (injected poison or a
  real bug) is retried with exponential backoff, then moved to an NDJSON
  dead-letter sink with full provenance, and monitoring continues;
* **load shedding** — under sustained queue saturation the supervisor
  walks a shed ladder: first dropping events that only designated
  sheddable properties declare (disabling those properties), then
  deterministic 1-in-N sampling; every drop is counted exactly
  (``repro_events_shed_total``).

Deterministic fault injection (:class:`~repro.faults.FaultPlan`) threads
through the same seams the real failures use, so every recovery path here
is exercised by replayable tests rather than luck.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Mapping, Sequence

from ..core.errors import PersistError, ServiceError, SupervisionError, WalWriteError
from ..faults import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    QuarantinePolicy,
    WorkerFaultState,
    supervised_dispatch,
)
from ..obs.catalogue import declare as _declare_metric
from ..persist.codec import restore_into, snapshot_engine, trace_symbol_of
from ..persist.recovery import write_checkpoint_file
from ..persist.wal import WalWriter, iter_wal_records
from ..runtime.engine import MonitoringEngine
from ..runtime.refs import SymbolRegistry
from ..runtime.tracelog import ReplayToken
from .service import MonitorService

__all__ = ["ShardSupervisor", "supervise"]

#: Shed ladder levels.
SHED_NONE, SHED_PROPERTY, SHED_SAMPLED = 0, 1, 2


def _encode_plan(plan: tuple) -> list:
    """The router's per-shard delivery plan as a JSON-safe value.

    Plan shape (see :data:`repro.service.router.Delivery`):
    ``(prop_indexes, recording indexes | None, {prop: pretouched domain
    sets} | None, count-only indexes)``.
    """
    props, records, pretouched, count_only = plan
    return [
        list(props),
        None if records is None else sorted(records),
        (
            None
            if pretouched is None
            else {
                str(index): sorted(sorted(domain) for domain in domains)
                for index, domains in pretouched.items()
            }
        ),
        list(count_only),
    ]


def _decode_plan(encoded: Sequence) -> tuple:
    props, records, pretouched, count_only = encoded
    return (
        tuple(props),
        None if records is None else frozenset(records),
        (
            None
            if pretouched is None
            else {
                int(index): frozenset(
                    frozenset(domain) for domain in domains
                )
                for index, domains in pretouched.items()
            }
        ),
        tuple(count_only),
    )


def _snapshot_symbols(snapshot: Mapping[str, Any]) -> set[str]:
    """Every live symbol one engine snapshot mentions."""
    symbols: set[str] = set()
    for runtime in snapshot["runtimes"]:
        if runtime is None:
            continue
        for record in runtime["touched"]:
            symbols.update(record["params"].values())
        for monitor in runtime["monitors"]:
            symbols.update(
                symbol
                for symbol in monitor["params"].values()
                if not symbol.startswith("!dead:")
            )
    return symbols


class _ShardState:
    """The supervisor's per-shard book: journal, checkpoint, failures."""

    __slots__ = (
        "journal", "journal_dir", "checkpoint", "checkpoint_seq", "deliveries",
        "restarts", "last_failure", "last_progress", "last_queue_depth",
        "journal_error", "hung",
    )

    def __init__(self, journal: WalWriter, journal_dir: str):
        self.journal = journal
        self.journal_dir = journal_dir
        #: Last checkpoint: {"count", "journal_seq", "admitted", "epoch",
        #: "registry_epoch", "engine"} — None until the first one is taken.
        self.checkpoint: "dict | None" = None
        self.checkpoint_seq = 0
        #: Deliveries journaled for this shard (absolute ordinal space).
        self.deliveries = 0
        self.restarts = 0
        self.last_failure: "str | None" = None
        self.last_progress = time.monotonic()
        self.last_queue_depth = 0
        self.journal_error: "str | None" = None
        #: Thread-mode hang flag (detect/report only: threads can't be killed).
        self.hung = False


class ShardSupervisor:
    """Supervises a :class:`MonitorService`'s shards: journal every
    delivery, checkpoint periodically, restart failed shards from
    checkpoint + journal suffix, quarantine poison events, and shed load
    under saturation.

    ``service`` must be in ``thread`` or ``process`` mode (inline dispatch
    runs in the caller's thread — there is nothing to supervise).  The
    supervisor installs itself into the service's supervision hooks at
    construction; build both together with :func:`supervise` when using a
    :class:`~repro.faults.FaultPlan` (process workers need their fault
    configs at fork time).

    ``directory`` holds the per-shard journals (``shard-N/journal/``),
    checkpoint files (``shard-N/checkpoint-*.ckpt``) and the quarantine
    sink (``quarantine.ndjson``).
    """

    def __init__(
        self,
        service: MonitorService,
        directory: str,
        *,
        plan: "FaultPlan | None" = None,
        quarantine: "QuarantinePolicy | None" = None,
        checkpoint_interval: int = 256,
        restart_budget: int = 8,
        restart_backoff: float = 0.02,
        backoff_cap: float = 1.0,
        ipc_deadline: float = 5.0,
        poll_interval: float = 0.05,
        shed_high: float = 0.9,
        shed_low: float = 0.5,
        shed_sample: int = 10,
        sheddable: Sequence[Any] = (),
        fsync_interval: int = 64,
        start: bool = True,
    ):
        if service.mode not in ("thread", "process"):
            raise SupervisionError(
                f"cannot supervise a mode={service.mode!r} service: inline "
                "dispatch runs in the caller's thread"
            )
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.service = service
        self.directory = directory
        self.plan = plan
        self.quarantine_policy = (
            quarantine if quarantine is not None else QuarantinePolicy()
        )
        self.checkpoint_interval = checkpoint_interval
        self.restart_budget = restart_budget
        self.restart_backoff = restart_backoff
        self.backoff_cap = backoff_cap
        self.ipc_deadline = ipc_deadline
        self.poll_interval = poll_interval
        self.shed_high = shed_high
        self.shed_low = shed_low
        self.shed_sample = max(2, int(shed_sample))
        self._sheddable_refs = list(sheddable)
        os.makedirs(directory, exist_ok=True)
        self.quarantine_path = os.path.join(directory, "quarantine.ndjson")
        self._quarantine_lock = threading.Lock()
        self._quarantine_depth = 0
        #: Serializes restarts/health checks across the health thread and
        #: explicit ensure_healthy()/drain() callers.
        self._restart_lock = threading.RLock()
        self._fatal: "SupervisionError | None" = None
        #: Wall-clock seconds per completed restart (detection → healthy).
        self._restart_durations: list[float] = []
        self._closed = False
        self._stop = threading.Event()
        #: Thread-mode symbol namespace: journals, checkpoints, and replay
        #: all resolve parameter objects through it.  (Process mode reuses
        #: the service's own registry — deliveries arrive pre-symbolized.)
        self._registry = SymbolRegistry()
        self._symbol_of = trace_symbol_of(self._registry)

        self._shards: list[_ShardState] = []
        for shard in range(service.shards):
            shard_dir = os.path.join(directory, f"shard-{shard}")
            journal_dir = os.path.join(shard_dir, "journal")
            journal = WalWriter(
                journal_dir,
                fsync_interval=fsync_interval,
                on_write_error=self._journal_error_cb(shard),
                fault_hook=(
                    plan.wal_fault_hook(shard) if plan is not None else None
                ),
            )
            self._shards.append(_ShardState(journal, journal_dir))

        #: Thread-mode per-shard fault runtimes (shared between the live
        #: dispatch guard and recovery replay, so delivery ordinals stay
        #: absolute across restarts).
        self._thread_states: "list[WorkerFaultState | None]" = [
            None for _ in range(service.shards)
        ]
        if service.mode == "thread" and plan is not None:
            for shard in range(service.shards):
                config = plan.worker_config(shard)
                if config is not None:
                    self._thread_states[shard] = WorkerFaultState(config)
                delay = plan.queue_delay_hook(shard)
                if delay is not None:
                    service._queues[shard].delay = delay

        # -- load shedding state -------------------------------------------
        self.shed_level = SHED_NONE
        self._shed_counts = {"property": 0, "sampled": 0}
        self._shed_seq = 0
        self._shed_indexes: frozenset[int] = frozenset()

        # -- metrics --------------------------------------------------------
        self._m_restarts = self._m_alive = None
        self._m_quarantined = self._m_quarantine_depth = None
        self._m_shed = self._m_shed_level = None
        if service.telemetry is not None:
            registry = service.telemetry.registry
            self._m_restarts = _declare_metric(registry, "repro_shard_restarts_total")
            self._m_alive = _declare_metric(registry, "repro_shard_alive")
            self._m_quarantined = _declare_metric(
                registry, "repro_events_quarantined_total"
            )
            self._m_quarantine_depth = _declare_metric(
                registry, "repro_quarantine_depth"
            ).labels()
            self._m_shed = _declare_metric(registry, "repro_events_shed_total")
            self._m_shed_level = _declare_metric(registry, "repro_shed_level").labels()
            for shard in range(service.shards):
                self._m_alive.labels(str(shard)).set(1)
            self._m_shed_level.set(0)

        # -- install the service hooks -------------------------------------
        service._supervised = True
        service._delivery_tap = self._tap_delivery
        service._on_worker_quarantine = self._sink_quarantine
        if service.mode == "process":
            service._retire_tap = self._tap_retires
        else:
            service._dispatch_guard = self._thread_guard
            service._on_shard_failure = lambda shard, exc: None  # health loop scans

        self._health_thread: "threading.Thread | None" = None
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._health_thread is None or not self._health_thread.is_alive():
            self._stop.clear()
            self._health_thread = threading.Thread(
                target=self._health_loop, name="repro-supervisor", daemon=True
            )
            self._health_thread.start()

    def close(self) -> None:
        """Heal, drain, stop supervision, close the service and journals."""
        if self._closed:
            return
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
        try:
            self.drain()
        finally:
            self._closed = True
            self.service.close()
            for state in self._shards:
                try:
                    state.journal.close()
                except PersistError:
                    pass

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def drain(self, timeout: float = 60.0) -> None:
        """Drain the service, healing any shard that fails along the way.

        A drain barrier racing an injected crash raises out of the
        service; the supervisor restarts the shard (replaying the journal
        suffix) and retries until a barrier completes with every shard
        healthy.
        """
        deadline = time.monotonic() + timeout
        while True:
            self.ensure_healthy()
            try:
                self.service.drain()
            except ServiceError:
                if time.monotonic() > deadline:
                    raise
                continue
            if self._all_alive():
                return
            if time.monotonic() > deadline:
                raise SupervisionError("drain could not reach a healthy barrier")

    def ensure_healthy(self) -> None:
        """Restart every dead shard now; raise once the budget is blown."""
        with self._restart_lock:
            if self._fatal is not None:
                raise self._fatal
            for shard in range(self.service.shards):
                if not self._shard_alive(shard):
                    self._restart(shard)

    def checkpoint_now(self) -> None:
        """Checkpoint every live shard immediately (shrinks the journal
        suffix a later recovery must replay — call before risky windows)."""
        with self.service._emit_lock:
            for shard in range(self.service.shards):
                if self._shard_alive(shard):
                    self._take_checkpoint(shard)

    # -- taps (run under the service's emit lock) ----------------------------

    def _tap_delivery(self, shard: int, deliveries: "list[tuple]") -> None:
        state = self._shards[shard]
        if self._checkpoint_due(state):
            try:
                self._take_checkpoint(shard)
            except (ServiceError, PersistError):
                # A dead worker can't checkpoint; recovery replays more
                # journal instead.  The next healthy delivery retries.
                pass
        process = self.service.mode == "process"
        for event, params, plan in deliveries:
            symbols = (
                params
                if process
                else {name: self._symbol_of(value) for name, value in params.items()}
            )
            try:
                state.journal.append_delivery(event, symbols, _encode_plan(plan))
            except WalWriteError:
                self._recover_journal(shard, event, symbols, plan)
            state.deliveries += 1

    def _tap_retires(self, symbols: "list[str]") -> None:
        for state in self._shards:
            try:
                state.journal.append_deaths(symbols)
            except WalWriteError:
                # The error callback recorded the signal; deaths for a
                # broken journal are re-derived from the next checkpoint.
                pass

    def _journal_error_cb(self, shard: int) -> Callable[[WalWriteError], None]:
        def on_error(error: WalWriteError) -> None:
            self._shards[shard].journal_error = (
                f"errno={error.errno}: {error}"
            )

        return on_error

    def _recover_journal(
        self, shard: int, event: str, symbols: Mapping[str, str], plan: tuple
    ) -> None:
        """A journal write failed (ENOSPC/EACCES/...): re-establish a
        recovery point without the broken suffix.

        An immediate checkpoint makes the journal suffix empty, a fresh
        writer (picking up the directory's segment numbering) takes over,
        and the delivery that hit the failure is re-journaled — so the
        failure window costs durability for zero deliveries unless the
        checkpoint itself fails too (then the shard keeps running
        unjournaled and :meth:`health` shows the standing error).
        """
        state = self._shards[shard]
        try:
            self._take_checkpoint(shard)
            old_seq = state.journal.seq
            try:
                state.journal.close()
            except PersistError:
                pass
            state.journal = WalWriter(
                state.journal_dir,
                fsync_interval=state.journal.fsync_interval,
                start_seq=old_seq,
                on_write_error=self._journal_error_cb(shard),
                fault_hook=(
                    self.plan.wal_fault_hook(shard)
                    if self.plan is not None
                    else None
                ),
            )
            state.journal.append_delivery(event, symbols, _encode_plan(plan))
        except (ServiceError, PersistError, WalWriteError):
            return

    # -- checkpoints ---------------------------------------------------------

    def _checkpoint_due(self, state: _ShardState) -> bool:
        checkpoint = state.checkpoint
        if checkpoint is None:
            return state.deliveries >= self.checkpoint_interval
        if checkpoint["registry_epoch"] != self.service.registry.epoch:
            # A hot registry op happened since: the old snapshot can no
            # longer restore into an engine built over the new registry.
            return True
        return state.deliveries - checkpoint["count"] >= self.checkpoint_interval

    def _take_checkpoint(self, shard: int) -> None:
        """Snapshot one shard consistently with its journal position.

        Caller holds the emit lock, so the journal cannot advance while
        the position is read.  Process mode needs no drain: the "ck"
        message is FIFO behind every previously sent event batch, so the
        returned snapshot covers exactly the deliveries journaled so far.
        Thread mode waits for the shard queue to go idle instead.
        """
        service = self.service
        state = self._shards[shard]
        state.journal.sync()
        journal_seq = state.journal.seq
        if service.mode == "process":
            with service._control_lock:
                snapshot, sent = service._pool.checkpoint_shard_counted(shard)
            epoch = service._shard_epochs[shard]
            admitted = service._epoch_bases.get((shard, epoch), 0) + sent
        else:
            service._queues[shard].wait_idle()
            if service._shard_failures[shard] is not None:
                raise ServiceError(f"shard {shard} is down")
            epoch = service._shard_epochs[shard]
            admitted = service._admitted[shard]
            snapshot = snapshot_engine(service.engines[shard], self._symbol_of)
        payload = {
            "kind": "shard-supervisor",
            "shard": shard,
            "count": state.deliveries,
            "journal_seq": journal_seq,
            "admitted": admitted,
            "epoch": epoch,
            "registry_epoch": service.registry.epoch,
            "engine": snapshot,
        }
        state.checkpoint_seq += 1
        write_checkpoint_file(
            os.path.join(self.directory, f"shard-{shard}"),
            state.checkpoint_seq,
            payload,
        )
        state.checkpoint = payload

    # -- quarantine ----------------------------------------------------------

    def _sink_quarantine(self, record: Mapping[str, Any]) -> None:
        """Append one dead-letter record (worker- or parent-originated)."""
        with self._quarantine_lock:
            self._quarantine_depth += 1
            with open(self.quarantine_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self._m_quarantined is not None:
            self._m_quarantined.labels(str(record.get("shard", "?"))).inc()
        if self._m_quarantine_depth is not None:
            self._m_quarantine_depth.set(self._quarantine_depth)

    def _quarantine_thread_item(
        self, shard: int, item: tuple, failure: BaseException, attempts: int,
        position: "int | None",
    ) -> None:
        event, params, _plan = item
        record = {
            "shard": shard,
            "event": event,
            "params": {
                name: self._symbol_of(value) for name, value in params.items()
            },
            "error": repr(failure),
            "attempts": attempts,
            "position": position,
        }
        if self.service.flight_recorders:
            try:
                dump = self.service.flight_recorders[shard].trigger(
                    "poison-event", shard=shard, event=event, error=record["error"]
                )
                if dump is not None:
                    record["dump"] = dump
            except BaseException:  # pragma: no cover - best effort
                pass
        self._sink_quarantine(record)

    def quarantined(self) -> list[dict]:
        """Every dead-letter record written so far, oldest first."""
        try:
            with open(self.quarantine_path, encoding="utf-8") as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except FileNotFoundError:
            return []

    # -- thread-mode dispatch guard ------------------------------------------

    def _thread_guard(
        self, shard: int, engine: MonitoringEngine, batch: "list[tuple]"
    ) -> None:
        state = self._thread_states[shard]
        supervised_dispatch(
            engine,
            batch,
            state=state,
            quarantine=self.quarantine_policy,
            on_quarantine=lambda item, failure, attempts: (
                self._quarantine_thread_item(
                    shard, item, failure, attempts,
                    (state.count + 1) if state is not None else None,
                )
            ),
        )

    # -- health / supervision loop -------------------------------------------

    def _shard_alive(self, shard: int) -> bool:
        service = self.service
        if service.mode == "process":
            return service._pool.shard_alive(shard)
        return service._shard_failures[shard] is None

    def _all_alive(self) -> bool:
        return all(
            self._shard_alive(shard) for shard in range(self.service.shards)
        )

    def _health_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.ensure_healthy()
                self._watch_progress()
                self._shed_tick()
            except SupervisionError:
                return  # _fatal is set; emitters see the service failure
            except BaseException:  # pragma: no cover - never kill the loop
                continue

    def _watch_progress(self) -> None:
        """Hang detection: a live worker must either drain its queue or
        answer a heartbeat within ``ipc_deadline``."""
        service = self.service
        now = time.monotonic()
        for shard in range(service.shards):
            state = self._shards[shard]
            if not self._shard_alive(shard):
                continue
            if service.mode == "process":
                try:
                    depth = service._pool._in_qs[shard].qsize()
                except (NotImplementedError, OSError):  # pragma: no cover
                    depth = 0
            else:
                depth = service._queues[shard].depth()
            if depth == 0 or depth < state.last_queue_depth:
                state.last_progress = now
                state.hung = False
            state.last_queue_depth = depth
            if now - state.last_progress < self.ipc_deadline:
                continue
            if service.mode == "process":
                if not service._control_lock.acquire(blocking=False):
                    continue  # a control round trip is in flight: not a hang
                try:
                    ok = service._pool.heartbeat(
                        shard, int(now * 1000), timeout=self.ipc_deadline
                    )
                finally:
                    service._control_lock.release()
                if ok:
                    state.last_progress = time.monotonic()
                else:
                    # Terminate the hung worker; the next ensure_healthy
                    # pass restarts it from checkpoint + journal.
                    state.last_failure = "hang"
                    service._pool._procs[shard].terminate()
            else:
                # Python threads cannot be killed: report, don't restart.
                state.hung = True

    # -- restart --------------------------------------------------------------

    def _count_restart(self, shard: int, reason: str) -> None:
        state = self._shards[shard]
        state.restarts += 1
        state.last_failure = reason
        if self._m_restarts is not None:
            self._m_restarts.labels(str(shard), reason).inc()
        if state.restarts > self.restart_budget:
            fatal = SupervisionError(
                f"shard {shard} exceeded its restart budget "
                f"({self.restart_budget}); last failure: {reason}"
            )
            self._fatal = fatal
            with self.service._failure_lock:
                if self.service._failure is None:
                    self.service._failure = fatal
            raise fatal

    def _backoff(self, shard: int) -> None:
        state = self._shards[shard]
        if state.restarts <= 1:
            return
        delay = min(
            self.restart_backoff * (2 ** (state.restarts - 1)), self.backoff_cap
        )
        time.sleep(delay)

    def _restart(self, shard: int) -> None:
        service = self.service
        started = time.perf_counter()
        if self._m_alive is not None:
            self._m_alive.labels(str(shard)).set(0)
        if service.mode == "process":
            exitcode = service._pool.shard_exitcode(shard)
            from .process_backend import CRASH_EXIT_CODE

            if self._shards[shard].last_failure == "hang":
                reason = "hang"
            elif exitcode == CRASH_EXIT_CODE:
                reason = "crash"
            else:
                reason = "exit"
            if self.plan is not None and reason in ("crash", "hang"):
                # The worker died without reporting which fault killed it;
                # faults fire in position order, so the earliest armed one
                # on this shard is the one that fired.
                self.plan.disarm_earliest(shard)
            self._count_restart(shard, reason)
            self._backoff(shard)
            self._restart_process_shard(shard)
        else:
            failure = service._shard_failures[shard]
            reason = "crash" if isinstance(failure, InjectedCrash) else "exception"
            if isinstance(failure, InjectedFault) and self.plan is not None:
                self.plan.disarm(failure.fault_id)
            self._count_restart(shard, reason)
            self._backoff(shard)
            self._restart_thread_shard(shard)
        if self._m_alive is not None:
            self._m_alive.labels(str(shard)).set(1)
        # Detection-to-healthy latency (includes backoff + replay); the
        # chaos benchmark reports these per run.
        self._restart_durations.append(time.perf_counter() - started)

    def _journal_suffix(self, shard: int) -> "list[tuple[str, Any]]":
        """The (kind, payload) records recovery must replay."""
        state = self._shards[shard]
        try:
            state.journal.sync()
        except (PersistError, WalWriteError):
            pass
        after = state.checkpoint["journal_seq"] if state.checkpoint else 0
        return [
            (kind, payload)
            for _seq, kind, payload in iter_wal_records(
                state.journal_dir, after_seq=after
            )
            if kind in ("delivery", "deaths")
        ]

    def _restart_process_shard(self, shard: int) -> None:
        """Respawn a dead worker from checkpoint and replay its journal.

        Under the emit lock no emitter can interleave, so the replayed
        suffix lands on the fresh worker's queue in original order; the
        new verdict epoch's admission floor is the checkpoint's, and the
        worker's deterministic re-execution regenerates already-delivered
        verdicts below the service's floor — dropped on arrival.
        """
        service = self.service
        pool = service._pool
        state = self._shards[shard]
        with service._emit_lock:
            with service._control_lock:
                checkpoint = state.checkpoint
                new_epoch = service._shard_epochs[shard] + 1
                base = checkpoint["admitted"] if checkpoint else 0
                start_count = checkpoint["count"] if checkpoint else 0
                with service._verdict_cond:
                    service._epoch_bases[(shard, new_epoch)] = base
                    service._shard_epochs[shard] = new_epoch
                fault_config = (
                    self.plan.worker_config(shard, start_count=start_count)
                    if self.plan is not None
                    else None
                )
                pool.respawn_dead(
                    shard,
                    checkpoint["engine"] if checkpoint else None,
                    new_epoch,
                    fault_config,
                )
                batch: list[tuple] = []
                for kind, payload in self._journal_suffix(shard):
                    if kind == "delivery":
                        event, symbols, encoded = payload
                        batch.append((event, symbols, _decode_plan(encoded)))
                    else:  # deaths: retire at the original stream position
                        if batch:
                            pool.send_events(shard, batch)
                            batch = []
                        pool.send_retires_to(shard, list(payload))
                if batch:
                    pool.send_events(shard, batch)

    def _restart_thread_shard(self, shard: int) -> None:
        """Rebuild a failed thread shard: fresh engine, checkpoint restore,
        journal replay, then a new queue + worker via the service.

        Replay runs in this thread under the emit lock — the failed
        worker already exited, so the engine is single-threaded here.
        Symbols resolving in the supervisor's registry replay as the live
        parent objects; dead symbols replay as
        :class:`~repro.runtime.tracelog.ReplayToken` stand-ins dropped
        right after their last journal occurrence, reproducing the
        original release-on-take death timing (what the single-engine
        reference sees under ``retire_after_last_use``).
        """
        service = self.service
        state = self._shards[shard]
        with service._emit_lock:
            checkpoint = state.checkpoint
            new_epoch = service._shard_epochs[shard] + 1
            base = checkpoint["admitted"] if checkpoint else 0
            start_count = checkpoint["count"] if checkpoint else 0
            service._shard_epochs[shard] = new_epoch
            engine = MonitoringEngine(
                service.registry,
                on_verdict=service._verdict_callback(shard, new_epoch, base),
                telemetry=service.telemetry,
                **service._engine_kwargs,
            )
            tokens: dict[str, Any] = {}
            if checkpoint is not None:
                for symbol in _snapshot_symbols(checkpoint["engine"]):
                    value = self._registry.resolve(symbol)
                    if value is not None:
                        tokens[symbol] = value
                restore_into(engine, checkpoint["engine"], tokens)
            suffix = [
                payload
                for kind, payload in self._journal_suffix(shard)
                if kind == "delivery"
            ]
            # Death timing: a symbol whose parent object is gone replays
            # as a token dropped right after its last suffix occurrence;
            # dead checkpoint symbols with no occurrences drop before the
            # replay starts.
            last_use: dict[str, int] = {}
            for position, (_event, symbols, _plan) in enumerate(suffix):
                for symbol in symbols.values():
                    last_use[symbol] = position
            drop_after: dict[int, list[str]] = {}
            for symbol in set(tokens) | set(last_use):
                if symbol.startswith("v:"):
                    continue
                if self._registry.resolve(symbol) is not None:
                    continue
                if symbol in last_use:
                    drop_after.setdefault(last_use[symbol], []).append(symbol)
                else:
                    tokens.pop(symbol, None)
            fault_state = WorkerFaultState(
                self.plan.worker_config(shard, start_count=start_count)
                if self.plan is not None
                else None
            )
            for position, (event, symbols, encoded) in enumerate(suffix):
                params: dict[str, Any] = {}
                for name, symbol in symbols.items():
                    value = tokens.get(symbol)
                    if value is None:
                        value = self._registry.resolve(symbol)
                        if value is None:
                            value = (
                                symbol
                                if symbol.startswith("v:")
                                else ReplayToken(symbol)
                            )
                        tokens[symbol] = value
                    params[name] = value
                item = (event, params, _decode_plan(encoded))
                while True:
                    try:
                        supervised_dispatch(
                            engine,
                            [item],
                            state=fault_state,
                            quarantine=self.quarantine_policy,
                            on_quarantine=lambda it, failure, attempts: (
                                self._quarantine_thread_item(
                                    shard, it, failure, attempts,
                                    fault_state.count + 1,
                                )
                            ),
                        )
                        break
                    except InjectedCrash as crash:
                        # A second scheduled crash fired mid-replay: the
                        # worker "dies" again.  Restarting from the same
                        # checkpoint would deterministically regenerate
                        # this exact prefix, so disarm and continue — the
                        # verdict stream is identical either way.
                        if self.plan is not None:
                            self.plan.disarm(crash.fault_id)
                        fault_state.consume({"id": crash.fault_id})
                        self._count_restart(shard, "crash")
                for symbol in drop_after.get(position, ()):
                    tokens.pop(symbol, None)
            self._thread_states[shard] = (
                fault_state if fault_state.faults or self.plan else None
            )
            service._replace_thread_shard(shard, engine)

    # -- load shedding ---------------------------------------------------------

    def _saturation(self) -> float:
        """Worst shard queue fill fraction (0.0 when unbounded/empty)."""
        service = self.service
        worst = 0.0
        if service.mode == "process":
            capacity = service._queue_capacity
            if capacity < 1:
                return 0.0
            for shard in range(service.shards):
                try:
                    depth = service._pool._in_qs[shard].qsize()
                except (NotImplementedError, OSError):  # pragma: no cover
                    depth = 0
                worst = max(worst, depth / capacity)
        else:
            for queue in service._queues:
                if queue.capacity > 0:
                    worst = max(worst, queue.depth() / queue.capacity)
        return worst

    def _shed_tick(self) -> None:
        saturation = self._saturation()
        if saturation >= self.shed_high and self.shed_level < SHED_SAMPLED:
            self._escalate_shed()
        elif saturation <= self.shed_low and self.shed_level > SHED_NONE:
            self._deescalate_shed()

    def _shed_filter(self, event: str, _params: Mapping[str, Any]) -> bool:
        """Installed as the service's shed filter (runs under the emit
        lock).  Returns True to drop; every drop is counted exactly."""
        if (
            self.shed_level >= SHED_PROPERTY
            and self._shed_indexes
            and self.service.router.declaring_indexes(event) <= self._shed_indexes
        ):
            self._shed_counts["property"] += 1
            if self._m_shed is not None:
                self._m_shed.labels("property").inc()
            return True
        if self.shed_level >= SHED_SAMPLED:
            self._shed_seq += 1
            if self._shed_seq % self.shed_sample != 0:
                self._shed_counts["sampled"] += 1
                if self._m_shed is not None:
                    self._m_shed.labels("sampled").inc()
                return True
        return False

    def _escalate_shed(self) -> None:
        self.shed_level += 1
        if self.shed_level == SHED_PROPERTY:
            indexes = set()
            for ref in self._sheddable_refs:
                try:
                    entry = self.service.registry.entry(ref)
                except Exception:
                    continue
                if not entry.removed:
                    indexes.add(entry.index)
                    try:
                        self.service.set_property_enabled(entry.index, False)
                    except Exception:
                        continue
            self._shed_indexes = frozenset(indexes)
            self.service._shed_filter = self._shed_filter
        if self._m_shed_level is not None:
            self._m_shed_level.set(self.shed_level)

    def _deescalate_shed(self) -> None:
        self.shed_level = SHED_NONE
        self.service._shed_filter = None
        for index in self._shed_indexes:
            try:
                self.service.set_property_enabled(index, True)
            except Exception:
                continue
        self._shed_indexes = frozenset()
        if self._m_shed_level is not None:
            self._m_shed_level.set(0)

    # -- introspection ---------------------------------------------------------

    def shed_counts(self) -> dict[str, int]:
        """Exact events dropped so far, by shed policy."""
        return dict(self._shed_counts)

    def restarts(self) -> int:
        """Total supervised restarts across all shards."""
        return sum(state.restarts for state in self._shards)

    def restart_latencies(self) -> list[float]:
        """Seconds each completed restart took, in completion order."""
        return list(self._restart_durations)

    def health(self) -> dict[str, Any]:
        """The supervision plane's live state (the obs ``health`` view)."""
        service = self.service
        shards = []
        for shard in range(service.shards):
            state = self._shards[shard]
            if service.mode == "process":
                try:
                    depth = service._pool._in_qs[shard].qsize()
                except (NotImplementedError, OSError):  # pragma: no cover
                    depth = None
                capacity = service._queue_capacity
            else:
                depth = service._queues[shard].depth()
                capacity = service._queues[shard].capacity
            shards.append(
                {
                    "shard": shard,
                    "alive": self._shard_alive(shard),
                    "hung": state.hung,
                    "epoch": service._shard_epochs[shard],
                    "restarts": state.restarts,
                    "last_failure": state.last_failure,
                    "deliveries": state.deliveries,
                    "checkpoint": (
                        {
                            "count": state.checkpoint["count"],
                            "journal_seq": state.checkpoint["journal_seq"],
                        }
                        if state.checkpoint is not None
                        else None
                    ),
                    "queue_depth": depth,
                    "queue_capacity": capacity,
                    "journal_error": state.journal_error,
                }
            )
        return {
            "mode": service.mode,
            "shards": shards,
            "quarantine": {
                "depth": self._quarantine_depth,
                "path": self.quarantine_path,
            },
            "shed": {
                "level": self.shed_level,
                "counts": dict(self._shed_counts),
            },
            "restart_budget": self.restart_budget,
            "fatal": str(self._fatal) if self._fatal is not None else None,
        }


def supervise(
    specs: Any,
    directory: str,
    *,
    plan: "FaultPlan | None" = None,
    quarantine: "QuarantinePolicy | None" = None,
    supervisor_options: "Mapping[str, Any] | None" = None,
    **service_kwargs: Any,
) -> ShardSupervisor:
    """Build a :class:`MonitorService` and its :class:`ShardSupervisor`
    together (``supervisor.service`` holds the service).

    This is the right constructor when using a fault plan in process
    mode: worker fault configs must cross the fork at service
    construction, before the supervisor exists.
    """
    quarantine = quarantine if quarantine is not None else QuarantinePolicy()
    mode = service_kwargs.get("backend") or service_kwargs.get("mode", "thread")
    if mode == "process":
        shards = service_kwargs.get("shards", 4)
        service_kwargs["_fault_configs"] = (
            [plan.worker_config(shard) for shard in range(shards)]
            if plan is not None
            else None
        )
        service_kwargs["_quarantine"] = quarantine.to_config()
    service = MonitorService(specs, **service_kwargs)
    options = dict(supervisor_options or {})
    return ShardSupervisor(
        service, directory, plan=plan, quarantine=quarantine, **options
    )
