"""The RV specification language: parser and compiler.

See Figures 2-4 of the paper for the original syntax; this reproduction
keeps the event/formalism/handler structure and replaces the AspectJ
pointcut declarations with the instrumentation API of
:mod:`repro.instrument`.
"""

from .ast import EventDecl, HandlerDecl, LogicBlock, SpecAst
from .compiler import CompiledProperty, CompiledSpec, compile_spec, load_spec
from .parser import parse_spec
from .registry import PropertyEntry, PropertyRegistry, normalize_properties

__all__ = [
    "EventDecl",
    "HandlerDecl",
    "LogicBlock",
    "SpecAst",
    "CompiledProperty",
    "CompiledSpec",
    "PropertyEntry",
    "PropertyRegistry",
    "compile_spec",
    "load_spec",
    "normalize_properties",
    "parse_spec",
]
