"""Abstract syntax of the RV specification language (Figures 2-4).

A specification declares a name, a parameter list, a set of parametric
events, one or more logic blocks (``fsm:``, ``ere:``, ``ltl:``, ``cfg:``),
and handlers (``@category``) attached to the preceding logic block.

The AspectJ pointcut part of the paper's event declarations (``call``,
``target``, ``returning`` ...) does not exist at this level in the Python
reproduction: an event declaration names only the parameters it binds, and
binding events to program points is the job of the instrumentation layer
(:mod:`repro.instrument`), which plays the role of the AspectJ weaver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventDecl", "HandlerDecl", "LogicBlock", "SpecAst", "FORMALISMS"]

#: The formalism keywords the parser recognizes.
FORMALISMS = ("fsm", "ere", "ltl", "cfg")


@dataclass(frozen=True)
class EventDecl:
    """``event update(c)`` — an event and the parameters it binds."""

    name: str
    params: tuple[str, ...]


@dataclass(frozen=True)
class HandlerDecl:
    """``@match "message"`` — fire when the verdict enters ``category``.

    ``message`` is an optional diagnostic string (the analog of the paper's
    ``System.out.println`` handler bodies); arbitrary Python callables are
    attached post-compilation via :meth:`repro.spec.compiler.CompiledProperty.on`.
    """

    category: str
    message: str | None = None


@dataclass(frozen=True)
class LogicBlock:
    """One ``formalism: body`` block with its trailing handlers."""

    formalism: str
    body: str
    handlers: tuple[HandlerDecl, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class SpecAst:
    """A full parsed specification."""

    name: str
    parameters: tuple[str, ...]
    events: tuple[EventDecl, ...]
    logics: tuple[LogicBlock, ...]
