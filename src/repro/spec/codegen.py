"""Generated per-(property, event) dispatch kernels.

:mod:`repro.spec.dispatch` lowers a compiled property to a static
:class:`~repro.spec.dispatch.DispatchPlan`; the runtime's compiled path
then *interprets* that plan — every event walks ``_EventDispatch``
attributes, loops over check tuples, and calls through the shared
``RVMap`` helpers.  This module goes one step further, the JavaMOP move
of specializing the whole per-event code path at property-compile time
(JinMGR11 Section 4.1): for each ``(property, event)`` pair it generates
*straight-line Python source* with

* the slot-tuple shape unrolled (``v0 = values["c"]`` …, no list
  comprehension, no loop over ``ed.params``),
* the interned event id folded into a precomputed per-event transition
  *column* (one subscript per monitor step instead of two),
* the indexing-tree walk — including the ``RVMap`` incremental dead-key
  scan and the leaf inspection it performs — inlined level by level, and
* the creation strategy (self sources, fresh creation, validity checks)
  unrolled into nested branches with literal extraction indices.

The generated source is compiled once with :func:`exec` and cached in a
process-wide :class:`KernelCache` keyed by the property's registry slot
:meth:`~repro.spec.compiler.CompiledProperty.fingerprint` (which covers
spec name, formalism, alphabet, and formalism-level semantics), so hot
load/unload cycles and process-backend recompiles of the *same*
property reuse the compiled code object, while any semantic change —
a different FSM, a different alphabet — produces a different
fingerprint and forces regeneration.  Factories close over one
:class:`~repro.runtime.engine.PropertyRuntime`'s trees and statistics at
bind time, so one cached module serves any number of runtimes.

Equivalence contract
--------------------
The kernels must be *bit-identical in observable behaviour* to
``PropertyRuntime._handle_compiled``: not just the same verdicts, but the
same sequence of ``RVMap`` scan operations.  Lazy GC discovers deaths on
access, so the set of monitors a later event still steps depends on how
many buckets every earlier operation scanned — reordering or eliding a
single ``scan_some`` would change flag-discovery timing and, with it,
observable verdict streams.  Every inlined walk therefore performs
exactly the operations of ``_TreeBase.lookup_vals`` (scan, probe,
create) in the same order; the inlining removes call overhead, never
operations.  ``tests/runtime/test_dispatch_equivalence.py`` holds all
three dispatch modes to the same oracle.

Batch stepping
--------------
For events that can never create monitors and whose property lowers to
a flat FSM table, a second *batch* factory is generated: it steps a
whole group of same-event bindings through an :mod:`array`-backed
transition column in one call, amortizing the per-event call and
attribute overhead.  Events with creation (or engines under eager
propagation, whose death boundaries interleave with dispatch) fall back
to the scalar kernel — see ``MonitoringEngine._emit_batch_codegen``.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .dispatch import DispatchPlan, EventPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compiler import CompiledProperty

__all__ = [
    "KernelModule",
    "KernelCache",
    "shared_kernel_cache",
    "kernel_module_source",
    "kernel_source_for",
    "bind_kernels",
]


_INDENT = "    "


def _sanitize(name: str) -> str:
    return re.sub(r"\W", "_", name)


class _Writer:
    """Tiny indented-source builder for the generated module."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(_INDENT * depth + text)

    def blank(self) -> None:
        self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _KernelEmitter:
    """Emits one event's factory (and optional batch factory).

    ``prelude`` lines run once at bind time inside the factory (closure
    bindings pulled off the runtime and its resolved ``_EventDispatch``);
    the kernel body references only those locals, literals, and the
    event's ``v0..vN`` slot variables.
    """

    def __init__(self, plan: DispatchPlan, ep: EventPlan, has_fsm: bool):
        self.plan = plan
        self.ep = ep
        self.has_fsm = has_fsm
        self.depth = len(ep.params)
        self.prelude: list[str] = []
        self._uid = 0
        self._tree_ctxs: dict[str, dict[str, str]] = {}
        #: ``v{i}`` -> hoisted ``_id{i}`` variable (ids are stable while the
        #: values dict keeps the parameters alive, i.e. the whole kernel body).
        self._id_cache: dict[str, str] = {}
        #: ``v{i}`` -> lazily-built shared ``_pr{i}`` ParamRef variable.
        #: ParamRef identity is not observable (only referent deadness is),
        #: so one ref per parameter per invocation serves every tree entry
        #: and the monitor's own params table.
        self._pr_cache: dict[str, str] = {}
        # Domains that actually have trees at runtime: the runtime builds
        # one per monitor domain plus one per event domain, and
        # ``_resolve_dispatch`` filters self-sources by the same predicate
        # — mirrored here so source indices line up with ``ed``.
        self.available = set(plan.monitor_domains) | set(plan.event_domains)
        self.sources = tuple(
            src for src in ep.self_sources if src.domain in self.available
        )

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def bind(self, name: str, expr: str) -> str:
        self.prelude.append(f"{name} = {expr}")
        return name

    def tree_ctx(self, tree_expr: str) -> dict[str, str]:
        """Bind-time handles on one ``IndexingTree``'s GC plumbing.

        Memoized per tree expression: every walk over the same tree in one
        kernel shares the notify/inspector/extension bindings.
        """
        ctx = self._tree_ctxs.get(tree_expr)
        if ctx is None:
            n = self.uid()
            ctx = {
                "nmon": self.bind(f"t{n}_nmon", f"{tree_expr}._notify"),
                "nsub": self.bind(f"t{n}_nsub", f"{tree_expr}._notify_subtree"),
                "trx": self.bind(
                    f"t{n}_trx", f"{tree_expr}.tracks_extensions"
                ),
                "il": self.bind(f"t{n}_il", f"{tree_expr}._inspect_leaf"),
                "im": self.bind(f"t{n}_im", f"{tree_expr}._inspect_map"),
            }
            self._tree_ctxs[tree_expr] = ctx
        return ctx

    # -- inlined RVMap machinery -------------------------------------------

    def emit_scan(
        self,
        w: _Writer,
        d: int,
        node: str,
        buckets: str,
        holds_leaves: bool,
        ctx: dict[str, str],
    ) -> None:
        """Inline ``RVMap.scan_some`` on ``node`` (exact op-for-op copy).

        ``holds_leaves`` selects the inlined inspector: the fused
        ``IndexingTree._inspect_leaf`` for leaf-holding maps, the
        emptiness test of ``_inspect_map`` otherwise.  Dirty buckets are
        rebuilt by the inlined ``_scan_bucket`` tail (:meth:`emit_rebuild`),
        which owns the death-notification plumbing.
        """
        u = self.uid()
        w.emit(d, f"if {buckets}:")
        w.emit(d + 1, f"_ks{u} = {node}._scan_keys")
        w.emit(d + 1, f"_p{u} = {node}._scan_pos")
        # The key list only changes at the wrap refresh below (bucket
        # rebuilds touch the dict, never ``_scan_keys``), so its length is
        # loop-invariant between refreshes.
        w.emit(d + 1, f"_kn{u} = len(_ks{u})")
        w.emit(d + 1, f"for _s{u} in _brange:")
        w.emit(d + 2, f"if _p{u} >= _kn{u}:")
        w.emit(d + 3, f"_ks{u} = {node}._scan_keys = list({buckets})")
        w.emit(d + 3, f"_p{u} = 0")
        w.emit(d + 3, f"_kn{u} = len(_ks{u})")
        w.emit(d + 3, f"if not _kn{u}:")
        w.emit(d + 4, "break")
        w.emit(d + 2, f"_b{u} = {buckets}.get(_ks{u}[_p{u}])")
        w.emit(d + 2, f"_p{u} += 1")
        w.emit(d + 2, f"if _b{u} is None:")
        w.emit(d + 3, "continue")
        w.emit(d + 2, f"_dt{u} = False")
        w.emit(d + 2, f"for _r{u}, _v{u} in _b{u}:")
        w.emit(d + 3, f"_w{u} = _r{u}._weak")
        w.emit(
            d + 3,
            f"if (_w{u}() if _w{u} is not None else _r{u}._strong) is None:",
        )
        w.emit(d + 4, f"_dt{u} = True")
        w.emit(d + 4, "break")
        if holds_leaves:
            # Inlined IndexingTree._inspect_leaf (fused clean + emptiness).
            w.emit(d + 3, f"_o{u} = _v{u}.own")
            w.emit(d + 3, f"if _o{u} is not None and _o{u}.flagged:")
            w.emit(d + 4, f"_v{u}.own = _o{u} = None")
            w.emit(d + 3, f"_x{u} = _v{u}.extensions")
            w.emit(d + 3, f"_lv{u} = False")
            w.emit(d + 3, f"if _x{u} is not None:")
            w.emit(d + 4, f"for _m{u} in _x{u}._items:")
            w.emit(d + 5, f"if _m{u}.flagged:")
            w.emit(d + 6, f"_x{u}.compact()")
            w.emit(d + 6, f"_lv{u} = bool(_x{u}._items)")
            w.emit(d + 6, "break")
            w.emit(d + 5, f"_lv{u} = True")
            w.emit(
                d + 3,
                f"if _v{u}.touched is None and _o{u} is None and not _lv{u}:",
            )
            w.emit(d + 4, f"_dt{u} = True")
            w.emit(d + 4, "break")
        else:
            w.emit(d + 3, f"if not _v{u}._buckets:")
            w.emit(d + 4, f"_dt{u} = True")
            w.emit(d + 4, "break")
        w.emit(d + 2, f"if _dt{u}:")
        self.emit_rebuild(
            w, d + 3, buckets, f"_ks{u}[_p{u} - 1]", holds_leaves, ctx
        )
        w.emit(d + 1, f"{node}._scan_pos = _p{u}")

    def emit_rebuild(
        self,
        w: _Writer,
        d: int,
        buckets: str,
        key_expr: str,
        holds_leaves: bool,
        ctx: dict[str, str],
    ) -> None:
        """Inline ``RVMap._scan_bucket(key, known_dirty=True)``.

        Same entry order as the interpreted rebuild: each dead key is
        notified (Figure 7A) then dropped (7B); each live entry is
        re-inspected — idempotently, the fast pass may already have
        cleaned it — and kept or dropped.  For leaf-holding maps the
        ``_notify_subtree`` leaf case (own + extension snapshot through
        ``tree._notify``) is inlined too; interior maps recurse through
        the bound ``_notify_subtree``.
        """
        u = self.uid()
        nmon, nsub = ctx["nmon"], ctx["nsub"]
        w.emit(d, f"_dk{u} = {key_expr}")
        w.emit(d, f"_db{u} = {buckets}.get(_dk{u})")
        w.emit(d, f"if _db{u} is not None:")
        d += 1
        w.emit(d, f"_sv{u} = []")
        w.emit(d, f"_cn{u} = 0")
        w.emit(d, f"for _dr{u}, _dv{u} in _db{u}:")
        w.emit(d + 1, f"_dw{u} = _dr{u}._weak")
        w.emit(
            d + 1,
            f"if (_dw{u}() if _dw{u} is not None else _dr{u}._strong) is None:",
        )
        if holds_leaves:
            w.emit(d + 2, f"_do{u} = _dv{u}.own")
            w.emit(d + 2, f"if _do{u} is not None:")
            w.emit(d + 3, f"{nmon}(_do{u})")
            w.emit(d + 2, f"_dx{u} = _dv{u}.extensions")
            w.emit(d + 2, f"if _dx{u} is not None:")
            w.emit(d + 3, f"for _dm{u} in tuple(_dx{u}._items):")
            w.emit(d + 4, f"{nmon}(_dm{u})")
        else:
            w.emit(d + 2, f"{nsub}(_dv{u})")
        w.emit(d + 2, f"_cn{u} += 1")
        if holds_leaves:
            w.emit(d + 1, "else:")
            w.emit(d + 2, f"_do{u} = _dv{u}.own")
            w.emit(d + 2, f"if _do{u} is not None and _do{u}.flagged:")
            w.emit(d + 3, f"_dv{u}.own = _do{u} = None")
            w.emit(d + 2, f"_dx{u} = _dv{u}.extensions")
            w.emit(d + 2, f"_dl{u} = False")
            w.emit(d + 2, f"if _dx{u} is not None:")
            w.emit(d + 3, f"for _dm{u} in _dx{u}._items:")
            w.emit(d + 4, f"if _dm{u}.flagged:")
            w.emit(d + 5, f"_dx{u}.compact()")
            w.emit(d + 5, f"_dl{u} = bool(_dx{u}._items)")
            w.emit(d + 5, "break")
            w.emit(d + 4, f"_dl{u} = True")
            w.emit(
                d + 2,
                f"if _dv{u}.touched is not None or _do{u} is not None"
                f" or _dl{u}:",
            )
            w.emit(d + 3, f"_sv{u}.append((_dr{u}, _dv{u}))")
            w.emit(d + 2, "else:")
            w.emit(d + 3, f"_cn{u} += 1")
        else:
            w.emit(d + 1, f"elif _dv{u}._buckets:")
            w.emit(d + 2, f"_sv{u}.append((_dr{u}, _dv{u}))")
            w.emit(d + 1, "else:")
            w.emit(d + 2, f"_cn{u} += 1")
        w.emit(d, f"if _cn{u}:")
        w.emit(d + 1, f"if _sv{u}:")
        w.emit(d + 2, f"{buckets}[_dk{u}] = _sv{u}")
        w.emit(d + 1, "else:")
        w.emit(d + 2, f"del {buckets}[_dk{u}]")

    def id_expr(self, val: str) -> str:
        """``id(val)``, through the hoisted per-parameter variable if any."""
        return self._id_cache.get(val, f"id({val})")

    def emit_paramref(self, w: _Writer, d: int, val: str, out: str) -> str:
        """Inline the ``ParamRef`` constructor (weak with immortal fallback).

        Returns the variable holding the ref: for event parameters that is
        the lazily-built shared ``_pr{i}`` (built at most once per kernel
        invocation), otherwise ``out``.
        """
        cached = self._pr_cache.get(val)
        if cached is not None:
            w.emit(d, f"if {cached} is None:")
            self._emit_paramref_body(w, d + 1, val, cached)
            return cached
        self._emit_paramref_body(w, d, val, out)
        return out

    def _emit_paramref_body(self, w: _Writer, d: int, val: str, out: str) -> None:
        w.emit(d, f"{out} = _PR_new(_ParamRef)")
        w.emit(d, f"{out}.param_id = {self.id_expr(val)}")
        w.emit(d, "try:")
        w.emit(d + 1, f"{out}._weak = _wref({val})")
        w.emit(d + 1, f"{out}._strong = None")
        w.emit(d, "except TypeError:")
        w.emit(d + 1, f"{out}._weak = None")
        w.emit(d + 1, f"{out}._strong = {val}")

    def emit_put_fresh(
        self, w: _Writer, d: int, buckets: str, val: str, child: str
    ) -> None:
        """Inline ``RVMap.put_fresh`` (the post-probe insert)."""
        u = self.uid()
        ref = self.emit_paramref(w, d, val, f"_pf{u}")
        w.emit(d, f"_ky{u} = {self.id_expr(val)}")
        w.emit(d, f"_pb{u} = {buckets}.get(_ky{u})")
        w.emit(d, f"if _pb{u} is None:")
        w.emit(d + 1, f"{buckets}[_ky{u}] = [({ref}, {child})]")
        w.emit(d, "else:")
        w.emit(d + 1, f"_pb{u}.append(({ref}, {child}))")

    def emit_new_leaf(
        self, w: _Writer, d: int, ctx: dict[str, str], child: str
    ) -> None:
        """Inline ``IndexingTree._new_leaf`` (Leaf + optional RVSet)."""
        u = self.uid()
        w.emit(d, f"{child} = _LF_new(_Leaf)")
        w.emit(d, f"{child}.own = None")
        w.emit(d, f"if {ctx['trx']}:")
        w.emit(d + 1, f"_xs{u} = _RS_new(_RVSet)")
        w.emit(d + 1, f"_xs{u}._items = []")
        w.emit(d + 1, f"_xs{u}._active = None")
        w.emit(d + 1, f"{child}.extensions = _xs{u}")
        w.emit(d, "else:")
        w.emit(d + 1, f"{child}.extensions = None")
        w.emit(d, f"{child}.touched = None")

    def emit_new_map(
        self,
        w: _Writer,
        d: int,
        ctx: dict[str, str],
        child: str,
        child_holds_leaves: bool,
    ) -> None:
        """Inline interior-node construction (``_TreeBase._new_node``)."""
        insp = ctx["il"] if child_holds_leaves else ctx["im"]
        w.emit(d, f"{child} = _RM_new(_RVMap)")
        w.emit(d, f"{child}._buckets = {{}}")
        w.emit(d, f"{child}._scan_keys = []")
        w.emit(d, f"{child}._scan_pos = 0")
        w.emit(d, f"{child}.on_dead_value = {ctx['nsub']}")
        w.emit(d, f"{child}.inspect_value = {insp}")
        w.emit(d, f"{child}.scan_budget = _budget")

    def emit_probe(
        self, w: _Writer, d: int, buckets: str, val: str, child: str
    ) -> None:
        """Inline the identity probe of ``RVMap.get`` (post-scan half)."""
        u = self.uid()
        w.emit(d, f"_bb{u} = {buckets}.get({self.id_expr(val)})")
        w.emit(d, f"{child} = None")
        w.emit(d, f"if _bb{u}:")
        w.emit(d + 1, f"for _r{u}, _c{u} in _bb{u}:")
        w.emit(d + 2, f"_w{u} = _r{u}._weak")
        w.emit(
            d + 2,
            f"if (_w{u}() if _w{u} is not None else _r{u}._strong) is {val}:",
        )
        w.emit(d + 3, f"{child} = _c{u}")
        w.emit(d + 3, "break")

    def emit_main_walk(self, w: _Writer, d: int) -> None:
        """The event-domain walk of ``lookup_vals(vals, create=True)``."""
        depth = self.depth
        ctx = self.tree_ctx("tree")
        node, buckets = "root", "buckets0"
        for level in range(depth):
            leaf_level = level + 1 == depth
            child = "leaf" if leaf_level else f"node{level + 1}"
            self.emit_scan(w, d, node, buckets, leaf_level, ctx)
            self.emit_probe(w, d, buckets, f"v{level}", child)
            w.emit(d, f"if {child} is None:")
            if leaf_level:
                self.emit_new_leaf(w, d + 1, ctx, child)
            else:
                self.emit_new_map(w, d + 1, ctx, child, level + 2 == depth)
            self.emit_put_fresh(w, d + 1, buckets, f"v{level}", child)
            if not leaf_level:
                node = child
                buckets = f"_bk{level + 1}"
                w.emit(d, f"{buckets} = {node}._buckets")

    def emit_aux_create_walk(
        self,
        w: _Writer,
        d: int,
        tree_path: str,
        extract: tuple[int, ...],
        out: str,
    ) -> None:
        """A ``lookup_vals(…, create=True)`` over an auxiliary tree.

        Used by the inlined materialize to register the new monitor in
        the extension sets of every strictly-smaller event domain; the
        walk performs exactly the scan/probe/create sequence of
        ``_TreeBase.lookup_vals`` on that tree.
        """
        n = self.uid()
        root = self.bind(f"t{n}_root", f"{tree_path}._root")
        depth = len(extract)
        if depth == 0:
            w.emit(d, f"{out} = {root}")
            return
        ctx = self.tree_ctx(tree_path)
        node = root
        buckets = self.bind(f"t{n}_buckets", f"{root}._buckets")
        for i in range(depth):
            leaf_level = i + 1 == depth
            child = out if leaf_level else f"_n{n}_{i + 1}"
            self.emit_scan(w, d, node, buckets, leaf_level, ctx)
            self.emit_probe(w, d, buckets, f"v{extract[i]}", child)
            w.emit(d, f"if {child} is None:")
            if leaf_level:
                self.emit_new_leaf(w, d + 1, ctx, child)
            else:
                self.emit_new_map(w, d + 1, ctx, child, i + 2 == depth)
            self.emit_put_fresh(w, d + 1, buckets, f"v{extract[i]}", child)
            if not leaf_level:
                node = child
                buckets = f"_nbk{n}_{i + 1}"
                w.emit(d, f"{buckets} = {node}._buckets")

    def emit_aux_walk(
        self,
        w: _Writer,
        d: int,
        tree_path: str,
        extract: tuple[int, ...],
        out: str,
    ) -> None:
        """A ``lookup_vals(…, create=False)`` over an auxiliary tree.

        ``tree_path`` is the bind-time expression for the tree (e.g.
        ``ed.self_sources[0].tree``); ``extract`` gives the event-slot
        positions feeding each level.
        """
        n = self.uid()
        root = self.bind(f"t{n}_root", f"{tree_path}._root")
        depth = len(extract)
        w.emit(d, f"{out} = None")
        ctx = self.tree_ctx(tree_path) if depth else None

        def level(d: int, node: str, buckets: str, i: int) -> None:
            leaf_level = i + 1 == depth
            child = out if leaf_level else f"_n{n}_{i + 1}"
            self.emit_scan(w, d, node, buckets, leaf_level, ctx)
            self.emit_probe(w, d, buckets, f"v{extract[i]}", child)
            if not leaf_level:
                w.emit(d, f"if {child} is not None:")
                nb = f"_nb{n}_{i + 1}"
                w.emit(d + 1, f"{nb} = {child}._buckets")
                level(d + 1, child, nb, i + 1)

        if depth == 0:
            # Zero-parameter aux domains never occur (checks and sources
            # are nonempty proper sub-domains), but stay defensive.
            w.emit(d, f"{out} = {root}")
        else:
            buckets = self.bind(f"t{n}_buckets", f"{root}._buckets")
            level(d, root, buckets, 0)

    # -- kernel sections ----------------------------------------------------

    def emit_header(self, w: _Writer, d: int, spec_name: str) -> None:
        ep = self.ep
        w.emit(d, "if record:")
        w.emit(d + 1, "stats.events += 1")
        w.emit(d, "serial = rt._event_serial + 1")
        w.emit(d, "rt._event_serial = serial")
        if self.depth:
            w.emit(d, "try:")
            for i, param in enumerate(ep.params):
                w.emit(d + 1, f"v{i} = values[{param!r}]")
            w.emit(d, "except KeyError as exc:")
            prefix = (
                f"event {ep.event!r} of {spec_name} requires parameter "
            )
            w.emit(
                d + 1,
                f"raise InconsistentEventError({prefix!r} + repr(exc.args[0])) "
                "from None",
            )
            for i in range(self.depth):
                w.emit(d, f"_id{i} = id(v{i})")
                self._id_cache[f"v{i}"] = f"_id{i}"
            if ep.has_creation:
                # Creating kernels reference each parameter's ParamRef at
                # several sites (walk inserts + the monitor's params table);
                # share one lazily-built ref per parameter per invocation.
                for i in range(self.depth):
                    w.emit(d, f"_pr{i} = None")
                    self._pr_cache[f"v{i}"] = f"_pr{i}"
            self.emit_main_walk(w, d)
        else:
            w.emit(d, "leaf = root_leaf")
        w.emit(d, "if leaf.touched is None:")
        w.emit(d + 1, "leaf.touched = serial")

    def emit_step(self, w: _Writer, d: int) -> None:
        """Inlined ``RVSet.iter_active`` + the monitor-stepping loop."""
        ep = self.ep
        w.emit(d, "extensions = leaf.extensions")
        w.emit(d, "if extensions is not None and extensions._items:")
        d += 1
        w.emit(d, "for _m in extensions._items:")
        w.emit(d + 1, "if _m.flagged:")
        w.emit(d + 2, "extensions.compact()")
        w.emit(d + 2, "break")
        w.emit(d, "active = extensions._active")
        w.emit(d, "if active is None:")
        w.emit(d + 1, "active = extensions._active = tuple(extensions._items)")
        if self.has_fsm:
            w.emit(d, "for monitor in active:")
            w.emit(d + 1, "base = monitor.base")
            w.emit(d + 1, "_sid = col[base._state_id]")
            w.emit(d + 1, "base._state_id = _sid")
            w.emit(d + 1, f"monitor.last_event = {ep.event!r}")
            w.emit(d + 1, "_vd = fire_col[_sid]")
            w.emit(d + 1, "if _vd is not None:")
            w.emit(d + 2, "fire_goal(monitor, _vd)")
        else:
            w.emit(d, "for monitor in active:")
            w.emit(d + 1, f"step(monitor, {ep.event!r})")

    def emit_creation(self, w: _Writer, d: int) -> None:
        ep = self.ep
        vals = "(" + ", ".join(f"v{i}" for i in range(self.depth)) + (
            ",)" if self.depth == 1 else ")"
        )
        if ep.joins:
            # Join-bearing events keep the interpreted creation tail: the
            # candidate iteration is data-dependent and rare, and sharing
            # ``_create_compiled`` keeps the two paths trivially aligned.
            self.bind("create_tail", "rt._create_compiled")
            w.emit(d, f"create_tail(ed, {vals}, leaf, pretouched)")
            return
        self._bind_materialize()
        guard = "(_own is None or _own.flagged)"
        if ep.check_event_leaf:
            self.bind("_domain", "ed.domain")
            guard += (
                " and leaf.touched == serial"
                " and (pretouched is None or _domain not in pretouched)"
            )
        w.emit(d, "_own = leaf.own")
        w.emit(d, f"if {guard}:")
        d += 1

        def emit_branch(d: int, checks_path: str, checks, source_expr: str) -> None:
            # Unrolled ``_valid_compiled`` + the materialize call: the
            # single-iteration ``while True`` gives the check chain an
            # early exit without a helper call — any failing probe breaks
            # out before the final materialize line.
            w.emit(d, "while True:")
            d += 1
            for j, check in enumerate(checks):
                u = self.uid()
                dom = self.bind(f"c{u}_dom", f"{checks_path}[{j}].domain")
                w.emit(d, f"if pretouched is not None and {dom} in pretouched:")
                w.emit(d + 1, "break")
                out = f"_cl{u}"
                self.emit_aux_walk(
                    w, d, f"{checks_path}[{j}].tree", check.extract, out
                )
                w.emit(d, f"if {out} is not None:")
                w.emit(d + 1, f"_ct{u} = {out}.touched")
                w.emit(d + 1, f"if _ct{u} is not None and _ct{u} < serial:")
                w.emit(d + 2, "break")
            self.emit_materialize(w, d, source_expr)
            w.emit(d, "break")

        def emit_sources(d: int, i: int) -> None:
            if i == len(self.sources):
                if ep.allows_fresh:
                    emit_branch(d, "ed.fresh_checks", ep.fresh_checks, "None")
                return
            src = self.sources[i]
            u = self.uid()
            out = f"_sl{u}"
            self.emit_aux_walk(
                w, d, f"ed.self_sources[{i}].tree", src.extract, out
            )
            w.emit(d, f"_so{u} = {out}.own if {out} is not None else None")
            w.emit(d, f"if _so{u} is not None and not _so{u}.flagged:")
            emit_branch(
                d + 1, f"ed.self_sources[{i}].checks", src.checks, f"_so{u}"
            )
            if i + 1 < len(self.sources) or ep.allows_fresh:
                w.emit(d, "else:")
                emit_sources(d + 1, i + 1)

        emit_sources(d, 0)

    def _bind_materialize(self) -> None:
        """Bind-time closures for the inlined ``_materialize`` body."""
        ep = self.ep
        self.bind("_prop", "rt.prop")
        self.bind("_template_create", "rt.prop.template.create")
        self.bind("_live_refs", "rt._collection_refs")
        names = ", ".join(repr(p) for p in ep.params)
        if len(ep.params) == 1:
            names += ","
        self.bind("_mdomain", f"frozenset(({names}))")
        # The cheap stand-in for ``weakref.finalize(monitor,
        # stats.record_collection)``: a plain weak reference whose callback
        # fires at the same point in the object's death (both are weakref
        # callbacks on the monitor), without finalize's registry + atexit
        # bookkeeping on every creation.
        self.prelude += [
            "def _on_collected(_ref, _discard=rt._collection_refs.discard,"
            " _record=stats.record_collection):",
            "    _discard(_ref)",
            "    _record()",
        ]
        if self.has_fsm:
            self.bind("_tpl", "rt.prop.template.create()")
        if self.has_fsm and ep.allows_fresh:
            # Every fresh monitor starts in the template's initial state,
            # so its first transition — and whether it fires a verdict —
            # is a bind-time constant.
            self.bind(
                "_fresh_sid", "col[rt.prop.template.create()._state_id]"
            )
            self.bind("_fresh_fire", "fire_col[_fresh_sid]")

    def emit_materialize(self, w: _Writer, d: int, source_expr: str) -> None:
        """Inline ``PropertyRuntime._materialize`` for ``ed.insert``.

        Same operation order as the interpreted helper — base state,
        refs, own-leaf registration, extension registrations (each an
        inlined create-walk with its scans), join registrations, stats,
        collection watch, parameter watch, first step — with the insert
        schedule unrolled from the static :class:`InsertPlan`.
        """
        ep = self.ep
        ip = self.plan.insert_plans[ep.domain]
        if self.has_fsm:
            # FSMMonitor.clone / FSMTemplate.create are four slot copies
            # off a prototype (fresh monitors all start at the template's
            # initial state) — inline them.
            u = self.uid()
            proto = "_tpl" if source_expr == "None" else f"_sb{u}"
            if source_expr != "None":
                w.emit(d, f"_sb{u} = {source_expr}.base")
            w.emit(d, "base = _FM_new(_FSMMonitor)")
            w.emit(d, f"base._fsm = {proto}._fsm")
            w.emit(d, f"base._table = {proto}._table")
            w.emit(d, f"base._state_id = {proto}._state_id")
            w.emit(d, f"base._inert = {proto}._inert")
        elif source_expr == "None":
            w.emit(d, "base = _template_create()")
        else:
            w.emit(d, f"base = {source_expr}.base.clone()")
        w.emit(d, "rt._serial = _mser = rt._serial + 1")
        # Inlined MonitorInstance.__init__ (slot writes, no dict copy; the
        # domain frozenset is a per-event constant).
        refs = []
        for i, _param in enumerate(ep.params):
            refs.append(self.emit_paramref(w, d, f"v{i}", f"_mp{i}"))
        pairs = ", ".join(
            f"{param!r}: {ref}" for param, ref in zip(ep.params, refs)
        )
        w.emit(d, "monitor = _MI_new(_MonitorInstance)")
        w.emit(d, "monitor.prop = _prop")
        w.emit(d, "monitor.base = base")
        w.emit(d, f"monitor.params = {{{pairs}}}")
        w.emit(d, "monitor.domain = _mdomain")
        w.emit(d, "monitor.last_event = None")
        w.emit(d, "monitor.flagged = False")
        w.emit(d, "monitor.serial = _mser")
        w.emit(d, "monitor.provenance = None")
        w.emit(d, "leaf.own = monitor")
        if ip.own_is_event_domain:
            w.emit(d, "_lx = leaf.extensions")
            w.emit(d, "if _lx is not None:")
            w.emit(d + 1, "_lx._items.append(monitor)")
            w.emit(d + 1, "_lx._active = None")
        for k, (_ext_domain, extract) in enumerate(ip.extension_entries):
            u = self.uid()
            out = f"_el{u}"
            self.emit_aux_create_walk(
                w, d, f"ed.insert.ext_entries[{k}][0]", extract, out
            )
            w.emit(d, f"_ex{u} = {out}.extensions")
            w.emit(d, f"if _ex{u} is not None:")
            w.emit(d + 1, f"_ex{u}._items.append(monitor)")
            w.emit(d + 1, f"_ex{u}._active = None")
        for k, (_key, extract) in enumerate(ip.join_entries):
            u = self.uid()
            idx = self.bind(f"_jix{u}", f"ed.insert.join_entries[{k}][0]")
            jvals = "(" + ", ".join(f"v{i}" for i in extract) + (
                ",)" if len(extract) == 1 else ")"
            )
            w.emit(d, f"{idx}.add_vals({jvals}, monitor)")
        # Inlined MonitorStats.record_creation (counter + live peak).
        w.emit(d, "stats.monitors_created = _mc = stats.monitors_created + 1")
        w.emit(d, "_mlive = _mc - stats.monitors_collected")
        w.emit(d, "if _mlive > stats.peak_live_monitors:")
        w.emit(d + 1, "stats.peak_live_monitors = _mlive")
        w.emit(d, "_live_refs.add(_wref(monitor, _on_collected))")
        w.emit(d, "watch = rt._on_param_registered")
        w.emit(d, "if watch is not None:")
        for i, param in enumerate(ep.params):
            w.emit(d + 1, f"watch({param!r}, v{i})")
        if self.has_fsm:
            if source_expr == "None":
                w.emit(d, "base._state_id = _fresh_sid")
                w.emit(d, f"monitor.last_event = {ep.event!r}")
                w.emit(d, "if _fresh_fire is not None:")
                w.emit(d + 1, "fire_goal(monitor, _fresh_fire)")
            else:
                w.emit(d, "_msid = col[base._state_id]")
                w.emit(d, "base._state_id = _msid")
                w.emit(d, f"monitor.last_event = {ep.event!r}")
                w.emit(d, "_mvd = fire_col[_msid]")
                w.emit(d, "if _mvd is not None:")
                w.emit(d + 1, "fire_goal(monitor, _mvd)")
        else:
            w.emit(d, f"step(monitor, {ep.event!r})")

    # -- factories ----------------------------------------------------------

    def emit_factory(self, w: _Writer, name: str, spec_name: str) -> None:
        body = _Writer()
        body.emit(1, "def kernel(values, record=True, pretouched=None):")
        self.emit_header(body, 2, spec_name)
        self.emit_step(body, 2)
        if self.ep.has_creation:
            self.emit_creation(body, 2)
        body.emit(1, "return kernel")
        self._write_factory(w, name, body)

    def emit_batch_factory(self, w: _Writer, name: str, spec_name: str) -> None:
        """The grouped stepping kernel (creation-free FSM events only)."""
        body = _Writer()
        body.emit(1, "col = _array('i', col)")
        body.emit(1, "def batch_kernel(group, record=True):")
        body.emit(2, "serial = rt._event_serial")
        body.emit(2, "for values in group:")
        d = 3
        body.emit(d, "if record:")
        body.emit(d + 1, "stats.events += 1")
        body.emit(d, "serial = serial + 1")
        body.emit(d, "rt._event_serial = serial")
        if self.depth:
            body.emit(d, "try:")
            for i, param in enumerate(self.ep.params):
                body.emit(d + 1, f"v{i} = values[{param!r}]")
            body.emit(d, "except KeyError as exc:")
            prefix = (
                f"event {self.ep.event!r} of {spec_name} requires parameter "
            )
            body.emit(
                d + 1,
                f"raise InconsistentEventError({prefix!r} + repr(exc.args[0])) "
                "from None",
            )
            self.emit_main_walk(body, d)
        else:
            body.emit(d, "leaf = root_leaf")
        body.emit(d, "if leaf.touched is None:")
        body.emit(d + 1, "leaf.touched = serial")
        self.emit_step(body, d)
        body.emit(1, "return batch_kernel")
        self._write_factory(w, name, body)

    def _write_factory(self, w: _Writer, name: str, body: _Writer) -> None:
        w.blank()
        w.blank()
        w.emit(0, f"def {name}(rt, ed):")
        for line in self._common_prelude():
            w.emit(1, line)
        for line in self.prelude:
            w.emit(1, line)
        w.lines.extend(body.lines)
        self.prelude = []

    def _common_prelude(self) -> list[str]:
        lines = [
            "stats = rt.stats",
            "tree = ed.tree",
            "_budget = tree._scan_budget",
            "_brange = range(_budget)",
        ]
        if self.depth:
            lines += ["root = tree._root", "buckets0 = root._buckets"]
        else:
            lines.append("root_leaf = tree._root")
        if self.has_fsm:
            lines += [
                "rows = rt._fsm_rows",
                "goal = rt._fsm_goal",
                "verdicts = rt._fsm_verdicts",
                f"col = tuple([row[{self.ep.event_id}] for row in rows])",
                # Goal test and verdict lookup fused into one column: a
                # step pays one subscript, not two, on the common (no
                # verdict) outcome.
                "fire_col = tuple(["
                "verdicts[_i] if goal[_i] else None for _i in range(len(goal))"
                "])",
                "fire_goal = rt._fire_goal",
            ]
        else:
            lines.append("step = rt._step")
        return lines


def kernel_module_source(
    plan: DispatchPlan, *, has_fsm: bool, spec_name: str, fingerprint: str = ""
) -> str:
    """Render the full generated-kernel module for one property.

    A pure function of ``(plan, has_fsm, spec_name)`` — both of which the
    property fingerprint covers — so equal fingerprints always yield
    byte-identical source (the cache-correctness invariant the
    invalidation tests pin down).
    """
    w = _Writer()
    w.emit(0, f'"""Generated dispatch kernels for {spec_name}')
    w.emit(0, f"(fingerprint {fingerprint or 'unkeyed'}).")
    w.emit(0, "")
    w.emit(0, "Auto-generated by repro.spec.codegen — do not edit; see")
    w.emit(0, 'docs/dispatch-kernels.md for the shape of this code."""')
    w.emit(0, "from array import array as _array")
    w.emit(0, "from weakref import ref as _wref")
    w.emit(0, "")
    w.emit(0, "from repro.core.errors import InconsistentEventError")
    w.emit(0, "from repro.formalism.fsm import FSMMonitor as _FSMMonitor")
    w.emit(0, "from repro.runtime.indexing import Leaf as _Leaf")
    w.emit(0, "from repro.runtime.instance import MonitorInstance as _MonitorInstance")
    w.emit(0, "from repro.runtime.refs import ParamRef as _ParamRef")
    w.emit(0, "from repro.runtime.rvmap import RVMap as _RVMap")
    w.emit(0, "from repro.runtime.rvset import RVSet as _RVSet")
    w.emit(0, "")
    w.emit(0, "_FM_new = _FSMMonitor.__new__")
    w.emit(0, "_LF_new = _Leaf.__new__")
    w.emit(0, "_MI_new = _MonitorInstance.__new__")
    w.emit(0, "_PR_new = _ParamRef.__new__")
    w.emit(0, "_RM_new = _RVMap.__new__")
    w.emit(0, "_RS_new = _RVSet.__new__")
    factories: dict[str, str] = {}
    batch_factories: dict[str, str] = {}
    for index, event in enumerate(plan.events):
        ep = plan.event_plans[event]
        name = f"_make_{index}_{_sanitize(event)}"
        emitter = _KernelEmitter(plan, ep, has_fsm)
        emitter.emit_factory(w, name, spec_name)
        factories[event] = name
        if has_fsm and not ep.has_creation:
            bname = f"_make_batch_{index}_{_sanitize(event)}"
            batch_emitter = _KernelEmitter(plan, ep, has_fsm)
            batch_emitter.emit_batch_factory(w, bname, spec_name)
            batch_factories[event] = bname
    w.blank()
    w.blank()
    w.emit(0, "FACTORIES = {")
    for event, name in factories.items():
        w.emit(1, f"{event!r}: {name},")
    w.emit(0, "}")
    w.emit(0, "BATCH_FACTORIES = {")
    for event, name in batch_factories.items():
        w.emit(1, f"{event!r}: {name},")
    w.emit(0, "}")
    return w.source()


def kernel_source_for(prop: "CompiledProperty") -> str:
    """The generated module source for one compiled property (diagnostics,
    docs, and the CI artifact dumped when the codegen perf gate fails)."""
    return kernel_module_source(
        prop.dispatch_plan(),
        has_fsm=prop.fsm_dispatch() is not None,
        spec_name=prop.spec_name,
        fingerprint=prop.fingerprint(),
    )


@dataclass
class KernelModule:
    """One compiled generated-kernel module (shared across runtimes)."""

    fingerprint: str
    spec_name: str
    source: str
    #: event -> ``factory(rt, ed) -> kernel(values, record, pretouched)``
    factories: dict[str, Callable[..., Any]] = field(repr=False)
    #: event -> ``factory(rt, ed) -> batch_kernel(group, record)``
    batch_factories: dict[str, Callable[..., Any]] = field(repr=False)


class KernelCache:
    """Process-wide cache of compiled kernel modules, keyed by fingerprint.

    The fingerprint covers everything the generated source depends on, so
    a hit is always safe to reuse (hot re-load of an identical property,
    a second shard hosting the same slot) and any semantic change misses
    by construction.  ``invalidate``/``clear`` exist for tests and for
    callers that want to bound memory; correctness never requires them.
    """

    def __init__(self) -> None:
        self._modules: dict[str, KernelModule] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._modules

    def module_for(self, prop: "CompiledProperty") -> KernelModule:
        """The compiled kernel module for ``prop`` (generate on miss)."""
        fingerprint = prop.fingerprint()
        with self._lock:
            module = self._modules.get(fingerprint)
            if module is not None:
                self.hits += 1
                return module
            self.misses += 1
        source = kernel_module_source(
            prop.dispatch_plan(),
            has_fsm=prop.fsm_dispatch() is not None,
            spec_name=prop.spec_name,
            fingerprint=fingerprint,
        )
        namespace: dict[str, Any] = {}
        code = compile(
            source,
            f"<repro-kernels:{prop.spec_name}:{fingerprint[:12]}>",
            "exec",
        )
        exec(code, namespace)  # noqa: S102 - the source is generated above
        module = KernelModule(
            fingerprint=fingerprint,
            spec_name=prop.spec_name,
            source=source,
            factories=namespace["FACTORIES"],
            batch_factories=namespace["BATCH_FACTORIES"],
        )
        with self._lock:
            # Two threads may have raced the generation; first one wins so
            # every runtime binds factories from the same code objects.
            return self._modules.setdefault(fingerprint, module)

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one cached module; returns whether it was present."""
        with self._lock:
            return self._modules.pop(fingerprint, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._modules.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache every runtime binds kernels from by default.
shared_kernel_cache = KernelCache()


def bind_kernels(
    runtime: Any, cache: KernelCache | None = None
) -> tuple[dict[str, Any], dict[str, Any], KernelModule]:
    """Bind one runtime's kernels: ``(kernels, batch_kernels, module)``.

    Fetches (or generates) the property's kernel module from ``cache``
    and calls every factory with this runtime's resolved
    ``_EventDispatch`` records, producing per-event closures over *its*
    trees and statistics.  Distinct runtimes of the same property share
    code objects but never state.
    """
    cache = shared_kernel_cache if cache is None else cache
    module = cache.module_for(runtime.prop)
    kernels = {
        event: factory(runtime, runtime._dispatch[event])
        for event, factory in module.factories.items()
    }
    batch_kernels = {
        event: factory(runtime, runtime._dispatch[event])
        for event, factory in module.batch_factories.items()
    }
    return kernels, batch_kernels, module
