"""Compiler from parsed specifications to runnable monitor templates.

For every logic block of a specification the compiler produces a
:class:`CompiledProperty`: the formalism-compiled
:class:`~repro.core.monitor.MonitorTemplate`, the goal ``G`` (the verdict
categories carrying handlers), and the static analyses the runtime needs —
parameter coenable sets, compiled ALIVENESS formulas (Section 4.2.2), and
parameter enable sets for monitor-creation pruning.

Compiling — not monitoring — is where the static analyses run: as the paper
notes, computing coenable sets "is expected to be a quick static operation
in practice, because they are a function of the specification ... and not
of the program".
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Iterable, Mapping

from ..core.aliveness import AlivenessFormula, compile_aliveness
from ..core.coenable import lift_to_params, param_coenable_sets
from ..core.errors import SpecCompileError
from ..core.events import EventDefinition
from ..core.monitor import MonitorTemplate, SetOfEventSets
from ..core.params import Binding
from ..core.verdicts import ERROR, MATCH, VIOLATION, normalize_goal
from ..formalism.cfg import compile_cfg
from ..formalism.ere import compile_ere
from ..formalism.fsm import compile_fsm
from ..formalism.ltl import compile_ltl
from .ast import HandlerDecl, LogicBlock, SpecAst
from .parser import parse_spec

__all__ = ["CompiledProperty", "CompiledSpec", "compile_spec", "load_spec"]

#: Handler signature: (specification name, verdict category, parameter binding).
Handler = Callable[[str, str, Binding], None]

#: Default goals when a logic block declares no handler.
_DEFAULT_GOALS = {
    "fsm": frozenset({ERROR}),
    "ere": frozenset({MATCH}),
    "ltl": frozenset({VIOLATION}),
    "cfg": frozenset({MATCH}),
}


class CompiledProperty:
    """One logic block, compiled: template + goal + static analyses."""

    def __init__(
        self,
        spec_name: str,
        formalism: str,
        template: MonitorTemplate,
        definition: EventDefinition,
        goal: frozenset[str],
        handlers: tuple[HandlerDecl, ...],
    ):
        self.spec_name = spec_name
        self.formalism = formalism
        self.template = template
        self.definition = definition
        self.goal = goal
        self.declared_handlers = handlers
        self._callbacks: dict[str, list[Handler]] = {}
        for handler in handlers:
            if handler.message is not None:
                self.on(handler.category, _print_handler(handler.message))
        # Static analyses (Sections 3 and 4.2.2).
        self.coenable: dict[str, SetOfEventSets] = template.coenable_sets(goal)
        self.param_coenable: dict[str, frozenset[frozenset[str]]] = param_coenable_sets(
            self.coenable, definition
        )
        self.aliveness: dict[str, AlivenessFormula] = compile_aliveness(
            self.param_coenable
        )
        self.enable: dict[str, SetOfEventSets] = template.enable_sets(goal)
        self.param_enable: dict[str, frozenset[frozenset[str]]] = {
            event: lift_to_params(family, definition)
            for event, family in self.enable.items()
        }
        self._monitor_domains: frozenset[frozenset[str]] | None = None
        self._dispatch_plan = None
        self._fsm_dispatch: "tuple | None | bool" = False

    # -- static shape queries ------------------------------------------------

    def monitor_domains(self) -> frozenset[frozenset[str]]:
        """Parameter domains monitor instances can actually have.

        The closure of enable-pruned creation targets ``K ∪ D(e)`` over
        realizable enable domains ``K`` — the set of indexing trees the
        runtime keeps, and the basis for the sharding router's anchor
        validity check (a parameter occurring in *every* realizable domain
        pins each monitor, hence each trace slice, to one shard).
        """
        if self._monitor_domains is None:
            realizable: set[frozenset[str]] = set()
            changed = True
            while changed:
                changed = False
                for event in self.definition.alphabet:
                    event_domain = self.definition.params_of(event)
                    for enable_domain in self.param_enable.get(event, ()):  # K
                        if enable_domain and enable_domain not in realizable:
                            continue
                        target = enable_domain | event_domain
                        if target not in realizable:
                            realizable.add(target)
                            changed = True
            self._monitor_domains = frozenset(realizable)
        return self._monitor_domains

    def dispatch_plan(self):
        """The compiled per-event dispatch plan (built once, cached).

        See :mod:`repro.spec.dispatch`: slot indices, interned event ids,
        and the complete creation/join/validity strategy, all lowered at
        property-compile time so the runtime hot path is table-driven.
        """
        if self._dispatch_plan is None:
            from .dispatch import build_dispatch_plan

            self._dispatch_plan = build_dispatch_plan(self)
        return self._dispatch_plan

    def fsm_dispatch(self) -> "tuple | None":
        """Flat-table stepping data for finite-state templates, or ``None``.

        Returns ``(rows, goal_flags, verdict_names)``: transition rows
        indexed ``[state_id][event_id]`` (event ids = this property's
        :meth:`dispatch_plan` ids), a per-state boolean marking states whose
        verdict lies in this property's goal, and the per-state verdict
        categories.  ``None`` for formalisms that do not lower to an
        explicit FSM (CFG, raw templates) — those step through the virtual
        ``BaseMonitor.step`` path.
        """
        if self._fsm_dispatch is False:
            from ..formalism.fsm import FSMTemplate

            result = None
            template = self.template
            if isinstance(template, FSMTemplate):
                table = template.table
                if table.events == self.dispatch_plan().events:
                    result = (
                        table.rows,
                        tuple(
                            verdict in self.goal for verdict in table.verdict_names
                        ),
                        table.verdict_names,
                    )
            self._fsm_dispatch = result
        return self._fsm_dispatch

    def fingerprint(self) -> str:
        """A stable identity hash for snapshot compatibility checks.

        Two compilations of the same specification text produce the same
        fingerprint; the checkpoint codec refuses to restore monitor state
        into a property whose fingerprint differs from the snapshot's.
        Covers the event definition, the goal, and the formalism-level
        semantics (FSM transition table / CFG grammar); raw templates are
        covered by their alphabet and categories only — their transition
        *functions* are code, which a fingerprint cannot witness.
        """
        definition = self.definition
        descriptor = {
            "spec": self.spec_name,
            "formalism": self.formalism,
            "goal": sorted(self.goal),
            "parameters": sorted(definition.parameters),
            "events": {
                event: sorted(definition.params_of(event))
                for event in sorted(definition.alphabet)
            },
            "template": self._template_descriptor(),
        }
        payload = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def _template_descriptor(self) -> dict:
        from ..formalism.cfg import CFGTemplate
        from ..formalism.fsm import FSMTemplate

        template = self.template
        if isinstance(template, FSMTemplate):
            fsm = template.fsm
            return {
                "kind": "fsm",
                "states": list(fsm.states),
                "initial": fsm.initial,
                "transitions": sorted(
                    [state, event, successor]
                    for (state, event), successor in fsm.transitions.items()
                ),
                "verdicts": dict(sorted(fsm.verdicts.items())),
            }
        if isinstance(template, CFGTemplate):
            grammar = template.grammar
            return {
                "kind": "cfg",
                "start": grammar.start,
                "productions": {
                    lhs: sorted(list(rhs) for rhs in alternatives)
                    for lhs, alternatives in sorted(grammar.productions.items())
                },
            }
        return {
            "kind": type(template).__name__,
            "alphabet": sorted(template.alphabet),
            "categories": sorted(template.categories),
        }

    # -- handlers -----------------------------------------------------------

    def on(self, category: str, callback: Handler) -> "CompiledProperty":
        """Attach a Python handler to a verdict category; returns self."""
        if category not in self.template.categories:
            raise SpecCompileError(
                f"{self.spec_name}/{self.formalism}: handler for unknown verdict "
                f"category {category!r} (known: {sorted(self.template.categories)})"
            )
        self._callbacks.setdefault(category, []).append(callback)
        return self

    @property
    def handled_categories(self) -> frozenset[str]:
        return frozenset(handler.category for handler in self.declared_handlers) | frozenset(
            self._callbacks
        )

    def fire(self, category: str, binding: Binding) -> None:
        """Invoke the handlers registered for ``category`` (if any)."""
        for callback in self._callbacks.get(category, ()):
            callback(self.spec_name, category, binding)

    def silence(self) -> "CompiledProperty":
        """Drop every attached handler (benchmarks monitor without printing)."""
        self._callbacks.clear()
        return self

    def __repr__(self) -> str:
        return (
            f"CompiledProperty({self.spec_name}/{self.formalism}, "
            f"goal={sorted(self.goal)})"
        )


class CompiledSpec:
    """A fully compiled specification: events plus one or more properties."""

    def __init__(self, ast: SpecAst):
        self.name = ast.name
        self.parameters = ast.parameters
        self.definition = EventDefinition(
            {event.name: event.params for event in ast.events},
            all_params=ast.parameters,
        )
        self.properties = tuple(
            _compile_logic(ast, logic, self.definition) for logic in ast.logics
        )

    @property
    def alphabet(self) -> frozenset[str]:
        return self.definition.alphabet

    def property_named(self, formalism: str) -> CompiledProperty:
        """The first compiled property using ``formalism`` (fsm/ere/ltl/cfg)."""
        for compiled in self.properties:
            if compiled.formalism == formalism:
                return compiled
        raise SpecCompileError(f"{self.name} has no {formalism!r} logic block")

    def on(self, category: str, callback: Handler) -> "CompiledSpec":
        """Attach a handler to every property that can emit ``category``."""
        attached = False
        for compiled in self.properties:
            if category in compiled.template.categories:
                compiled.on(category, callback)
                attached = True
        if not attached:
            raise SpecCompileError(
                f"no property of {self.name} can emit category {category!r}"
            )
        return self

    def silence(self) -> "CompiledSpec":
        """Drop every handler on every property (quiet benchmarking)."""
        for compiled in self.properties:
            compiled.silence()
        return self

    def __repr__(self) -> str:
        formalisms = ", ".join(p.formalism for p in self.properties)
        return f"CompiledSpec({self.name}({', '.join(self.parameters)}); {formalisms})"


def _print_handler(message: str) -> Handler:
    def handler(spec_name: str, category: str, binding: Binding) -> None:
        print(message)

    return handler


def _compile_logic(
    ast: SpecAst, logic: LogicBlock, definition: EventDefinition
) -> CompiledProperty:
    alphabet = definition.alphabet
    try:
        if logic.formalism == "fsm":
            template = compile_fsm(logic.body, alphabet)
        elif logic.formalism == "ere":
            template = compile_ere(logic.body, alphabet)
        elif logic.formalism == "ltl":
            template = compile_ltl(logic.body, alphabet)
        elif logic.formalism == "cfg":
            template = compile_cfg(logic.body, alphabet)
        else:  # pragma: no cover - parser restricts formalisms
            raise SpecCompileError(f"unknown formalism {logic.formalism!r}")
    except SpecCompileError:
        raise
    except Exception as exc:
        raise SpecCompileError(
            f"{ast.name}/{logic.formalism}: {exc}"
        ) from exc
    if logic.handlers:
        goal = normalize_goal(handler.category for handler in logic.handlers)
    else:
        goal = _DEFAULT_GOALS[logic.formalism]
    unknown = goal - template.categories
    if unknown:
        raise SpecCompileError(
            f"{ast.name}/{logic.formalism}: goal categories {sorted(unknown)} are "
            f"not emitted by this property (known: {sorted(template.categories)})"
        )
    return CompiledProperty(
        spec_name=ast.name,
        formalism=logic.formalism,
        template=template,
        definition=definition,
        goal=goal,
        handlers=logic.handlers,
    )


def compile_spec(source: str | SpecAst) -> CompiledSpec:
    """Parse (if needed) and compile a specification."""
    ast = parse_spec(source) if isinstance(source, str) else source
    return CompiledSpec(ast)


def load_spec(path: str) -> CompiledSpec:
    """Compile a specification from a ``.rv`` file."""
    with open(path, encoding="utf-8") as handle:
        return compile_spec(handle.read())
