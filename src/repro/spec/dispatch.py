"""Compiled per-(property, event) dispatch plans.

JavaMOP's efficiency comes from specializing the entire per-event code path
at *property compile time* (JinMGR11 Section 4.1: the indexing trees exist
so that no event ever scans ``Theta``).  This module is the analogous
specialization for this reproduction: for every ``(property, event)`` pair
it precomputes a :class:`DispatchPlan` — interned integer event ids,
parameter *slot indices* (so the hot path manipulates plain tuples of
parameter objects in sorted-parameter order instead of dict-backed
bindings), the full creation/join strategy, and the creation-validity
checks lowered to static ``(domain, extraction-index)`` lists.

Everything here is a pure function of the compiled specification — no
runtime state.  :class:`~repro.runtime.engine.PropertyRuntime` resolves a
plan against its own indexing trees once at construction time; after that,
processing one event is tuple indexing plus weak-map walks, with rich
:class:`~repro.core.params.Binding` objects appearing only at creation and
verdict boundaries.

The plan construction mirrors ``PropertyRuntime._build_plan`` (the retained
reference path) exactly, with one strengthening: ties between equal-sized
enable domains are broken deterministically (by sorted parameter names)
instead of by set iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compiler import CompiledProperty

__all__ = [
    "DomainCheck",
    "SelfSourcePlan",
    "JoinPlan",
    "EventPlan",
    "InsertPlan",
    "DispatchPlan",
    "build_dispatch_plan",
]


def _domain_sort_key(domain: frozenset) -> tuple:
    return (-len(domain), tuple(sorted(domain)))


@dataclass(frozen=True)
class DomainCheck:
    """One creation-validity probe: an event domain whose touch stamp can
    invalidate a creation (``d ⊆ target`` and ``d ⊄ source``), with the
    slot positions extracting its sub-values from the creation target's
    value tuple."""

    domain: frozenset
    extract: tuple[int, ...]


@dataclass(frozen=True)
class SelfSourcePlan:
    """A defineTo source: an enable domain ``K ⊊ D(e)`` whose instance (if
    alive) seeds the new monitor for the event's own binding."""

    domain: frozenset
    extract: tuple[int, ...]  #: positions in the event tuple -> sorted(K) values
    checks: tuple[DomainCheck, ...]  #: validity probes for (target=D(e), source=K)


@dataclass(frozen=True)
class JoinPlan:
    """A cross-binding join: instances of enable domain ``K`` (incomparable
    with ``D(e)``) combine with the event into ``K ∪ D(e)`` instances."""

    join_domain: frozenset  #: K
    join_params: tuple[str, ...]  #: sorted(K)
    key_params: tuple[str, ...]  #: sorted(K ∩ D(e)) — the join-index key
    key_extract: tuple[int, ...]  #: event-tuple positions of the key params
    target_domain: frozenset  #: K ∪ D(e)
    target_params: tuple[str, ...]
    #: Target-tuple recipe: ``(from_candidate, position)`` per target param —
    #: position into the candidate's sorted(K) values or the event tuple.
    merge: tuple[tuple[bool, int], ...]
    checks: tuple[DomainCheck, ...]  #: validity probes for (target, source=K)
    #: Whether the target domain is itself an event domain: its touch stamp
    #: is then checked directly on the (already fetched) target leaf rather
    #: than through a ``checks`` probe.
    check_target: bool


@dataclass(frozen=True)
class EventPlan:
    """The complete static strategy for one ``(property, event)`` pair."""

    event: str
    event_id: int
    domain: frozenset
    params: tuple[str, ...]  #: sorted D(e) — the event's slot order
    self_sources: tuple[SelfSourcePlan, ...]  #: largest-first
    allows_fresh: bool  #: ∅ is an enable domain (creation from scratch)
    fresh_checks: tuple[DomainCheck, ...]  #: validity probes for source=∅
    joins: tuple[JoinPlan, ...]  #: largest-first
    has_creation: bool
    #: Whether self-creation must verify the event leaf's own touch stamp
    #: (always, except for zero-parameter events, which have no stamp
    #: semantics in the reference validity check).
    check_event_leaf: bool


@dataclass(frozen=True)
class InsertPlan:
    """Where a freshly created monitor of one domain must be registered."""

    domain: frozenset
    params: tuple[str, ...]  #: sorted(domain) — the creation value-tuple order
    #: Whether the monitor's own domain is itself some event's D(e) (its own
    #: leaf then also tracks extensions and receives the monitor directly).
    own_is_event_domain: bool
    #: Extension registrations: ``(event_domain, extract)`` for every event
    #: domain strictly below the monitor's (the full domain is handled via
    #: ``own_is_event_domain``; the empty domain's tree is included).
    extension_entries: tuple[tuple[frozenset, tuple[int, ...]], ...]
    #: Join-index registrations: ``(index_key, key_extract)``.
    join_entries: tuple[tuple[tuple[frozenset, frozenset], tuple[int, ...]], ...]


@dataclass(frozen=True)
class DispatchPlan:
    """Everything static the runtime needs to dispatch one property."""

    params: tuple[str, ...]  #: sorted property parameters (global slot order)
    events: tuple[str, ...]  #: sorted alphabet — positions are the event ids
    event_ids: dict[str, int]
    event_plans: dict[str, EventPlan]
    event_domains: tuple[frozenset, ...]  #: deduped, deterministic order
    monitor_domains: frozenset
    insert_plans: dict[frozenset, InsertPlan]
    #: Every (join domain, key domain) pair needing a JoinIndex structure.
    join_index_keys: tuple[tuple[frozenset, frozenset], ...]


def build_dispatch_plan(prop: "CompiledProperty") -> DispatchPlan:
    """Lower one compiled property to its static dispatch plan."""
    definition = prop.definition
    events = tuple(sorted(definition.alphabet))
    event_ids = {event: index for index, event in enumerate(events)}
    monitor_domains = prop.monitor_domains()
    domain_of = {event: definition.params_of(event) for event in events}
    event_domains = tuple(
        sorted(set(domain_of.values()), key=_domain_sort_key)
    )
    nonempty_domains = tuple(domain for domain in event_domains if domain)

    def checks_for(
        target_params: tuple[str, ...], target: frozenset, source: frozenset
    ) -> tuple[DomainCheck, ...]:
        # The target domain's own touch stamp is checked inline against the
        # leaf the creation path already holds; only the proper sub-domains
        # need probes.
        position = {param: index for index, param in enumerate(target_params)}
        return tuple(
            DomainCheck(domain, tuple(position[param] for param in sorted(domain)))
            for domain in nonempty_domains
            if domain < target and not domain <= source
        )

    join_index_keys: dict[tuple[frozenset, frozenset], None] = {}
    event_plans: dict[str, EventPlan] = {}
    for event in events:
        event_domain = domain_of[event]
        event_params = tuple(sorted(event_domain))
        position = {param: index for index, param in enumerate(event_params)}
        allows_fresh = False
        self_domains: set[frozenset] = set()
        join_domains: set[tuple[frozenset, frozenset]] = set()
        for enable_domain in prop.param_enable.get(event, ()):
            if not enable_domain:
                allows_fresh = True
            elif enable_domain < event_domain:
                self_domains.add(enable_domain)
            elif enable_domain <= event_domain or event_domain <= enable_domain:
                # K == D(e): the exact instance already exists if it ever
                # will; K ⊃ D(e): domain-K instances are updated, not created.
                continue
            elif enable_domain in monitor_domains:
                join_domains.add((enable_domain, enable_domain & event_domain))
        self_sources = tuple(
            SelfSourcePlan(
                domain=domain,
                extract=tuple(position[param] for param in sorted(domain)),
                checks=checks_for(event_params, event_domain, domain),
            )
            for domain in sorted(self_domains, key=_domain_sort_key)
        )
        joins = []
        for join_domain, key_domain in sorted(
            join_domains, key=lambda pair: _domain_sort_key(pair[0])
        ):
            join_index_keys.setdefault((join_domain, key_domain))
            join_params = tuple(sorted(join_domain))
            join_position = {param: index for index, param in enumerate(join_params)}
            target_domain = join_domain | event_domain
            target_params = tuple(sorted(target_domain))
            # Shared parameters (the key) come from the event tuple — the
            # candidate's values match them by identity anyway.
            merge = tuple(
                (False, position[param])
                if param in position
                else (True, join_position[param])
                for param in target_params
            )
            joins.append(
                JoinPlan(
                    join_domain=join_domain,
                    join_params=join_params,
                    key_params=tuple(sorted(key_domain)),
                    key_extract=tuple(position[param] for param in sorted(key_domain)),
                    target_domain=target_domain,
                    target_params=target_params,
                    merge=merge,
                    checks=checks_for(target_params, target_domain, join_domain),
                    check_target=target_domain in nonempty_domains,
                )
            )
        event_plans[event] = EventPlan(
            event=event,
            event_id=event_ids[event],
            domain=event_domain,
            params=event_params,
            self_sources=self_sources,
            allows_fresh=allows_fresh,
            fresh_checks=checks_for(event_params, event_domain, frozenset()),
            joins=tuple(joins),
            has_creation=bool(self_sources or allows_fresh or joins),
            check_event_leaf=bool(event_domain),
        )

    insert_plans: dict[frozenset, InsertPlan] = {}
    for domain in monitor_domains:
        domain_params = tuple(sorted(domain))
        position = {param: index for index, param in enumerate(domain_params)}
        extension_entries = tuple(
            (
                event_domain,
                tuple(position[param] for param in sorted(event_domain)),
            )
            for event_domain in event_domains
            if event_domain < domain
        )
        join_entries = tuple(
            (key, tuple(position[param] for param in sorted(key[1])))
            for key in join_index_keys
            if key[0] == domain
        )
        insert_plans[domain] = InsertPlan(
            domain=domain,
            params=domain_params,
            own_is_event_domain=domain in set(event_domains),
            extension_entries=extension_entries,
            join_entries=join_entries,
        )

    return DispatchPlan(
        params=tuple(sorted(definition.parameters)),
        events=events,
        event_ids=event_ids,
        event_plans=event_plans,
        event_domains=event_domains,
        monitor_domains=monitor_domains,
        insert_plans=insert_plans,
        join_index_keys=tuple(join_index_keys),
    )
