"""Parser for the RV specification language.

The concrete syntax is a Pythonic rendering of Figures 2-4::

    UnsafeIter(c, i) {
      event create(c, i)
      event update(c)
      event next(i)

      ere: update* create next* update+ next

      @match "improper Concurrent Modification found!"
    }

The grammar is line-oriented: a header line, ``event`` declarations, logic
blocks introduced by a formalism keyword (whose raw body extends to the next
directive — the formalism-specific sub-parsers in :mod:`repro.formalism`
take it from there), and ``@category`` handler lines that attach to the
preceding logic block.  ``//`` and ``#`` comments run to end of line.
"""

from __future__ import annotations

import re

from ..core.errors import SpecSyntaxError
from .ast import FORMALISMS, EventDecl, HandlerDecl, LogicBlock, SpecAst

__all__ = ["parse_spec"]

_HEADER = re.compile(r"^\s*(?P<name>[A-Za-z_]\w*)\s*\((?P<params>[^)]*)\)\s*\{\s*$")
_EVENT = re.compile(r"^\s*event\s+(?P<name>[A-Za-z_]\w*)\s*\((?P<params>[^)]*)\)\s*$")
_LOGIC = re.compile(
    r"^\s*(?P<formalism>" + "|".join(FORMALISMS) + r")\s*:\s*(?P<rest>.*)$"
)
_HANDLER = re.compile(
    r"^\s*@(?P<category>[A-Za-z_?][\w?]*)\s*(?:\"(?P<message>[^\"]*)\")?\s*$"
)
_COMMENT = re.compile(r"(//|#).*$")


def _strip(line: str) -> str:
    return _COMMENT.sub("", line).rstrip()


def _split_params(raw: str, context: str, line_number: int) -> tuple[str, ...]:
    raw = raw.strip()
    if not raw:
        return ()
    params = tuple(part.strip() for part in raw.split(","))
    for param in params:
        if not re.fullmatch(r"[A-Za-z_]\w*", param):
            raise SpecSyntaxError(
                f"bad parameter name {param!r} in {context}", line=line_number
            )
    if len(set(params)) != len(params):
        raise SpecSyntaxError(f"duplicate parameter in {context}", line=line_number)
    return params


def parse_spec(text: str) -> SpecAst:
    """Parse one specification; raises :class:`SpecSyntaxError` on bad input."""
    lines = text.splitlines()
    index = 0

    # Header.
    name = None
    parameters: tuple[str, ...] = ()
    while index < len(lines):
        line = _strip(lines[index])
        index += 1
        if not line.strip():
            continue
        header = _HEADER.match(line)
        if not header:
            raise SpecSyntaxError(
                f"expected 'Name(params) {{' header, got {line.strip()!r}", line=index
            )
        name = header.group("name")
        parameters = _split_params(header.group("params"), "specification header", index)
        break
    if name is None:
        raise SpecSyntaxError("empty specification")

    events: list[EventDecl] = []
    logics: list[LogicBlock] = []
    current_formalism: str | None = None
    current_body: list[str] = []
    current_handlers: list[HandlerDecl] = []
    closed = False

    def flush_logic() -> None:
        nonlocal current_formalism, current_body, current_handlers
        if current_formalism is None:
            if current_handlers:
                raise SpecSyntaxError(
                    f"handler @{current_handlers[0].category} appears before any "
                    f"logic block in {name!r}"
                )
            return
        body = "\n".join(current_body).strip()
        if not body:
            raise SpecSyntaxError(f"empty {current_formalism!r} block in {name!r}")
        logics.append(
            LogicBlock(current_formalism, body, tuple(current_handlers))
        )
        current_formalism = None
        current_body = []
        current_handlers = []

    while index < len(lines):
        raw = lines[index]
        index += 1
        line = _strip(raw)
        stripped = line.strip()
        if not stripped:
            continue
        if stripped == "}":
            flush_logic()
            closed = True
            break

        event = _EVENT.match(line)
        if event:
            flush_logic()
            events.append(
                EventDecl(
                    event.group("name"),
                    _split_params(
                        event.group("params"), f"event {event.group('name')!r}", index
                    ),
                )
            )
            continue

        logic = _LOGIC.match(line)
        if logic:
            flush_logic()
            current_formalism = logic.group("formalism")
            current_body = [logic.group("rest")]
            continue

        handler = _HANDLER.match(line)
        if handler:
            if current_formalism is None:
                raise SpecSyntaxError(
                    f"handler {stripped!r} appears before any logic block", line=index
                )
            if current_handlers and current_body == []:
                pass  # consecutive handlers are fine
            current_handlers.append(
                HandlerDecl(handler.group("category"), handler.group("message"))
            )
            continue

        if current_formalism is not None and not current_handlers:
            # Continuation of the raw logic body (multi-line fsm/cfg blocks).
            current_body.append(line)
            continue

        raise SpecSyntaxError(f"cannot parse line {stripped!r}", line=index)

    if not closed:
        raise SpecSyntaxError(f"missing closing '}}' in specification {name!r}")
    if not events:
        raise SpecSyntaxError(f"specification {name!r} declares no events")
    if not logics:
        raise SpecSyntaxError(f"specification {name!r} has no logic block")

    seen_events = set()
    for event_decl in events:
        if event_decl.name in seen_events:
            raise SpecSyntaxError(
                f"event {event_decl.name!r} declared twice in {name!r}"
            )
        seen_events.add(event_decl.name)
        undeclared = set(event_decl.params) - set(parameters)
        if undeclared:
            raise SpecSyntaxError(
                f"event {event_decl.name!r} binds undeclared parameters "
                f"{sorted(undeclared)} in {name!r}"
            )

    return SpecAst(
        name=name,
        parameters=parameters,
        events=tuple(events),
        logics=tuple(logics),
    )
