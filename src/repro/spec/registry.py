"""The dynamic property registry: a versioned, slot-stable property set.

Every layer built so far — compiled dispatch plans, shard routing, the
snapshot codec — assumed the set of monitored properties was frozen at
construction time.  A production monitoring service cannot restart to pick
up a new property or drop a retired one, so this module turns the implicit
frozen list into an explicit :class:`PropertyRegistry` that the engine, the
sharded service, and the persistence layer all consume:

* **slot-stable indexes** — every property occupies one slot for the
  registry's lifetime; removal *tombstones* the slot instead of renumbering
  the rest.  Routing plans, per-shard delivery tuples, statistics keys and
  snapshot payloads all reference slots, so hot load/unload never
  invalidates in-flight state;
* **a monotonic epoch** — every mutation (add / remove / enable / disable)
  bumps ``epoch``.  The sharded service broadcasts registry operations
  behind a barrier, so every shard applies the same operation between the
  same two events and the per-shard epochs advance in lock step; snapshots
  record the epoch and restore verifies it;
* **fingerprints** — each entry carries the property's
  :meth:`~repro.spec.compiler.CompiledProperty.fingerprint` (the same
  identity the checkpoint codec verifies), so a registry restored from a
  snapshot can prove the supplied properties mean what the snapshot meant;
* **origins** — how a property can be *re-materialized* from data alone:
  specification source text or a paper-property key.  Process-mode shard
  workers and crash recovery re-compile properties from origins; compiled
  objects handed in directly get an ``opaque`` origin and must be supplied
  again by the caller at restore time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Iterator, Mapping

from ..core.errors import PersistError, RegistryError
from .compiler import CompiledProperty, CompiledSpec, compile_spec

__all__ = [
    "PORTABLE_ORIGIN_KINDS",
    "PropertyEntry",
    "PropertyRegistry",
    "normalize_properties",
    "materialize_origin",
]

#: Origin kinds a registry can re-materialize without caller help — the
#: single source of truth for the process backend's and the durable
#: engine's "can this property cross a data-only boundary?" checks.
PORTABLE_ORIGIN_KINDS = ("source", "paper")
_PORTABLE_KINDS = PORTABLE_ORIGIN_KINDS


@dataclass
class PropertyEntry:
    """One registry slot: a property plus its lifecycle metadata."""

    index: int
    name: str
    spec_name: str
    formalism: str
    fingerprint: str
    #: How to re-compile this property from data (see module docstring).
    origin: dict[str, Any]
    #: The compiled property; ``None`` only for removed slots restored from
    #: a snapshot (their semantics survive as the fingerprint).
    prop: CompiledProperty | None = None
    enabled: bool = True
    removed: bool = False
    added_epoch: int = 0
    removed_epoch: int | None = None

    def snapshot(self) -> dict[str, Any]:
        """This slot as a JSON-safe record (part of the persist format)."""
        return {
            "name": self.name,
            "spec": self.spec_name,
            "formalism": self.formalism,
            "fingerprint": self.fingerprint,
            "origin": dict(self.origin),
            "enabled": self.enabled,
            "removed": self.removed,
            "added_epoch": self.added_epoch,
            "removed_epoch": self.removed_epoch,
        }


def normalize_properties(specs: Any) -> list[tuple[CompiledProperty, dict]]:
    """Flatten any accepted property form into ``(property, origin)`` pairs.

    Accepts what the engine and service constructors always accepted —
    specification source text, compiled specs/properties, paper-property
    providers with a ``make()`` method — singly or as a sequence.  The
    origin records how to re-materialize the property from data: source
    text and paper keys are portable; pre-compiled objects are ``opaque``.
    """
    if isinstance(specs, (str, CompiledSpec, CompiledProperty)) or hasattr(specs, "make"):
        specs = [specs]
    normalized: list[tuple[CompiledProperty, dict]] = []
    for item in specs:
        if isinstance(item, str):
            compiled = compile_spec(item)
            for logic, prop in enumerate(compiled.properties):
                normalized.append(
                    (prop, {"kind": "source", "text": item, "logic": logic,
                            "silent": not prop._callbacks})
                )
        elif hasattr(item, "make") and not isinstance(item, (CompiledSpec, CompiledProperty)):
            key = getattr(item, "key", None)
            compiled = item.make()
            properties = (
                compiled.properties
                if isinstance(compiled, CompiledSpec)
                else [compiled]
            )
            for logic, prop in enumerate(properties):
                origin = (
                    {"kind": "paper", "key": key, "logic": logic,
                     "silent": not prop._callbacks}
                    if isinstance(key, str)
                    else {"kind": "opaque"}
                )
                normalized.append((prop, origin))
        elif isinstance(item, CompiledSpec):
            normalized.extend((prop, {"kind": "opaque"}) for prop in item.properties)
        elif isinstance(item, CompiledProperty):
            normalized.append((item, {"kind": "opaque"}))
        else:
            raise TypeError(f"cannot monitor {item!r}")
    return normalized


def materialize_origin(origin: Mapping[str, Any]) -> CompiledProperty:
    """Re-compile one property from its portable origin record.

    Raises :class:`~repro.core.errors.RegistryError` for ``opaque``
    origins — the compiled object was never representable as data, so the
    caller must supply it again.
    """
    kind = origin.get("kind")
    if kind == "source":
        compiled = compile_spec(origin["text"])
    elif kind == "paper":
        from ..properties import CATALOGUE

        key = origin["key"]
        if key not in CATALOGUE:
            raise RegistryError(f"unknown catalogue property key {key!r}")
        compiled = CATALOGUE[key].make()
    else:
        raise RegistryError(
            f"origin kind {kind!r} cannot be re-materialized; supply the "
            "compiled property explicitly"
        )
    logic = origin.get("logic", 0)
    try:
        prop = compiled.properties[logic]
    except IndexError:
        raise RegistryError(
            f"origin names logic block {logic}, but the specification has "
            f"{len(compiled.properties)}"
        ) from None
    if origin.get("silent"):
        # The registered property carried no handlers (e.g. it was
        # silenced for programmatic monitoring); re-materialization must
        # not resurrect the specification's declared print handlers.
        prop.silence()
    return prop


class PropertyRegistry:
    """A versioned set of compiled properties with stable slot indexes.

    Mutations never renumber: :meth:`remove` tombstones its slot, and new
    properties always append.  Each mutation bumps :attr:`epoch`.  The
    registry is a plain in-process object — thread safety is the owning
    layer's job (the engine is single-threaded per shard; the service
    serializes registry operations under its emit lock).
    """

    def __init__(self) -> None:
        self.entries: list[PropertyEntry] = []
        self.epoch = 0
        self._names: dict[str, int] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_specs(cls, specs: Any) -> "PropertyRegistry":
        """A fresh registry over any accepted property form (epoch counts
        one add per property, like loading them one by one)."""
        registry = cls()
        if specs is None:
            return registry
        for prop, origin in normalize_properties(specs):
            registry.add(prop, origin=origin)
        return registry

    def clone(self) -> "PropertyRegistry":
        """An independent copy sharing the compiled property objects.

        Shard engines clone the service's registry so each can mirror
        registry operations on its own copy; compiled artifacts are
        immutable at runtime and safe to share.
        """
        registry = PropertyRegistry()
        registry.epoch = self.epoch
        registry._names = dict(self._names)
        registry.entries = [
            replace(entry, origin=dict(entry.origin)) for entry in self.entries
        ]
        return registry

    # -- mutation ------------------------------------------------------------

    def unique_name(self, base: str) -> str:
        """The name a default-named add would assign right now.

        Exposed so callers that must know the name *before* committing the
        add (the service names worker-side attaches; the durable engine
        logs before applying) derive exactly what :meth:`add` will use.
        """
        unique = base
        suffix = 2
        while unique in self._names:
            unique = f"{base}#{suffix}"
            suffix += 1
        return unique

    def add(
        self,
        prop: CompiledProperty,
        name: str | None = None,
        origin: Mapping[str, Any] | None = None,
        enabled: bool = True,
    ) -> PropertyEntry:
        """Register one compiled property in a fresh slot; bumps the epoch."""
        unique = self.unique_name(
            name if name else f"{prop.spec_name}/{prop.formalism}"
        )
        if name is not None and unique != name:
            raise RegistryError(f"property name {name!r} is already registered")
        self.epoch += 1
        entry = PropertyEntry(
            index=len(self.entries),
            name=unique,
            spec_name=prop.spec_name,
            formalism=prop.formalism,
            fingerprint=prop.fingerprint(),
            origin=dict(origin) if origin is not None else {"kind": "opaque"},
            prop=prop,
            enabled=enabled,
            added_epoch=self.epoch,
        )
        self.entries.append(entry)
        self._names[unique] = entry.index
        return entry

    def remove(self, ref: Any) -> PropertyEntry:
        """Tombstone one slot; bumps the epoch.  The entry (and its
        fingerprint) stays addressable for snapshots and statistics."""
        entry = self.entry(ref)
        if entry.removed:
            raise RegistryError(f"property {entry.name!r} is already removed")
        self.epoch += 1
        entry.removed = True
        entry.enabled = False
        entry.removed_epoch = self.epoch
        return entry

    def enable(self, ref: Any) -> PropertyEntry:
        """Resume a paused property (bumps the epoch if it was paused)."""
        return self._set_enabled(ref, True)

    def disable(self, ref: Any) -> PropertyEntry:
        """Pause a property, keeping its slot and state intact."""
        return self._set_enabled(ref, False)

    def _set_enabled(self, ref: Any, enabled: bool) -> PropertyEntry:
        entry = self.entry(ref)
        if entry.removed:
            raise RegistryError(f"property {entry.name!r} has been removed")
        if entry.enabled != enabled:
            self.epoch += 1
            entry.enabled = enabled
        return entry

    def restore_epoch(self, epoch: int) -> None:
        """Adopt a snapshot's epoch (restore may only move it forward)."""
        if epoch < self.epoch:
            raise PersistError(
                f"snapshot epoch {epoch} is older than the registry's "
                f"{self.epoch}"
            )
        self.epoch = epoch

    # -- lookup --------------------------------------------------------------

    def entry(self, ref: Any) -> PropertyEntry:
        """Resolve a slot index, a registered name, an entry, or a compiled
        property object to its entry."""
        if isinstance(ref, PropertyEntry):
            return ref
        if isinstance(ref, int):
            if not 0 <= ref < len(self.entries):
                raise RegistryError(f"no property slot {ref}")
            return self.entries[ref]
        if isinstance(ref, str):
            index = self._names.get(ref)
            if index is None:
                raise RegistryError(
                    f"no registered property named {ref!r} "
                    f"(known: {sorted(self._names)})"
                )
            return self.entries[index]
        if isinstance(ref, CompiledProperty):
            for entry in self.entries:
                if entry.prop is ref and not entry.removed:
                    return entry
            raise RegistryError(f"{ref!r} is not registered")
        raise RegistryError(f"cannot resolve property reference {ref!r}")

    def index_of(self, ref: Any) -> int:
        """The stable slot index behind any accepted property reference."""
        return self.entry(ref).index

    def has_name(self, name: str) -> bool:
        """Whether ``name`` is already taken (pre-flight for callers that
        must validate an add before committing it elsewhere, e.g. the
        durable engine's write-ahead log)."""
        return name in self._names

    def loaded(self) -> Iterator[PropertyEntry]:
        """Entries that occupy their slot (includes disabled ones)."""
        return (entry for entry in self.entries if not entry.removed)

    def active(self) -> Iterator[PropertyEntry]:
        """Entries currently receiving events (loaded and enabled)."""
        return (
            entry for entry in self.entries if not entry.removed and entry.enabled
        )

    def properties(self) -> list[CompiledProperty | None]:
        """Per-slot compiled properties (``None`` for removed slots)."""
        return [None if entry.removed else entry.prop for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The registry as a JSON-safe record (epoch + per-slot entries)."""
        return {
            "epoch": self.epoch,
            "entries": [entry.snapshot() for entry in self.entries],
        }

    @classmethod
    def from_snapshot(
        cls,
        payload: Mapping[str, Any],
        supplied: Iterable[tuple[CompiledProperty, dict]] | None = None,
    ) -> "PropertyRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        ``supplied`` are caller-provided ``(property, origin)`` pairs (from
        :func:`normalize_properties`), consumed in slot order wherever the
        fingerprint matches; slots the caller did not cover are re-compiled
        from their recorded origins.  Removed slots become tombstones
        without a compiled property.  Raises
        :class:`~repro.core.errors.PersistError` when a slot can neither be
        matched nor re-materialized, or when supplied properties are left
        over — the caller's property set disagrees with the snapshot.
        """
        registry = cls()
        pending = list(supplied) if supplied is not None else []

        def take_supplied(fingerprint: str):
            # Match by fingerprint anywhere in the supplied list: slot
            # order need not equal supply order once tombstones and
            # hot-loaded slots exist (a caller restoring with the original
            # constructor specs after an unregister is the common case).
            for position, (candidate, candidate_origin) in enumerate(pending):
                if candidate.fingerprint() == fingerprint:
                    del pending[position]
                    return candidate, candidate_origin
            return None

        for slot, record in enumerate(payload.get("entries", ())):
            prop: CompiledProperty | None = None
            origin = dict(record.get("origin") or {"kind": "opaque"})
            if record.get("removed"):
                # A tombstone still consumes its supplied property (the
                # caller passed the constructor-time set; the slot just no
                # longer runs), keeping the leftover check meaningful.
                take_supplied(record["fingerprint"])
            else:
                fingerprint = record["fingerprint"]
                taken = take_supplied(fingerprint)
                if taken is not None:
                    prop, supplied_origin = taken
                    if origin.get("kind") not in _PORTABLE_KINDS:
                        origin = supplied_origin
                elif origin.get("kind") in _PORTABLE_KINDS:
                    prop = materialize_origin(origin)
                    if prop.fingerprint() != fingerprint:
                        raise PersistError(
                            f"registry slot {slot} ({record.get('name')!r}): "
                            "re-materialized property fingerprint does not "
                            "match the snapshot"
                        )
                elif pending:
                    raise PersistError(
                        f"property {slot} ({record['spec']}/{record['formalism']}) "
                        "does not match the snapshot: no supplied property has "
                        f"fingerprint {fingerprint} — the specification "
                        "semantics changed"
                    )
                else:
                    raise PersistError(
                        f"registry slot {slot} ({record.get('name')!r}) cannot "
                        "be restored: its origin is opaque — supply the "
                        "compiled property"
                    )
            entry = PropertyEntry(
                index=slot,
                name=record["name"],
                spec_name=record["spec"],
                formalism=record["formalism"],
                fingerprint=record["fingerprint"],
                origin=origin,
                prop=prop,
                enabled=record.get("enabled", True),
                removed=bool(record.get("removed")),
                added_epoch=record.get("added_epoch", 0),
                removed_epoch=record.get("removed_epoch"),
            )
            registry.entries.append(entry)
            registry._names[entry.name] = entry.index
        if pending:
            raise PersistError(
                f"{len(pending)} supplied properties do not correspond to "
                "any registry slot in the snapshot"
            )
        registry.epoch = payload.get("epoch", 0)
        return registry

    def __repr__(self) -> str:
        live = sum(1 for _ in self.loaded())
        return (
            f"PropertyRegistry(epoch={self.epoch}, slots={len(self.entries)}, "
            f"loaded={live})"
        )
