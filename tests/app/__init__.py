"""The heavy-traffic app scenario suite (ISSUE 10's headline test tier)."""
