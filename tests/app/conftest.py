"""Shared harness for the app scenario: one seeded workload, many configs.

Every test in this package drives the same reference app
(:class:`repro.app.AppServer`) with the same seeded
:class:`~repro.app.DriverConfig`, so the request mix — and therefore the
expected verdict multiset — is a pure function of the configuration
constants below.  The helpers centralize the live-run/record/replay
plumbing the equivalence tests repeat across engine configurations.
"""

from __future__ import annotations

import asyncio
import gc
import io
from collections import Counter

import pytest

from repro.app import AppServer, DriverConfig, app_specs, run_driver, weave_app
from repro.instrument.live import LiveSession
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import read_trace, split_death_markers

#: Server-side per-read deadline; stalls must exceed it deterministically.
READ_TIMEOUT = 0.25

#: The standard scenario mix: mostly clean keep-alive traffic, with every
#: misbehaviour class present — disconnects, stalls, handler errors
#: (REQLIFE), response interleaves (CONNREUSE), task leaks (HANDLERLEAK).
APP_CONFIG = DriverConfig(
    connections=5,
    requests_per_connection=6,
    seed=20110604,
    disconnect_fraction=0.08,
    stall_fraction=0.08,
    error_fraction=0.12,
    push_fraction=0.10,
    leak_fraction=0.10,
    stall_seconds=0.6,
)


def drive(config: DriverConfig = APP_CONFIG,
          read_timeout: float = READ_TIMEOUT):
    """One full (server, driver) run on a private loop; returns the stats."""

    async def run():
        async with AppServer(read_timeout=read_timeout) as server:
            return await run_driver(server.host, server.port, config)

    return asyncio.run(run())


def expected_verdicts(config: DriverConfig = APP_CONFIG) -> Counter:
    """The exact protocol-verdict multiset the seeded mix must produce:
    one REQLIFE error per /boom, one CONNREUSE error per /push, one
    HANDLERLEAK match per /leak."""
    mix = config.mix()
    want: Counter = Counter()
    if mix.get("boom"):
        want[("ReqLife", "fsm", "error")] = mix["boom"]
    if mix.get("push"):
        want[("ConnReuse", "fsm", "error")] = mix["push"]
    if mix.get("leak"):
        want[("HandlerLeak", "ere", "match")] = mix["leak"]
    return want


def build_engine(verdicts: Counter, *, gc_kind: str = "statebased",
                 dispatch: str = "compiled",
                 propagation: str = "lazy") -> MonitoringEngine:
    """An engine over the app property set, counting verdicts by
    (spec, formalism, category)."""
    return MonitoringEngine(
        [prop.make().silence() for prop in app_specs()],
        gc=gc_kind,
        dispatch=dispatch,
        propagation=propagation,
        on_verdict=lambda prop, category, _monitor: verdicts.update(
            [(prop.spec_name, prop.formalism, category)]
        ),
    )


def settle(engine: MonitoringEngine) -> dict:
    """Flush GC to a fixed point; snapshot the death-driven counters."""
    for _ in range(2):
        engine.flush_gc()
        gc.collect()
    return {
        key: (stats.events, stats.monitors_created, stats.monitors_collected)
        for key, stats in engine.stats().items()
    }


def run_app_live(*, gc_kind: str = "statebased", dispatch: str = "compiled",
                 propagation: str = "lazy",
                 config: DriverConfig = APP_CONFIG):
    """One monitored live run, recorded with death markers.

    Returns ``(trace_text, verdict_multiset, settled_counters, stats)``.
    """
    verdicts: Counter = Counter()
    engine = build_engine(verdicts, gc_kind=gc_kind, dispatch=dispatch,
                          propagation=propagation)
    buf = io.StringIO()
    session = LiveSession(engine, record=buf)
    with session:
        weave_app(session)
        stats = drive(config)
    counters = settle(engine)
    return buf.getvalue(), verdicts, counters, stats


@pytest.fixture(scope="session")
def recorded_app_run():
    """One canonical recorded run shared by the replay-side test matrix:
    ``(trace_text, live_verdicts)`` from a lazy/compiled live run."""
    trace, verdicts, _counters, _stats = run_app_live()
    return trace, verdicts


@pytest.fixture(scope="session")
def recorded_app_entries(recorded_app_run):
    """The canonical trace pre-parsed into (entries, deaths)."""
    trace, _verdicts = recorded_app_run
    return split_death_markers(read_trace(trace.splitlines()))
