"""Tentpole (c): flat RSS and monitor counts across a monitored churn soak.

Several waves of the full scenario mix run against one monitored server.
Every wave churns hundreds of parameter objects (requests, connections,
cursors, scratch dirs, handler tasks); after each wave the engine's GC is
flushed and the live-monitor population must return to the same small
baseline — monitor growth across waves would be exactly the leak the
paper's GC exists to prevent.  RSS is asserted flat within a generous
tolerance on top (the PR 4 leak machinery's assertion style).
"""

from __future__ import annotations

import asyncio
import gc
from collections import Counter

from repro.app import AppServer, DriverConfig, run_driver, weave_app
from repro.instrument.live import LiveSession

from .conftest import build_engine

WAVES = 4

#: Quick churn mix: no stalls (time-based) so waves stay sub-second.
WAVE_CONFIG = DriverConfig(
    connections=6,
    requests_per_connection=10,
    seed=20110604,
    disconnect_fraction=0.1,
    error_fraction=0.1,
    push_fraction=0.1,
    leak_fraction=0.1,
)

#: RSS headroom over the post-first-wave baseline.  Generous: the
#: assertion is about unbounded growth, not allocator jitter.
RSS_TOLERANCE_KB = 30_000


def rss_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")


def test_monitor_population_and_rss_stay_flat():
    verdicts: Counter = Counter()
    engine = build_engine(verdicts, gc_kind="statebased")
    session = LiveSession(engine)

    async def soak() -> list[tuple[int, int]]:
        checkpoints = []
        async with AppServer(read_timeout=1.0) as server:
            for _wave in range(WAVES):
                await run_driver(server.host, server.port, WAVE_CONFIG)
                # Let cancelled leak-task callbacks and closed transports
                # finish dying before measuring.
                await asyncio.sleep(0.05)
                for _ in range(2):
                    engine.flush_gc()
                    gc.collect()
                checkpoints.append((engine.total_live_monitors(), rss_kb()))
        return checkpoints

    with session:
        weave_app(session)
        checkpoints = asyncio.run(soak())

    monitors = [m for m, _rss in checkpoints]
    rss = [r for _m, r in checkpoints]
    # Monitors: every wave settles back to the first wave's baseline (the
    # long-lived slices: db connection, executor, server-lifetime dirs).
    baseline = monitors[0]
    assert baseline < 50, f"baseline suspiciously large: {checkpoints}"
    for wave, count in enumerate(monitors[1:], start=2):
        assert count <= baseline + 5, (
            f"monitor population grew across waves: {monitors}"
        )
    # RSS: flat within tolerance of the post-first-wave baseline.
    assert max(rss) - rss[0] < RSS_TOLERANCE_KB, f"RSS grew: {rss}"
    # The soak still monitored for real: verdicts arrived every wave.
    expected_per_wave = sum(
        count for kind, count in WAVE_CONFIG.mix().items()
        if kind in ("boom", "push", "leak")
    )
    assert sum(verdicts.values()) == WAVES * expected_per_wave
