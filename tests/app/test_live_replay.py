"""Tentpole (a): live verdicts == replayed trace, across the GC×dispatch matrix.

Each cell runs the full monitored scenario **live** (real asyncio server,
real parameter deaths observed by weakrefs, trace recorded with death
markers) and then re-monitors the recorded trace in a fresh engine of the
same configuration.  Verdict multisets *and* the death-driven
events/created/collected counters must be identical — the app-scale
restatement of ``tests/instrument/test_live_equivalence.py``.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.runtime.tracelog import replay

from .conftest import (
    APP_CONFIG,
    build_engine,
    expected_verdicts,
    run_app_live,
    settle,
)

#: The acceptance matrix: {lazy, eager} propagation × {compiled, codegen}.
PROPAGATIONS = ("lazy", "eager")
DISPATCHES = ("compiled", "codegen")


def run_replay(trace: str, *, dispatch: str, propagation: str):
    verdicts: Counter = Counter()
    engine = build_engine(verdicts, dispatch=dispatch, propagation=propagation)
    tokens = replay(trace.splitlines(), engine)
    counters = settle(engine)
    del tokens
    return verdicts, counters


@pytest.mark.parametrize("dispatch", DISPATCHES)
@pytest.mark.parametrize("propagation", PROPAGATIONS)
def test_live_equals_replay(propagation: str, dispatch: str):
    trace, live_verdicts, live_counters, _stats = run_app_live(
        dispatch=dispatch, propagation=propagation
    )
    assert live_verdicts, "the scenario mix must produce verdicts"
    assert '"die"' in trace, "live recording must contain death markers"
    replay_verdicts, replay_counters = run_replay(
        trace, dispatch=dispatch, propagation=propagation
    )
    assert replay_verdicts == live_verdicts
    assert replay_counters == live_counters


def test_verdicts_are_the_seeded_mix():
    """Ground truth: the protocol verdicts are exactly the misbehaving
    slots of the driver's plan — one REQLIFE error per /boom, one
    CONNREUSE error per /push, one HANDLERLEAK match per /leak."""
    _trace, verdicts, _counters, _stats = run_app_live()
    want = expected_verdicts(APP_CONFIG)
    protocol = Counter({
        key: count for key, count in verdicts.items()
        if key[0] in ("ReqLife", "ConnReuse", "HandlerLeak")
    })
    assert protocol == want
    # The clean traffic must stay clean: no resource-catalogue verdicts.
    assert protocol == verdicts


def test_monitor_gc_is_death_driven():
    """Request/connection churn retires monitors while the run is alive:
    collected > 0 and (for the per-request property) most of created."""
    _trace, _verdicts, counters, _stats = run_app_live()
    events, created, collected = counters[("ReqLife", "fsm")]
    assert events > 0
    assert created > 0
    assert collected > 0
    # Every request object is dead by settle time; the only uncollected
    # monitors are at most bookkeeping slices.
    assert collected >= created - 2
