"""The reference app itself: routes, keep-alive, stalls, disconnects.

These tests run the server *unmonitored* — they pin down the behaviour
the equivalence tests then monitor, so a failure here means the workload
changed, not the monitoring stack.
"""

from __future__ import annotations

import asyncio

from repro.app import AppServer, DriverConfig, ROUTES, run_driver
from repro.properties import CATALOGUE

from .conftest import APP_CONFIG, READ_TIMEOUT, drive


async def _raw_request(host, port, payload: bytes, *, reader=None, writer=None,
                       read_body: bool = True):
    """Send raw bytes, parse one response; returns (status, body, r, w)."""
    if writer is None:
        reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header == b"\r\n":
            break
        name, _, value = header.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length) if read_body and length else b""
    return status, body, reader, writer


def _get(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n".encode()


def test_route_table_matches_handlers():
    """ROUTES (the docs' source of truth) covers exactly the handlers, and
    every property it names exists in the CATALOGUE."""
    server = AppServer()
    assert [spec.path for spec in ROUTES] == sorted(
        server._handlers(), key=lambda p: [s.path for s in ROUTES].index(p)
    )
    assert {spec.path for spec in ROUTES} == set(server._handlers())
    for spec in ROUTES:
        for key in spec.properties:
            assert key in CATALOGUE, (spec.path, key)


def test_routes_respond_over_one_keepalive_connection():
    async def scenario():
        async with AppServer(read_timeout=READ_TIMEOUT) as server:
            reader = writer = None
            expected = {"/": 200, "/items": 200, "/work": 200, "/scratch": 200,
                        "/stream": 200, "/sleep": 200, "/leak": 200,
                        "/boom": 500, "/nope": 404}
            for path, want in expected.items():
                status, body, reader, writer = await _raw_request(
                    server.host, server.port, _get(path),
                    reader=reader, writer=writer,
                )
                assert status == want, path
                assert body, path
            writer.close()
            # Every request above rode one server-side connection.
            assert server.connections_handled == 1
            assert server.requests_handled == len(expected)

    asyncio.run(scenario())


def test_items_post_then_get_roundtrip():
    async def scenario():
        async with AppServer(read_timeout=READ_TIMEOUT) as server:
            post = (b"POST /items HTTP/1.1\r\nhost: t\r\n"
                    b"content-length: 7\r\n\r\nwidget7")
            status, body, reader, writer = await _raw_request(
                server.host, server.port, post
            )
            assert status == 200 and b"stored" in body
            status, body, _r, writer = await _raw_request(
                server.host, server.port, _get("/items"),
                reader=reader, writer=writer,
            )
            assert status == 200 and b"widget7" in body
            writer.close()

    asyncio.run(scenario())


def test_stalled_client_gets_408_and_connection_close():
    async def scenario():
        async with AppServer(read_timeout=0.1) as server:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"GET /sleep HTTP/1.1\r\nhost: t\r\n")  # ...and stall
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(), timeout=5)
            assert b"408" in status_line
            rest = await asyncio.wait_for(reader.read(), timeout=5)
            assert b"timeout" in rest
            writer.close()

    asyncio.run(scenario())


def test_mid_request_disconnect_leaves_server_healthy():
    async def scenario():
        async with AppServer(read_timeout=READ_TIMEOUT) as server:
            _reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"GET /items HTTP/1.1\r\nhost: t\r\n")
            await writer.drain()
            writer.close()
            # The aborted exchange must not take the server down.
            status, body, _r, writer2 = await _raw_request(
                server.host, server.port, _get("/")
            )
            assert status == 200 and body == b"hello\n"
            writer2.close()

    asyncio.run(scenario())


def test_driver_mix_is_a_pure_seed_function():
    mix = APP_CONFIG.mix()
    assert mix == APP_CONFIG.mix()
    assert sum(mix.values()) == (
        APP_CONFIG.connections * APP_CONFIG.requests_per_connection
    )
    # All misbehaviour classes are present in the standard scenario...
    for kind in ("normal", "disconnect", "stall", "boom", "push", "leak"):
        assert mix.get(kind, 0) > 0, kind
    # ...and a different seed reshuffles the plan.
    other = DriverConfig(**{**APP_CONFIG.__dict__, "seed": 7})
    assert [other.plan(i) for i in range(other.connections)] != [
        APP_CONFIG.plan(i) for i in range(APP_CONFIG.connections)
    ]


def test_driver_outcomes_match_the_plan():
    """The driven run's observable outcomes equal the derived plan: the
    response statuses are a pure function of the seed."""
    stats = drive()
    mix = APP_CONFIG.mix()
    assert stats.requests == sum(
        count for kind, count in mix.items()
        if kind not in ("disconnect", "stall")
    )
    assert stats.responses == stats.requests  # nothing lost or duplicated
    assert stats.disconnects == mix.get("disconnect", 0)
    assert stats.stalls == mix.get("stall", 0)
    assert stats.status_counts.get(500, 0) == mix.get("boom", 0)
    assert stats.status_counts.get(200, 0) == stats.requests - mix.get("boom", 0)
    assert stats.p99_ms >= stats.p50_ms > 0
