"""Tentpole (b): the sharded service under app load equals a single engine.

One canonical recorded app run (session fixture) is replayed into a
single :class:`MonitoringEngine` and into 2-shard
:class:`MonitorService` instances in thread and process mode, across the
dispatch × propagation matrix.  Verdict multisets — keyed by *symbol*, so
binding identities are comparable across targets — must be identical.

Tokens are held alive for the whole replay (no mid-stream retirement):
queued modes observe deaths at batch granularity, so death-driven GC
equivalence is asserted engine-side (``test_live_replay``), while this
suite pins the sharding/queueing/forking layers' verdict neutrality.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.app import app_specs
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.service import MonitorService

PROPAGATIONS = ("lazy", "eager")
DISPATCHES = ("compiled", "codegen")
SHARDS = 2


def _symbol(value):
    """ReplayTokens key by their recorded symbol; immortals by themselves."""
    return getattr(value, "symbol", value)


def _binding_key(pairs) -> tuple:
    return tuple(sorted((name, _symbol(value)) for name, value in pairs))


def engine_multiset(entries, *, dispatch: str, propagation: str) -> Counter:
    verdicts: Counter = Counter()
    engine = MonitoringEngine(
        [prop.make().silence() for prop in app_specs()],
        dispatch=dispatch,
        propagation=propagation,
        on_verdict=lambda prop, category, monitor: verdicts.update(
            [(prop.spec_name, prop.formalism, category,
              _binding_key(monitor.binding().items()))]
        ),
    )
    tokens = replay_entries(entries, engine)
    del tokens
    return verdicts


def service_multiset(entries, *, mode: str, dispatch: str,
                     propagation: str) -> Counter:
    verdicts: Counter = Counter()
    with MonitorService(
        [prop.make().silence() for prop in app_specs()],
        shards=SHARDS,
        mode=mode,
        dispatch=dispatch,
        propagation=propagation,
        keep_verdict_log=False,
        on_verdict=lambda record: verdicts.update(
            [(record.spec_name, record.formalism, record.category,
              _binding_key(record.binding))]
        ),
    ) as service:
        tokens = replay_entries(entries, service, batch_size=64)
        service.drain()
        del tokens
    return verdicts


@pytest.mark.parametrize("dispatch", DISPATCHES)
@pytest.mark.parametrize("propagation", PROPAGATIONS)
@pytest.mark.parametrize("mode", ("thread", "process"))
def test_service_equals_single_engine(mode, propagation, dispatch,
                                      recorded_app_entries):
    entries, _deaths = recorded_app_entries
    want = engine_multiset(entries, dispatch=dispatch, propagation=propagation)
    assert want, "the canonical app trace must produce verdicts"
    got = service_multiset(entries, mode=mode, dispatch=dispatch,
                           propagation=propagation)
    assert got == want


def test_shard_count_is_verdict_neutral(recorded_app_entries):
    entries, _deaths = recorded_app_entries
    want = engine_multiset(entries, dispatch="compiled", propagation="lazy")
    for shards in (1, 3):
        verdicts: Counter = Counter()
        with MonitorService(
            [prop.make().silence() for prop in app_specs()],
            shards=shards,
            mode="inline",
            keep_verdict_log=False,
            on_verdict=lambda record: verdicts.update(
                [(record.spec_name, record.formalism, record.category,
                  _binding_key(record.binding))]
            ),
        ) as service:
            tokens = replay_entries(entries, service)
            del tokens
        assert verdicts == want, shards


def test_replay_equals_live_categories(recorded_app_run, recorded_app_entries):
    """Closing the loop: the symbol-keyed replay projects down to exactly
    the live run's (spec, formalism, category) multiset."""
    _trace, live_verdicts = recorded_app_run
    entries, _deaths = recorded_app_entries
    replayed = engine_multiset(entries, dispatch="compiled",
                               propagation="lazy")
    assert Counter(key[:3] for key in replayed) == live_verdicts
