"""CLI tests: ``python -m repro.bench``."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig9a_tiny_grid(self, capsys):
        code = main(
            [
                "fig9a",
                "--scale", "1.0",
                "--workloads", "tradebeans",
                "--properties", "hasnext",
                "--systems", "rv",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 9(A)" in out
        assert "tradebeans" in out
        assert "%" in out

    def test_all_figures_with_all_column(self, capsys):
        code = main(
            [
                "all",
                "--scale", "1.0",
                "--workloads", "tradebeans,tomcat",
                "--properties", "hasnext,unsafeiter",
                "--systems", "mop,rv",
                "--all-column",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 9(A)" in out
        assert "Figure 9(B)" in out
        assert "Figure 10" in out
        assert "ALL/RV" in out

    def test_fig10_only(self, capsys):
        main(
            [
                "fig10",
                "--workloads", "tradebeans",
                "--properties", "unsafeiter",
                "--systems", "rv",
            ]
        )
        out = capsys.readouterr().out
        assert "Figure 9(A)" not in out
        assert ".FM" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
