"""Harness tests: cell mechanics and the qualitative table shapes.

These run tiny scales — the full-size shape assertions live in
``benchmarks/`` — but they still verify the *mechanisms* behind Figures 9
and 10: overhead is computed against an unwoven baseline, statistics come
from the engine, the TM-analog refuses CFG cells, and the memory ordering
(MOP retains most, RV flags most) already shows at small scale.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import baseline_time, run_cell, run_grid
from repro.bench.report import render_fig9a, render_fig9b, render_fig10


class TestRunCell:
    def test_basic_cell(self):
        cell = run_cell("tomcat", "hasnext", "rv")
        assert cell.workload == "tomcat"
        assert cell.properties == ("hasnext",)
        assert cell.monitored_seconds > 0
        assert cell.original_seconds > 0
        stats = cell.totals()
        assert stats["E"] > 0
        assert stats["M"] > 0

    def test_overhead_computation(self):
        cell = run_cell("tomcat", "hasnext", "rv")
        expected = 100.0 * (cell.monitored_seconds - cell.original_seconds) / cell.original_seconds
        assert cell.overhead_pct == pytest.approx(expected)

    def test_shared_baseline(self):
        baseline = baseline_time("tomcat")
        cell = run_cell("tomcat", "hasnext", "rv", original_seconds=baseline)
        assert cell.original_seconds == baseline

    def test_all_cell_hosts_multiple_properties(self):
        cell = run_cell("tomcat", ["hasnext", "unsafeiter"], "rv")
        names = {spec for spec, _formalism in cell.stats}
        assert names == {"HasNext", "UnsafeIter"}

    def test_tm_refuses_cfg(self):
        cell = run_cell("tomcat", "safelock", "tm")
        assert cell.unsupported

    def test_tracemalloc_measurement(self):
        cell = run_cell("tomcat", "hasnext", "rv", measure_tracemalloc=True)
        assert cell.tracemalloc_monitored is not None
        assert cell.tracemalloc_original is not None

    def test_unweaving_leaves_no_residue(self):
        from repro.instrument.collections_shim import MonitoredCollection, MonitoredIterator

        before_iter = MonitoredIterator.next
        before_coll = MonitoredCollection.iterator
        run_cell("tomcat", "unsafeiter", "rv")
        assert MonitoredIterator.next is before_iter
        assert MonitoredCollection.iterator is before_coll


class TestShapes:
    """Small-scale versions of the paper's qualitative claims."""

    def test_memory_ordering_mop_retains_rv_flags(self):
        """RV flags dead-iterator monitors *while the run is going* and so
        keeps its live population small; MOP can only flag once the whole
        binding (collection included) has died, so its peak tracks M.
        (End-of-run flush flags MOP's all-dead monitors too, which is why
        the comparison is on peaks, not final FM.)"""
        scale = 0.15
        rv = run_cell("bloat", "unsafeiter", "rv", scale=scale)
        mop = run_cell("bloat", "unsafeiter", "mop", scale=scale)
        assert rv.totals()["FM"] > 0
        assert rv.peak_live_monitors < mop.peak_live_monitors

    def test_rv_flags_most_monitors_on_iterator_heavy_workload(self):
        cell = run_cell("bloat", "unsafeiter", "rv", scale=0.15)
        totals = cell.totals()
        assert totals["FM"] >= 0.7 * totals["M"]

    def test_quiet_workloads_produce_few_events(self):
        loud = run_cell("bloat", "hasnext", "rv", scale=0.1).totals()["E"]
        quiet = run_cell("tradebeans", "hasnext", "rv").totals()["E"]
        assert quiet * 50 < loud


class TestGridAndReports:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_grid(
            ["tomcat", "xalan"],
            ["hasnext", "unsafeiter"],
            ["tm", "mop", "rv"],
            include_all_column=True,
        )

    def test_grid_covers_all_cells(self, grid):
        assert len(grid.cells) == 2 * (2 * 3 + 1)
        cell = grid.cell("tomcat", ("hasnext",), "rv")
        assert cell.system == "rv"

    def test_grid_missing_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.cell("bloat", ("hasnext",), "rv")

    def test_render_fig9a(self, grid):
        table = render_fig9a(
            grid, ["tomcat", "xalan"], ["hasnext", "unsafeiter"],
            include_all_column=True,
        )
        assert "ALL/RV" in table
        assert "tomcat" in table and "%" in table

    def test_render_fig9b(self, grid):
        table = render_fig9b(grid, ["tomcat", "xalan"], ["hasnext", "unsafeiter"])
        assert "hasnext/MOP" in table

    def test_render_fig10(self, grid):
        table = render_fig10(grid, ["tomcat", "xalan"], ["hasnext", "unsafeiter"])
        for column in (".E", ".M", ".FM", ".CM"):
            assert column in table

    def test_unsupported_cells_render_na(self):
        grid = run_grid(["tomcat"], ["safelock"], ["tm"])
        table = render_fig9a(grid, ["tomcat"], ["safelock"], systems=["tm"])
        assert "n/a" in table
