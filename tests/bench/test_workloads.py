"""Workload generator tests: determinism, scaling, calibrated shapes."""

from __future__ import annotations

import pytest

from repro.bench.workloads import WORKLOAD_ORDER, WORKLOADS, run_workload


class TestCatalog:
    def test_fifteen_dacapo_analogs(self):
        assert len(WORKLOADS) == 15
        assert set(WORKLOAD_ORDER) == set(WORKLOADS)

    def test_paper_table_order(self):
        assert WORKLOAD_ORDER[0] == "bloat"
        assert WORKLOAD_ORDER[-1] == "xalan"

    def test_bloat_is_the_heavyweight(self):
        bloat = run_workload(WORKLOADS["bloat"].scaled(0.05))
        tomcat = run_workload(WORKLOADS["tomcat"])
        assert bloat.iterators_created > 50 * tomcat.iterators_created

    def test_h2_window_is_one(self):
        assert WORKLOADS["h2"].live_window == 1

    def test_sunflow_many_events_few_monitors(self):
        result = run_workload(WORKLOADS["sunflow"].scaled(0.2))
        assert result.hasnext_calls > 2 * result.iterators_created


class TestDeterminism:
    @pytest.mark.parametrize("name", ["bloat", "avrora", "pmd", "xalan"])
    def test_same_seed_same_run(self, name):
        profile = WORKLOADS[name].scaled(0.05)
        assert run_workload(profile) == run_workload(profile)


class TestScaling:
    def test_scaled_reduces_proportionally(self):
        full = WORKLOADS["bloat"]
        half = full.scaled(0.5)
        assert half.collections == round(full.collections * 0.5)
        assert half.live_window <= full.live_window

    def test_scaled_never_zero(self):
        tiny = WORKLOADS["bloat"].scaled(0.0001)
        assert tiny.collections >= 1
        assert tiny.live_window >= 1

    def test_counts_track_scale(self):
        small = run_workload(WORKLOADS["avrora"].scaled(0.05))
        large = run_workload(WORKLOADS["avrora"].scaled(0.1))
        assert large.iterators_created > small.iterators_created


class TestMixes:
    def test_map_fraction_produces_map_traffic(self):
        result = run_workload(WORKLOADS["avrora"].scaled(0.1))
        assert result.collections_created > 0

    def test_updates_follow_probability(self):
        never = run_workload(WORKLOADS["luindex"])
        assert never.updates == 0
        often = run_workload(WORKLOADS["bloat"].scaled(0.1))
        assert often.updates > 0
