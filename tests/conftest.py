"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest


class Obj:
    """A weak-referenceable identity token used as a parameter object.

    Parameter values are compared by identity throughout the library (as in
    Java), so tests must create explicit objects rather than rely on interned
    strings or small ints.
    """

    __slots__ = ("name", "__weakref__")

    def __init__(self, name: str = "o"):
        self.name = name

    def __repr__(self) -> str:
        return f"Obj({self.name})"


@pytest.fixture
def obj():
    """Factory fixture: ``obj("c1")`` makes a fresh parameter object."""
    return Obj


def make_objs(*names: str) -> list[Obj]:
    return [Obj(name) for name in names]
