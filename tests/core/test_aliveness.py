"""ALIVENESS formula tests (Section 4.2.2)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.aliveness import AlivenessFormula, compile_aliveness


def formula(*conjuncts):
    return AlivenessFormula(frozenset(frozenset(c) for c in conjuncts))


class TestConstruction:
    def test_false_formula(self):
        assert AlivenessFormula.false().is_false
        assert not AlivenessFormula.false().evaluate({})

    def test_true_formula(self):
        assert AlivenessFormula.true().is_true
        assert AlivenessFormula.true().evaluate({"x": False})

    def test_absorption_removes_supersets(self):
        """(live_i) | (live_c & live_i) minimizes to live_i."""
        minimized = formula({"i"}, {"c", "i"})
        assert minimized.disjuncts == frozenset({frozenset({"i"})})

    def test_absorption_keeps_incomparable_conjuncts(self):
        mixed = formula({"a", "b"}, {"b", "c"})
        assert mixed.disjuncts == frozenset(
            {frozenset({"a", "b"}), frozenset({"b", "c"})}
        )

    def test_empty_conjunct_absorbs_everything(self):
        assert formula((), {"a"}, {"a", "b"}).is_true

    def test_parameters(self):
        assert formula({"a", "b"}, {"c"}).parameters == {"a", "b", "c"}
        assert AlivenessFormula.false().parameters == frozenset()


class TestEvaluation:
    def test_needs_every_param_of_some_disjunct(self):
        f = formula({"a", "b"})
        assert f.evaluate({"a": True, "b": True})
        assert not f.evaluate({"a": True, "b": False})
        assert not f.evaluate({"a": False, "b": False})

    def test_disjunction(self):
        f = formula({"a"}, {"b"})
        assert f.evaluate({"a": False, "b": True})
        assert f.evaluate({"a": True, "b": False})
        assert not f.evaluate({"a": False, "b": False})

    def test_missing_params_count_as_alive(self):
        """Unbound parameters may still be bound later — conservative."""
        f = formula({"a", "b"})
        assert f.evaluate({"a": True})  # b unbound -> alive

    def test_callable_liveness(self):
        f = formula({"a", "b"})
        assert f.evaluate(lambda name: True)
        assert not f.evaluate(lambda name: name != "b")

    def test_equality_and_hash(self):
        assert formula({"a"}) == formula({"a"})
        assert hash(formula({"a"})) == hash(formula({"a"}))
        assert formula({"a"}) != formula({"b"})
        assert formula({"a"}) != "nope"

    def test_repr_forms(self):
        assert repr(AlivenessFormula.false()) == "ALIVENESS[false]"
        assert repr(AlivenessFormula.true()) == "ALIVENESS[true]"
        assert "live_a" in repr(formula({"a"}))


class TestCompile:
    def test_compile_aliveness_maps_events(self):
        compiled = compile_aliveness(
            {
                "update": frozenset({frozenset({"i"}), frozenset({"c", "i"})}),
                "next": frozenset({frozenset({"c", "i"})}),
            }
        )
        assert compiled["update"].disjuncts == frozenset({frozenset({"i"})})
        assert compiled["next"].disjuncts == frozenset({frozenset({"c", "i"})})

    def test_empty_family_compiles_to_false(self):
        compiled = compile_aliveness({"e": frozenset()})
        assert compiled["e"].is_false


# -- property-based: minimization preserves semantics ---------------------------

_PARAMS = ("a", "b", "c")


@st.composite
def families(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    sets = []
    for _ in range(count):
        sets.append(
            frozenset(p for p in _PARAMS if draw(st.booleans()))
        )
    return frozenset(sets)


@st.composite
def assignments(draw):
    return {p: draw(st.booleans()) for p in _PARAMS}


@given(families(), assignments())
def test_minimization_preserves_truth(family, assignment):
    raw_truth = any(
        all(assignment[p] for p in conjunct) for conjunct in family
    )
    assert AlivenessFormula(family).evaluate(assignment) == raw_truth


@given(families())
def test_minimized_conjuncts_are_antichain(family):
    minimized = AlivenessFormula(family).disjuncts
    for a in minimized:
        for b in minimized:
            assert not (a < b)
