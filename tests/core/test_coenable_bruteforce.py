"""Fixpoint coenable/enable computations vs exhaustive trace enumeration.

For small alphabets the brute-force oracles of :mod:`repro.core.coenable`
enumerate every trace up to a length bound; the FSM and CFG fixpoints must
agree on every event — restricted to the sets reachable within the bound,
the fixpoint families must be supersets, and for long-enough bounds equal.
"""

from __future__ import annotations

import pytest

from repro.core.coenable import brute_force_coenable, brute_force_enable
from repro.formalism.cfg import compile_cfg
from repro.formalism.ere import compile_ere
from repro.formalism.fsm import FSM, FSMTemplate
from repro.formalism.ltl import compile_ltl

MATCH = frozenset({"match"})


def assert_family_equal(fixpoint, brute, bounded=False):
    for event, family in brute.items():
        if bounded:
            # Every brute-force set must be produced by the fixpoint.
            assert family <= fixpoint[event], event
        else:
            assert family == fixpoint[event], event


class TestEreAgainstBruteForce:
    @pytest.mark.parametrize(
        "pattern,alphabet,depth",
        [
            ("a b", {"a", "b"}, 5),
            ("a* b", {"a", "b"}, 6),
            ("(a | b)* c", {"a", "b", "c"}, 5),
            ("a+ b+", {"a", "b"}, 6),
            ("update* create next* update+ next", {"update", "create", "next"}, 6),
        ],
    )
    def test_coenable_superset_of_bounded_enumeration(self, pattern, alphabet, depth):
        template = compile_ere(pattern, alphabet)
        fixpoint = template.coenable_sets(MATCH)
        brute = brute_force_coenable(template, MATCH, depth)
        assert_family_equal(fixpoint, brute, bounded=True)

    @pytest.mark.parametrize(
        "pattern,alphabet,depth",
        [
            ("a b", {"a", "b"}, 6),
            ("a? b", {"a", "b"}, 6),
        ],
    )
    def test_exact_for_finite_languages(self, pattern, alphabet, depth):
        """For patterns whose goal traces are all short, fixpoint == brute."""
        template = compile_ere(pattern, alphabet)
        assert_family_equal(
            template.coenable_sets(MATCH),
            brute_force_coenable(template, MATCH, depth),
        )
        assert_family_equal(
            template.enable_sets(MATCH),
            brute_force_enable(template, MATCH, depth),
        )

    def test_enable_superset_of_bounded_enumeration(self):
        template = compile_ere(
            "update* create next* update+ next", {"update", "create", "next"}
        )
        fixpoint = template.enable_sets(MATCH)
        brute = brute_force_enable(template, MATCH, 6)
        assert_family_equal(fixpoint, brute, bounded=True)


class TestFsmAgainstBruteForce:
    def hasnext(self) -> FSMTemplate:
        return FSMTemplate(
            FSM(
                states=("unknown", "more", "none", "error"),
                alphabet=frozenset({"hasnexttrue", "hasnextfalse", "next"}),
                initial="unknown",
                transitions={
                    ("unknown", "hasnexttrue"): "more",
                    ("unknown", "hasnextfalse"): "none",
                    ("unknown", "next"): "error",
                    ("more", "hasnexttrue"): "more",
                    ("more", "next"): "unknown",
                    ("none", "hasnextfalse"): "none",
                    ("none", "next"): "error",
                },
            )
        )

    def test_hasnext_error_goal(self):
        template = self.hasnext()
        goal = frozenset({"error"})
        fixpoint = template.coenable_sets(goal)
        brute = brute_force_coenable(template, goal, 5)
        assert_family_equal(fixpoint, brute, bounded=True)

    def test_hasnext_enable(self):
        template = self.hasnext()
        goal = frozenset({"error"})
        fixpoint = template.enable_sets(goal)
        brute = brute_force_enable(template, goal, 5)
        assert_family_equal(fixpoint, brute, bounded=True)


class TestLtlAgainstBruteForce:
    def test_paper_formula(self):
        template = compile_ltl(
            "[](next => (*)hasnexttrue)", {"hasnexttrue", "hasnextfalse", "next"}
        )
        goal = frozenset({"violation"})
        fixpoint = template.coenable_sets(goal)
        brute = brute_force_coenable(template, goal, 4)
        assert_family_equal(fixpoint, brute, bounded=True)


class TestCfgAgainstBruteForce:
    @pytest.mark.parametrize(
        "grammar,depth",
        [
            ("S -> a S b | epsilon", 6),
            ("S -> S begin S end | S acquire S release | epsilon", 4),
            ("S -> a | S S", 5),
        ],
    )
    def test_coenable_superset_of_bounded_enumeration(self, grammar, depth):
        template = compile_cfg(grammar)
        fixpoint = template.coenable_sets(MATCH)
        brute = brute_force_coenable(template, MATCH, depth)
        assert_family_equal(fixpoint, brute, bounded=True)

    @pytest.mark.parametrize(
        "grammar,depth",
        [
            ("S -> a S b | epsilon", 6),
            ("S -> S begin S end | S acquire S release | epsilon", 4),
        ],
    )
    def test_enable_superset_of_bounded_enumeration(self, grammar, depth):
        template = compile_cfg(grammar)
        fixpoint = template.enable_sets(MATCH)
        brute = brute_force_enable(template, MATCH, depth)
        assert_family_equal(fixpoint, brute, bounded=True)

    def test_finite_language_exact(self):
        template = compile_cfg("S -> a b | b a")
        assert_family_equal(
            template.coenable_sets(MATCH), brute_force_coenable(template, MATCH, 4)
        )
        assert_family_equal(
            template.enable_sets(MATCH), brute_force_enable(template, MATCH, 4)
        )


class TestTheorem1:
    """Soundness: once an event's coenable requirement is unmeetable, no goal.

    For every goal trace ``w e w'`` (enumerated exhaustively), the suffix
    ``w'`` must cover at least one coenable set of ``e`` *unless* the trace
    ends at ``e`` (the dropped-∅ case, which the paper excludes because it
    speaks of reaching the goal again in the future).
    """

    def test_unsafeiter(self):
        from repro.core.monitor import run_monitor
        import itertools

        template = compile_ere(
            "update* create next* update+ next", {"update", "create", "next"}
        )
        coenable = template.coenable_sets(MATCH)
        alphabet = sorted(template.alphabet)
        for length in range(1, 7):
            for trace in itertools.product(alphabet, repeat=length):
                if run_monitor(template, trace) != "match":
                    continue
                for position, event in enumerate(trace):
                    suffix = set(trace[position + 1 :])
                    if not suffix:
                        continue
                    assert any(
                        inner <= suffix for inner in coenable[event]
                    ), f"{trace} at {position}"
