"""The exact coenable sets the paper works out in Section 3.

These are the strongest oracle tests in the suite: the fixpoint
implementations must reproduce, symbol for symbol, the UNSAFEITER coenable
sets, the parameter coenable sets of Definition 11's example, and the
ALIVENESS consequences discussed in Sections 3 and 4.2.2.
"""

from __future__ import annotations

from repro.core.coenable import param_coenable_sets
from repro.core.events import EventDefinition
from repro.formalism.ere import compile_ere
from repro.spec import compile_spec

MATCH_GOAL = frozenset({"match"})


def family(*sets):
    return frozenset(frozenset(s) for s in sets)


def unsafeiter_template():
    return compile_ere("update* create next* update+ next", {"create", "update", "next"})


class TestUnsafeIterCoenable:
    """COENABLE_{P,G} for P = UNSAFEITER, G = {match} (Section 3)."""

    def test_create(self):
        coenable = unsafeiter_template().coenable_sets(MATCH_GOAL)
        assert coenable["create"] == family({"next", "update"})

    def test_update(self):
        coenable = unsafeiter_template().coenable_sets(MATCH_GOAL)
        assert coenable["update"] == family(
            {"next"},
            {"next", "update"},
            {"next", "create", "update"},
        )

    def test_next_has_empty_set_dropped(self):
        """Without dropping ∅s, COENABLE(next) would contain ∅ (the paper
        notes this explicitly)."""
        coenable = unsafeiter_template().coenable_sets(MATCH_GOAL)
        assert coenable["next"] == family({"next", "update"})
        assert frozenset() not in coenable["next"]


class TestUnsafeIterParamCoenable:
    """COENABLE^X_{P,G} for X = {c, i} (Definition 11's worked example)."""

    definition = EventDefinition({"create": {"c", "i"}, "update": {"c"}, "next": {"i"}})

    def lifted(self):
        coenable = unsafeiter_template().coenable_sets(MATCH_GOAL)
        return param_coenable_sets(coenable, self.definition)

    def test_create(self):
        assert self.lifted()["create"] == family({"c", "i"})

    def test_update(self):
        assert self.lifted()["update"] == family({"i"}, {"c", "i"})

    def test_next(self):
        assert self.lifted()["next"] == family({"c", "i"})

    def test_i_occurs_in_every_inner_set(self):
        """The paper's key observation: i occurs in every inner set, so a
        dead Iterator makes every UNSAFEITER monitor collectable."""
        for sets in self.lifted().values():
            for inner in sets:
                assert "i" in inner


class TestAlivenessConsequences:
    """Section 4.2.2: the compiled ALIVENESS formulas."""

    def spec(self):
        return compile_spec(
            """
            UnsafeIter(c, i) {
              event create(c, i)
              event update(c)
              event next(i)
              ere: update* create next* update+ next
              @match
            }
            """
        )

    def test_update_formula_is_live_i(self):
        """{i} absorbs {c,i}: after an update, only the iterator must live."""
        aliveness = self.spec().properties[0].aliveness
        assert aliveness["update"].disjuncts == frozenset({frozenset({"i"})})

    def test_create_and_next_need_both(self):
        aliveness = self.spec().properties[0].aliveness
        for event in ("create", "next"):
            assert aliveness[event].disjuncts == frozenset({frozenset({"c", "i"})})

    def test_dead_iterator_falsifies_everything(self):
        aliveness = self.spec().properties[0].aliveness
        liveness = {"c": True, "i": False}
        for event in ("create", "update", "next"):
            assert not aliveness[event].evaluate(liveness)

    def test_dead_collection_keeps_update_monitors(self):
        """After update, {i} suffices — a dead collection alone does not
        make the monitor collectable (the match can still happen... only it
        cannot: update is needed again.  The formula is conservative exactly
        as Theorem 1 allows)."""
        aliveness = self.spec().properties[0].aliveness
        assert aliveness["update"].evaluate({"c": False, "i": True})


class TestHasNextCoenable:
    """HASNEXT (one parameter): every inner set needs the iterator alive."""

    def spec(self):
        return compile_spec(
            """
            HasNext(i) {
              event hasnexttrue(i)
              event hasnextfalse(i)
              event next(i)
              fsm:
                unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
                more    [ hasnexttrue -> more  next -> unknown ]
                none    [ hasnextfalse -> none  next -> error ]
                error   [ ]
              @error
            }
            """
        )

    def test_all_formulas_are_live_i(self):
        aliveness = self.spec().properties[0].aliveness
        for event in ("hasnexttrue", "hasnextfalse", "next"):
            assert aliveness[event].disjuncts == frozenset({frozenset({"i"})})
