"""Event and event-definition tests (Definitions 1, 3 and 4)."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    InconsistentEventError,
    UnknownEventError,
    UnknownParameterError,
)
from repro.core.events import EventDefinition, ParametricEvent
from repro.core.params import Binding

from ..conftest import Obj, make_objs

UNSAFEITER_D = {"create": {"c", "i"}, "update": {"c"}, "next": {"i"}}


class TestParametricEvent:
    def test_of_builds_binding(self):
        i1 = Obj("i1")
        event = ParametricEvent.of("next", i=i1)
        assert event.name == "next"
        assert event.binding == Binding.of(i=i1)

    def test_default_empty_binding(self):
        event = ParametricEvent("tick")
        assert event.binding.domain == frozenset()

    def test_mapping_binding(self):
        c1 = Obj("c1")
        event = ParametricEvent("update", {"c": c1})
        assert event.binding["c"] is c1

    def test_equality_and_hash(self):
        i1 = Obj("i1")
        assert ParametricEvent.of("next", i=i1) == ParametricEvent.of("next", i=i1)
        assert hash(ParametricEvent.of("next", i=i1)) == hash(
            ParametricEvent.of("next", i=i1)
        )
        assert ParametricEvent.of("next", i=i1) != ParametricEvent.of("next", i=Obj("i1"))
        assert ParametricEvent.of("next", i=i1) != "next"

    def test_repr(self):
        i1 = Obj("i1")
        assert "next" in repr(ParametricEvent.of("next", i=i1))


class TestEventDefinition:
    def test_paper_example(self):
        definition = EventDefinition(UNSAFEITER_D)
        assert definition.params_of("create") == {"c", "i"}
        assert definition.params_of("update") == {"c"}
        assert definition.alphabet == {"create", "update", "next"}
        assert definition.parameters == {"c", "i"}

    def test_d_extended_to_traces(self):
        definition = EventDefinition(UNSAFEITER_D)
        assert definition.params_of_trace([]) == frozenset()
        assert definition.params_of_trace(["update"]) == {"c"}
        assert definition.params_of_trace(["create", "update"]) == {"c", "i"}
        assert definition.params_of_set({"next", "update"}) == {"c", "i"}

    def test_unknown_event_raises(self):
        definition = EventDefinition(UNSAFEITER_D)
        with pytest.raises(UnknownEventError):
            definition.params_of("nope")

    def test_explicit_parameter_superset_allowed(self):
        definition = EventDefinition({"e": {"x"}}, all_params={"x", "y"})
        assert definition.parameters == {"x", "y"}

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(UnknownParameterError):
            EventDefinition({"e": {"x", "z"}}, all_params={"x"})

    def test_container_protocol(self):
        definition = EventDefinition(UNSAFEITER_D)
        assert "create" in definition
        assert "nope" not in definition
        assert len(definition) == 3
        assert sorted(definition) == ["create", "next", "update"]


class TestConsistency:
    def test_consistent_event(self):
        definition = EventDefinition(UNSAFEITER_D)
        c1, i1 = make_objs("c1", "i1")
        event = ParametricEvent.of("create", c=c1, i=i1)
        assert definition.is_consistent(event)
        definition.check_consistent(event)  # no raise

    def test_missing_parameter_inconsistent(self):
        definition = EventDefinition(UNSAFEITER_D)
        event = ParametricEvent.of("create", c=Obj("c1"))
        assert not definition.is_consistent(event)
        with pytest.raises(InconsistentEventError):
            definition.check_consistent(event)

    def test_extra_parameter_inconsistent(self):
        definition = EventDefinition(UNSAFEITER_D)
        c1, i1 = make_objs("c1", "i1")
        event = ParametricEvent.of("update", c=c1, i=i1)
        assert not definition.is_consistent(event)
        with pytest.raises(InconsistentEventError):
            definition.check_consistent(event)

    def test_unknown_event_name_inconsistent(self):
        definition = EventDefinition(UNSAFEITER_D)
        assert not definition.is_consistent(ParametricEvent.of("nope", c=Obj("c")))
