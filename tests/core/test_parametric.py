"""Algorithm MONITOR (Figure 5) against the slicing semantics (Definition 7).

The theorem from [Chen & Roșu, TACAS'09] that the paper relies on: if M is
a monitor for P, then MONITOR(M) is a monitor for ΛX.P, i.e. for every
parameter instance theta the verdict equals P applied to the theta-slice.
These tests check that statement exhaustively on the paper's UNSAFEITER
property, both on the worked example and on randomized parametric traces.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.events import EventDefinition, ParametricEvent
from repro.core.monitor import run_monitor
from repro.core.parametric import AbstractParametricMonitor
from repro.core.params import Binding
from repro.core.slicing import informative_bindings, slice_trace
from repro.formalism.ere import compile_ere

from ..conftest import Obj

UNSAFEITER_DEF = EventDefinition({"create": {"c", "i"}, "update": {"c"}, "next": {"i"}})


def unsafeiter_template():
    return compile_ere(
        "update* create next* update+ next", {"create", "update", "next"}
    )


class TestPaperScenario:
    def test_match_reported_for_the_offending_instance(self):
        template = unsafeiter_template()
        monitor = AbstractParametricMonitor(template, UNSAFEITER_DEF)
        c1, i1 = Obj("c1"), Obj("i1")
        monitor.process(ParametricEvent.of("create", c=c1, i=i1))
        monitor.process(ParametricEvent.of("update", c=c1))
        updates = monitor.process(ParametricEvent.of("next", i=i1))
        assert updates[Binding.of(c=c1, i=i1)] == "match"

    def test_unrelated_iterator_not_matched(self):
        template = unsafeiter_template()
        monitor = AbstractParametricMonitor(template, UNSAFEITER_DEF)
        c1, i1, i2 = Obj("c1"), Obj("i1"), Obj("i2")
        monitor.process(ParametricEvent.of("create", c=c1, i=i1))
        monitor.process(ParametricEvent.of("update", c=c1))
        updates = monitor.process(ParametricEvent.of("next", i=i2))
        assert updates.get(Binding.of(c=c1, i=i1)) is None
        assert monitor.verdict(Binding.of(c=c1, i=i2)) != "match"

    def test_verdict_of_unknown_instance_uses_max_sub_instance(self):
        template = unsafeiter_template()
        monitor = AbstractParametricMonitor(template, UNSAFEITER_DEF)
        c1 = Obj("c1")
        monitor.process(ParametricEvent.of("update", c=c1))
        # <c1, fresh-iterator> was never seen; its slice equals <c1>'s.
        fresh = Obj("fresh")
        assert monitor.verdict(Binding.of(c=c1, i=fresh)) == monitor.verdict(
            Binding.of(c=c1)
        )

    def test_theta_table_grows_with_joins(self):
        template = unsafeiter_template()
        monitor = AbstractParametricMonitor(template, UNSAFEITER_DEF)
        c1, i1 = Obj("c1"), Obj("i1")
        monitor.process(ParametricEvent.of("update", c=c1))
        monitor.process(ParametricEvent.of("next", i=i1))
        # Theta must contain the join of the two compatible instances.
        assert Binding.of(c=c1, i=i1) in monitor.known_instances

    def test_consistency_checked(self):
        import pytest
        from repro.core.errors import InconsistentEventError

        template = unsafeiter_template()
        monitor = AbstractParametricMonitor(template, UNSAFEITER_DEF)
        with pytest.raises(InconsistentEventError):
            monitor.process(ParametricEvent.of("create", c=Obj("c1")))


# -- randomized equivalence with Definition 7 --------------------------------------

_OBJECTS = [Obj(f"v{i}") for i in range(3)]


@st.composite
def unsafeiter_traces(draw):
    length = draw(st.integers(min_value=0, max_value=7))
    trace = []
    for _ in range(length):
        kind = draw(st.sampled_from(["update", "next", "create"]))
        if kind == "update":
            trace.append(ParametricEvent.of("update", c=draw(st.sampled_from(_OBJECTS))))
        elif kind == "next":
            trace.append(ParametricEvent.of("next", i=draw(st.sampled_from(_OBJECTS))))
        else:
            trace.append(
                ParametricEvent.of(
                    "create",
                    c=draw(st.sampled_from(_OBJECTS)),
                    i=draw(st.sampled_from(_OBJECTS)),
                )
            )
    return trace


@settings(max_examples=60, deadline=None)
@given(unsafeiter_traces())
def test_figure5_equals_slice_then_monitor(trace):
    """(ΛX.P)(tau)(theta) == P(tau ↾ theta) for every informative theta."""
    template = unsafeiter_template()
    parametric = AbstractParametricMonitor(template, UNSAFEITER_DEF, check_consistency=False)
    parametric.process_trace(trace)
    for theta in informative_bindings(trace):
        expected = run_monitor(template, slice_trace(trace, theta))
        assert parametric.verdict(theta) == expected, (
            f"verdict mismatch for {theta!r} on {trace!r}"
        )
