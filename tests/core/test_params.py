"""Binding algebra tests (Definitions 3 and 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import IncompatibleBindingError
from repro.core.params import EMPTY_BINDING, Binding

from ..conftest import Obj, make_objs


class TestBasics:
    def test_empty_binding_is_bottom(self):
        assert len(EMPTY_BINDING) == 0
        assert not EMPTY_BINDING
        assert EMPTY_BINDING.domain == frozenset()

    def test_of_and_lookup(self):
        c1 = Obj("c1")
        binding = Binding.of(c=c1)
        assert binding["c"] is c1
        assert binding.get("c") is c1
        assert binding.get("missing") is None
        assert "c" in binding
        assert "i" not in binding
        assert list(binding) == ["c"]

    def test_domain_and_items_sorted_by_name(self):
        c1, i1 = make_objs("c1", "i1")
        binding = Binding.of(i=i1, c=c1)
        assert binding.domain == {"c", "i"}
        assert [name for name, _ in binding.items()] == ["c", "i"]

    def test_from_mapping(self):
        c1 = Obj("c1")
        assert Binding.from_mapping({"c": c1}) == Binding.of(c=c1)

    def test_repr_mentions_bottom(self):
        assert repr(EMPTY_BINDING) == "<⊥>"


class TestIdentitySemantics:
    def test_equal_bindings_same_objects(self):
        c1 = Obj("c1")
        assert Binding.of(c=c1) == Binding.of(c=c1)
        assert hash(Binding.of(c=c1)) == hash(Binding.of(c=c1))

    def test_distinct_objects_unequal_even_if_lookalike(self):
        assert Binding.of(c=Obj("same")) != Binding.of(c=Obj("same"))

    def test_different_domain_unequal(self):
        c1, i1 = make_objs("c1", "i1")
        assert Binding.of(c=c1) != Binding.of(c=c1, i=i1)

    def test_not_equal_to_other_types(self):
        assert Binding.of(c=Obj("c")) != "not a binding"


class TestCompatibilityAndJoin:
    def test_disjoint_domains_compatible(self):
        c1, i1 = make_objs("c1", "i1")
        a, b = Binding.of(c=c1), Binding.of(i=i1)
        assert a.is_compatible(b) and b.is_compatible(a)
        joined = a.join(b)
        assert joined == Binding.of(c=c1, i=i1)

    def test_agreeing_overlap_compatible(self):
        c1, i1 = make_objs("c1", "i1")
        a = Binding.of(c=c1)
        b = Binding.of(c=c1, i=i1)
        assert a.is_compatible(b)
        assert a.join(b) == b

    def test_disagreeing_overlap_incompatible(self):
        c1, c2 = make_objs("c1", "c2")
        a, b = Binding.of(c=c1), Binding.of(c=c2)
        assert not a.is_compatible(b)
        assert a.try_join(b) is None
        with pytest.raises(IncompatibleBindingError):
            a.join(b)

    def test_join_with_bottom_is_identity(self):
        c1 = Obj("c1")
        binding = Binding.of(c=c1)
        assert binding.join(EMPTY_BINDING) == binding
        assert EMPTY_BINDING.join(binding) == binding

    def test_join_is_least_upper_bound(self):
        c1, i1, m1 = make_objs("c1", "i1", "m1")
        a = Binding.of(c=c1, m=m1)
        b = Binding.of(c=c1, i=i1)
        joined = a.join(b)
        assert a.is_less_informative(joined)
        assert b.is_less_informative(joined)
        assert joined.domain == {"c", "i", "m"}


class TestInformativeness:
    def test_bottom_below_everything(self):
        binding = Binding.of(c=Obj("c1"))
        assert EMPTY_BINDING.is_less_informative(binding)
        assert not binding.is_less_informative(EMPTY_BINDING)

    def test_reflexive(self):
        binding = Binding.of(c=Obj("c1"))
        assert binding.is_less_informative(binding)
        assert not binding.is_strictly_less_informative(binding)

    def test_strictness(self):
        c1, i1 = make_objs("c1", "i1")
        small = Binding.of(c=c1)
        large = Binding.of(c=c1, i=i1)
        assert small.is_strictly_less_informative(large)
        assert not large.is_strictly_less_informative(small)

    def test_value_mismatch_not_less_informative(self):
        c1, c2 = make_objs("c1", "c2")
        assert not Binding.of(c=c1).is_less_informative(Binding.of(c=c2))


class TestRestrictAndSubBindings:
    def test_restrict(self):
        c1, i1 = make_objs("c1", "i1")
        binding = Binding.of(c=c1, i=i1)
        assert binding.restrict({"c"}) == Binding.of(c=c1)
        assert binding.restrict({"c", "zzz"}) == Binding.of(c=c1)
        assert binding.restrict(()) == EMPTY_BINDING

    def test_sub_bindings_count(self):
        c1, i1 = make_objs("c1", "i1")
        binding = Binding.of(c=c1, i=i1)
        subs = list(binding.sub_bindings())
        assert len(subs) == 4
        assert subs[0] == EMPTY_BINDING
        assert binding in subs

    def test_proper_sub_bindings_exclude_self(self):
        c1, i1 = make_objs("c1", "i1")
        binding = Binding.of(c=c1, i=i1)
        subs = list(binding.sub_bindings(proper=True))
        assert binding not in subs
        assert len(subs) == 3


# -- property-based lattice laws ------------------------------------------------

_NAMES = ("a", "b", "c")
_OBJECTS = [Obj(f"v{i}") for i in range(4)]


@st.composite
def bindings(draw):
    pairs = {}
    for name in _NAMES:
        if draw(st.booleans()):
            pairs[name] = draw(st.sampled_from(_OBJECTS))
    return Binding(pairs.items())


@given(bindings(), bindings())
def test_compatibility_is_symmetric(a, b):
    assert a.is_compatible(b) == b.is_compatible(a)


@given(bindings(), bindings())
def test_join_is_commutative(a, b):
    assert a.try_join(b) == b.try_join(a)


@given(bindings())
def test_join_is_idempotent(a):
    assert a.try_join(a) == a


@given(bindings(), bindings(), bindings())
def test_join_is_associative_when_defined(a, b, c):
    ab = a.try_join(b)
    bc = b.try_join(c)
    if ab is not None and bc is not None:
        left = ab.try_join(c)
        right = a.try_join(bc)
        assert left == right


@given(bindings(), bindings())
def test_join_dominates_both_operands(a, b):
    joined = a.try_join(b)
    if joined is not None:
        assert a.is_less_informative(joined)
        assert b.is_less_informative(joined)


@given(bindings(), bindings())
def test_less_informative_antisymmetric(a, b):
    if a.is_less_informative(b) and b.is_less_informative(a):
        assert a == b


@given(bindings(), bindings(), bindings())
def test_less_informative_transitive(a, b, c):
    if a.is_less_informative(b) and b.is_less_informative(c):
        assert a.is_less_informative(c)
