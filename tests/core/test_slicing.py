"""Trace slicing tests (Definition 6) including the paper's worked example."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.events import EventDefinition, ParametricEvent
from repro.core.params import EMPTY_BINDING, Binding
from repro.core.slicing import all_slices, informative_bindings, slice_trace

from ..conftest import Obj


def paper_trace():
    """"update<c1> update<c2> create<c1,i1> next<i1>" from Section 2."""
    c1, c2, i1 = Obj("c1"), Obj("c2"), Obj("i1")
    trace = [
        ParametricEvent.of("update", c=c1),
        ParametricEvent.of("update", c=c2),
        ParametricEvent.of("create", c=c1, i=i1),
        ParametricEvent.of("next", i=i1),
    ]
    return trace, c1, c2, i1


class TestPaperExample:
    """The slices worked out below Definition 6."""

    def test_slice_for_c2(self):
        trace, c1, c2, i1 = paper_trace()
        assert slice_trace(trace, Binding.of(c=c2)) == ["update"]

    def test_slice_for_c1(self):
        trace, c1, c2, i1 = paper_trace()
        assert slice_trace(trace, Binding.of(c=c1)) == ["update"]

    def test_slice_for_c1_i1(self):
        trace, c1, c2, i1 = paper_trace()
        assert slice_trace(trace, Binding.of(c=c1, i=i1)) == ["update", "create", "next"]

    def test_slice_for_i1(self):
        trace, c1, c2, i1 = paper_trace()
        assert slice_trace(trace, Binding.of(i=i1)) == ["next"]

    def test_slice_for_bottom_is_empty(self):
        trace, *_ = paper_trace()
        assert slice_trace(trace, EMPTY_BINDING) == []

    def test_more_informative_events_are_discarded(self):
        """Crucial per the paper: the slice for <c1> must NOT contain create."""
        trace, c1, c2, i1 = paper_trace()
        assert "create" not in slice_trace(trace, Binding.of(c=c1))


class TestInformativeBindings:
    def test_contains_bottom_and_event_bindings(self):
        trace, c1, c2, i1 = paper_trace()
        known = informative_bindings(trace)
        assert EMPTY_BINDING in known
        assert Binding.of(c=c1) in known
        assert Binding.of(c=c2) in known
        assert Binding.of(i=i1) in known
        assert Binding.of(c=c1, i=i1) in known

    def test_closed_under_compatible_joins(self):
        trace, c1, c2, i1 = paper_trace()
        known = informative_bindings(trace)
        # <c2> and <i1> are compatible (disjoint), so their join must appear.
        assert Binding.of(c=c2, i=i1) in known

    def test_all_slices_covers_informative_set(self):
        trace, *_ = paper_trace()
        definition = EventDefinition({"create": {"c", "i"}, "update": {"c"}, "next": {"i"}})
        table = all_slices(trace, definition)
        assert set(table) == informative_bindings(trace)


# -- property-based laws -----------------------------------------------------------

_OBJECTS = [Obj(f"v{i}") for i in range(3)]
_EVENTS = [("update", ("c",)), ("next", ("i",)), ("create", ("c", "i"))]


@st.composite
def parametric_traces(draw):
    length = draw(st.integers(min_value=0, max_value=6))
    trace = []
    for _ in range(length):
        name, params = draw(st.sampled_from(_EVENTS))
        binding = {param: draw(st.sampled_from(_OBJECTS)) for param in params}
        trace.append(ParametricEvent(name, binding))
    return trace


@st.composite
def theta_bindings(draw):
    pairs = {}
    for name in ("c", "i"):
        if draw(st.booleans()):
            pairs[name] = draw(st.sampled_from(_OBJECTS))
    return Binding(pairs.items())


@given(parametric_traces(), theta_bindings())
def test_slice_events_all_less_informative(trace, theta):
    sliced = slice_trace(trace, theta)
    relevant = [e.name for e in trace if e.binding.is_less_informative(theta)]
    assert sliced == relevant


@given(parametric_traces(), theta_bindings(), theta_bindings())
def test_slice_monotone_in_theta(trace, small, large):
    """theta ⊑ theta' implies slice(theta) is a subsequence of slice(theta')."""
    if not small.is_less_informative(large):
        return
    small_slice = slice_trace(trace, small)
    large_slice = iter(slice_trace(trace, large))
    # subsequence check
    for event in small_slice:
        for candidate in large_slice:
            if candidate == event:
                break
        else:
            raise AssertionError(f"{small_slice} not a subsequence for {large!r}")


@given(parametric_traces())
def test_slicing_distributes_over_concatenation(trace):
    """tau1 tau2 ↾ theta == (tau1 ↾ theta)(tau2 ↾ theta) for every theta."""
    split = len(trace) // 2
    head, tail = trace[:split], trace[split:]
    for theta in informative_bindings(trace):
        assert slice_trace(trace, theta) == slice_trace(head, theta) + slice_trace(
            tail, theta
        )
