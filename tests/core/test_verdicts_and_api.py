"""Small-surface coverage: verdict helpers and the public package API."""

from __future__ import annotations

import pytest

from repro.core import verdicts


class TestVerdicts:
    def test_constants(self):
        assert verdicts.MATCH == "match"
        assert verdicts.FAIL == "fail"
        assert verdicts.UNKNOWN == "?"
        assert verdicts.VIOLATION == "violation"
        assert verdicts.ERROR == "error"

    def test_normalize_goal_string(self):
        assert verdicts.normalize_goal("match") == frozenset({"match"})

    def test_normalize_goal_iterable(self):
        assert verdicts.normalize_goal(["match", "fail"]) == frozenset(
            {"match", "fail"}
        )

    def test_default_goals_cover_conventions(self):
        assert {"match", "fail", "error", "violation"} <= set(verdicts.DEFAULT_GOALS)


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__

    def test_subpackage_exports(self):
        import repro.core as core
        import repro.formalism as formalism
        import repro.instrument as instrument
        import repro.properties as properties
        import repro.runtime as runtime
        import repro.spec as spec
        import repro.bench as bench

        for module in (core, formalism, instrument, properties, runtime, spec, bench):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_engine_misc_api(self):
        from repro import MonitoringEngine, compile_spec
        from repro.core.params import Binding

        from ..conftest import Obj

        spec = compile_spec(
            "P(x) {\n event e(x)\n ere: e e\n @match\n}"
        )
        engine = MonitoringEngine(spec, gc="none")
        x1 = Obj("x1")
        engine.emit_binding("e", Binding.of(x=x1))
        assert engine.total_live_monitors() == 1
        live = engine.runtimes[0].live_instances()
        assert len(live) == 1
        assert live[0].params["x"].get() is x1

    def test_systems_table(self):
        from repro import SYSTEMS

        assert SYSTEMS["rv"] == ("coenable", "lazy")
        assert SYSTEMS["mop"] == ("alldead", "lazy")
        assert SYSTEMS["tm"] == ("statebased", "eager")

    def test_all_properties_registry(self):
        from repro import ALL_PROPERTIES, EVALUATED_PROPERTIES

        assert len(ALL_PROPERTIES) == 10
        assert len(EVALUATED_PROPERTIES) == 5
        assert all(prop.key in ALL_PROPERTIES for prop in EVALUATED_PROPERTIES)

    def test_property_str(self):
        from repro.properties import HASNEXT

        assert str(HASNEXT) == "HASNEXT"
        assert "Iterator" in HASNEXT.description
