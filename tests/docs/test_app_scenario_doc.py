"""docs/app-scenario.md must mirror the live route and knob tables.

`repro.app.server.ROUTES` is the single source of truth for the route
map; `DriverConfig` for the driver knobs.  The doc's tables are parsed
and asserted against both, so the scenario documentation can never
drift from the code the way hand-maintained route lists do.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

from repro.app import DriverConfig
from repro.app.server import ROUTES
from repro.properties import CATALOGUE

DOC = Path(__file__).resolve().parents[2] / "docs" / "app-scenario.md"

ROUTE_ROW = re.compile(
    r"^\|\s*`(?P<path>/[a-z]*)`\s*\|\s*`(?P<properties>[a-z, ]+)`\s*\|"
)
KNOB_ROW = re.compile(
    r"^\|\s*`(?P<name>[a-z_]+)`\s*\|\s*(?P<default>[0-9.]+)\s*\|"
)


def parse_route_table() -> dict[str, tuple[str, ...]]:
    rows = {}
    for line in DOC.read_text().splitlines():
        match = ROUTE_ROW.match(line.strip())
        if match:
            rows[match["path"]] = tuple(
                key.strip() for key in match["properties"].split(",")
            )
    return rows


def test_route_table_matches_server_routes():
    documented = parse_route_table()
    assert documented == {
        route.path: route.properties for route in ROUTES
    }


def test_route_table_keys_are_catalogue_keys():
    for path, keys in parse_route_table().items():
        for key in keys:
            assert key in CATALOGUE, (path, key)


def test_knob_table_matches_driver_config():
    documented = {}
    for line in DOC.read_text().splitlines():
        match = KNOB_ROW.match(line.strip())
        if match:
            documented[match["name"]] = float(match["default"])
    fields = {
        field.name: field.default for field in dataclasses.fields(DriverConfig)
    }
    assert documented == {
        name: float(default) for name, default in fields.items()
    }


def test_doc_mentions_the_bench_artifact():
    text = DOC.read_text()
    assert "BENCH_app.json" in text
    assert "overhead_x" in text
    assert "live_vs_replay" in text
