"""The generated-source excerpts in docs/dispatch-kernels.md are real.

Every python code fence in the page that shows generated kernel code
(anything that is not the `import`-ing usage example) must appear
*verbatim* — byte for byte, indentation included — in the module
`repro.spec.codegen` actually generates for UNSAFEITER today.  A codegen
change that reshapes the emitted source must update the documentation in
the same commit, or this test points at the drifted excerpt.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.spec.codegen import kernel_source_for

PAGE = Path(__file__).resolve().parents[2] / "docs" / "dispatch-kernels.md"
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def generated_source() -> str:
    engine = MonitoringEngine(
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        gc="coenable",
        dispatch="codegen",
    )
    prop = next(p for p in engine.properties if p is not None)
    return kernel_source_for(prop)


def test_documented_excerpts_match_generated_source():
    blocks = FENCE.findall(PAGE.read_text())
    assert blocks, "dispatch-kernels.md has no python code fences"
    excerpts = [block for block in blocks if "import" not in block]
    assert len(excerpts) >= 4, "expected the four generated-source excerpts"
    source = generated_source()
    for excerpt in excerpts:
        assert excerpt.rstrip("\n") in source, (
            "doc excerpt drifted from the generated source:\n" + excerpt
        )


def test_doc_names_the_real_entry_points():
    text = PAGE.read_text()
    for needle in (
        "kernel_source_for",
        "shared_kernel_cache",
        "dispatch=\"codegen\"",
        "codegen_kernels_dump.py",
    ):
        assert needle in text, needle
