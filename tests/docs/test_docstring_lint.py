"""Tier-1 mirror of the CI docstring gate (tools/check_docstrings.py).

``help()`` on the public API surface — Engine, MonitorService,
PropertyRegistry, DurableEngine, the live instrumentation entry points —
must stay usable: every public module/class/method/function on the
protected modules carries a docstring.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO / "tools" / "check_docstrings.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_public_api_docstrings_complete():
    checker = load_checker()
    findings: list[str] = []
    for target in checker.DEFAULT_TARGETS:
        findings.extend(checker.check_file(REPO / target))
    assert not findings, "\n".join(findings)


def test_default_targets_exist():
    checker = load_checker()
    for target in checker.DEFAULT_TARGETS:
        assert (REPO / target).exists(), target


def test_help_surface_smoke():
    """The flagship classes expose docstrings through the import surface."""
    import repro

    for name in ("MonitoringEngine", "MonitorService", "PropertyRegistry",
                 "DurableEngine", "LiveSession", "TraceWeaver", "emits"):
        member = getattr(repro, name)
        assert (member.__doc__ or "").strip(), name
