"""Every file pointer in the docs pages must exist in the repository.

The docs/ suite maps paper concepts to concrete files; a moved or
renamed module must update its docs pointer in the same change.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_PAGES = sorted((REPO / "docs").glob("*.md"))

#: Repo-relative file paths inside backticks, e.g. `src/repro/core/events.py`.
POINTER = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs|tools)/[A-Za-z0-9_/.-]+\.[a-z]+)`"
)
#: Cross-page markdown links, e.g. [text](paper-mapping.md#anchor).
PAGE_LINK = re.compile(r"\]\(([a-z-]+\.md)(?:#[a-z0-9-]+)?\)")


def pointers(page: Path) -> list[str]:
    return POINTER.findall(page.read_text())


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_docs_exist_and_have_pointers(page: Path):
    found = pointers(page)
    assert found, f"{page.name} names no repository files"
    missing = [pointer for pointer in found if not (REPO / pointer).exists()]
    assert not missing, f"{page.name} points at missing files: {missing}"


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_cross_page_links_resolve(page: Path):
    for target in PAGE_LINK.findall(page.read_text()):
        assert (REPO / "docs" / target).exists(), f"{page.name} -> {target}"


def test_expected_pages_present():
    names = {page.name for page in DOC_PAGES}
    assert {"architecture.md", "paper-mapping.md", "gc-strategies.md"} <= names
