"""The documentation's metric table must mirror the telemetry catalogue.

``repro.obs.catalogue.METRICS`` is the single source of truth for every
metric the plane emits; the human-readable table lives in
``docs/observability.md``.  This test parses the markdown table and
asserts name set, kind, label tuple, emitting layer, and help text
against the live catalogue — so the two can never drift.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.catalogue import METRICS

DOCS = Path(__file__).resolve().parents[2] / "docs"

ROW = re.compile(
    r"^\|\s*`(?P<name>repro_[a-z_]+)`\s*\|\s*(?P<kind>counter|gauge|histogram)"
    r"\s*\|\s*(?:`(?P<labels>[a-z_, ]+)`)?\s*\|\s*(?P<layer>[a-z]+)\s*\|\s*"
    r"(?P<help>[^|]+?)\s*\|$"
)


def parse_table() -> dict[str, dict]:
    rows: dict[str, dict] = {}
    for line in (DOCS / "observability.md").read_text().splitlines():
        match = ROW.match(line.strip())
        if match:
            rows[match["name"]] = match.groupdict()
    return rows


def test_table_names_equal_catalogue():
    assert set(parse_table()) == set(METRICS)


def test_table_rows_match_catalogue():
    for name, row in parse_table().items():
        spec = METRICS[name]
        assert row["kind"] == spec.kind, name
        documented_labels = (
            tuple(part.strip() for part in row["labels"].split(","))
            if row["labels"]
            else ()
        )
        assert documented_labels == spec.labels, name
        assert row["layer"] == spec.layer, name
        assert row["help"] == spec.help, name


def test_catalogue_names_follow_prometheus_conventions():
    for name, spec in METRICS.items():
        assert re.fullmatch(r"repro_[a-z0-9_]+", name), name
        if spec.kind == "counter":
            assert name.endswith("_total"), name
        else:
            assert not name.endswith("_total"), name
        if spec.kind == "histogram":
            assert len(spec.buckets) >= 2, name
            assert list(spec.buckets) == sorted(set(spec.buckets)), name
