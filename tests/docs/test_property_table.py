"""The documentation's property table must mirror the catalogue.

``repro.properties.CATALOGUE`` is the single source of truth for the
shipped property set; the human-readable table lives in
``docs/architecture.md``.  This test parses the markdown table and
asserts key set, titles, parameter sets, formalisms, and family
membership against the live catalogue — so the two can never drift the
way the old README property list did.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.properties import (
    ALL_PROPERTIES,
    CATALOGUE,
    EVALUATED_PROPERTIES,
    LIVE_PROPERTIES,
    PROTOCOL_PROPERTIES,
)

DOCS = Path(__file__).resolve().parents[2] / "docs"

ROW = re.compile(
    r"^\|\s*`(?P<key>[a-z_]+)`\s*\|\s*(?P<title>[A-Z]+)\s*\|\s*"
    r"`(?P<params>[a-z, ]+)`\s*\|\s*(?P<formalisms>[a-z+]+)\s*\|\s*"
    r"(?P<family>evaluated|paper|live|protocol)\s*\|$"
)


def parse_table() -> dict[str, dict]:
    rows: dict[str, dict] = {}
    for line in (DOCS / "architecture.md").read_text().splitlines():
        match = ROW.match(line.strip())
        if match:
            rows[match["key"]] = match.groupdict()
    return rows


def test_table_keys_equal_catalogue():
    assert set(parse_table()) == set(CATALOGUE)


def test_table_rows_match_compiled_properties():
    evaluated = {prop.key for prop in EVALUATED_PROPERTIES}
    for key, row in parse_table().items():
        prop = CATALOGUE[key]
        spec = prop.make()
        assert row["title"] == prop.title, key
        documented_params = {p.strip() for p in row["params"].split(",")}
        assert documented_params == set(spec.definition.parameters), key
        documented_formalisms = row["formalisms"].split("+")
        assert documented_formalisms == [
            compiled.formalism for compiled in spec.properties
        ], key
        if key in evaluated:
            expected_family = "evaluated"
        elif key in ALL_PROPERTIES:
            expected_family = "paper"
        elif key in LIVE_PROPERTIES:
            expected_family = "live"
        else:
            expected_family = "protocol"
        assert row["family"] == expected_family, key


def test_families_partition_catalogue():
    families = (set(ALL_PROPERTIES), set(LIVE_PROPERTIES),
                set(PROTOCOL_PROPERTIES))
    assert set().union(*families) == set(CATALOGUE)
    for index, family in enumerate(families):
        for other in families[index + 1:]:
            assert not family & other
