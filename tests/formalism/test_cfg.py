"""CFG plugin tests: grammar handling, Earley monitoring, verdicts."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FormalismError, SpecSyntaxError, UnknownEventError
from repro.core.monitor import run_monitor
from repro.formalism.cfg import CFGTemplate, Grammar, compile_cfg, parse_cfg
from repro.formalism.earley import EarleyRecognizer

SAFELOCK = "S -> S begin S end | S acquire S release | epsilon"


class TestParseCfg:
    def test_figure4_grammar(self):
        grammar = parse_cfg(SAFELOCK)
        assert grammar.start == "S"
        assert grammar.nonterminals == {"S"}
        assert grammar.terminals == {"begin", "end", "acquire", "release"}
        assert () in grammar.productions["S"]

    def test_first_lhs_is_start(self):
        grammar = parse_cfg("A -> B\nB -> x")
        assert grammar.start == "A"

    def test_multiline_and_pipe(self):
        grammar = parse_cfg("S -> a S\nS -> epsilon")
        assert len(grammar.productions["S"]) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "S",
            "-> a",
            "S -> a epsilon",   # epsilon mixed with symbols
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SpecSyntaxError):
            parse_cfg(bad)


class TestGrammarReduction:
    def test_unproductive_symbols_removed(self):
        grammar = parse_cfg("S -> a | B\nB -> B b")  # B never terminates
        reduced = grammar.reduced()
        assert "B" not in reduced.nonterminals

    def test_unreachable_symbols_removed(self):
        grammar = parse_cfg("S -> a\nC -> b")
        reduced = grammar.reduced()
        assert "C" not in reduced.nonterminals

    def test_empty_language_rejected(self):
        with pytest.raises(FormalismError):
            parse_cfg("S -> S a").reduced()

    def test_generate_oracle(self):
        grammar = parse_cfg("S -> a S b | epsilon")
        words = grammar.generate(4)
        assert () in words
        assert ("a", "b") in words
        assert ("a", "a", "b", "b") in words
        assert ("a", "b", "a", "b") not in words


class TestEarleyRecognizer:
    def balanced(self) -> EarleyRecognizer:
        grammar = parse_cfg("S -> a S b | epsilon").reduced()
        return EarleyRecognizer(
            dict(grammar.productions), grammar.start, grammar.terminals
        )

    def test_empty_word_accepted_for_nullable_start(self):
        assert self.balanced().accepts()

    def test_balanced_words(self):
        recognizer = self.balanced()
        assert recognizer.recognize(["a", "a", "b", "b"])

    def test_prefix_not_accepted_but_viable(self):
        recognizer = self.balanced()
        recognizer.feed("a")
        assert not recognizer.accepts()
        assert not recognizer.is_dead()

    def test_dead_prefix(self):
        recognizer = self.balanced()
        recognizer.feed("b")
        assert recognizer.is_dead()

    def test_clone_independence(self):
        recognizer = self.balanced()
        recognizer.feed("a")
        copy = recognizer.clone()
        copy.feed("b")
        assert copy.accepts()
        assert not recognizer.accepts()
        assert recognizer.position == 1

    def test_ambiguous_grammar(self):
        grammar = parse_cfg("S -> S S | a").reduced()
        recognizer = EarleyRecognizer(
            dict(grammar.productions), grammar.start, grammar.terminals
        )
        assert recognizer.recognize(["a", "a", "a"])

    def test_nullable_chains(self):
        grammar = parse_cfg("S -> A B\nA -> epsilon\nB -> b | epsilon").reduced()
        recognizer = EarleyRecognizer(
            dict(grammar.productions), grammar.start, grammar.terminals
        )
        assert recognizer.accepts()  # epsilon in the language
        recognizer.feed("b")
        assert recognizer.accepts()


class TestCfgMonitor:
    def test_safelock_walkthrough(self):
        template = compile_cfg(SAFELOCK)
        assert run_monitor(template, []) == "match"
        assert run_monitor(template, ["acquire"]) == "?"
        assert run_monitor(template, ["acquire", "release"]) == "match"
        assert run_monitor(template, ["begin", "acquire", "release", "end"]) == "match"
        assert run_monitor(template, ["begin", "acquire", "end"]) == "fail"
        assert run_monitor(template, ["release"]) == "fail"

    def test_fail_is_absorbing_and_dead(self):
        monitor = compile_cfg(SAFELOCK).create()
        monitor.step("release")
        assert monitor.is_dead()
        assert monitor.step("acquire") == "fail"

    def test_clone_is_independent(self):
        monitor = compile_cfg(SAFELOCK).create()
        monitor.step("acquire")
        copy = monitor.clone()
        copy.step("release")
        assert copy.verdict() == "match"
        assert monitor.verdict() == "?"

    def test_alphabet_event_not_in_grammar_fails(self):
        template = compile_cfg(SAFELOCK, alphabet={"begin", "end", "acquire", "release", "noise"})
        assert run_monitor(template, ["noise"]) == "fail"

    def test_event_outside_alphabet_raises(self):
        monitor = compile_cfg(SAFELOCK).create()
        with pytest.raises(UnknownEventError):
            monitor.step("zzz")

    def test_alphabet_must_cover_terminals(self):
        with pytest.raises(FormalismError):
            compile_cfg(SAFELOCK, alphabet={"begin"})

    def test_membership_matches_generate_oracle(self):
        grammar = parse_cfg(SAFELOCK)
        template = compile_cfg(SAFELOCK)
        words = grammar.generate(4)
        alphabet = sorted(template.alphabet)
        for length in range(5):
            for word in itertools.product(alphabet, repeat=length):
                expected = word in words
                verdict = run_monitor(template, word)
                assert (verdict == "match") == expected, word

    def test_fail_is_exact_for_reduced_grammar(self):
        """fail iff NO extension (up to a bound) reaches match."""
        template = compile_cfg(SAFELOCK)
        grammar = parse_cfg(SAFELOCK)
        words = grammar.generate(6)
        alphabet = sorted(template.alphabet)
        for length in range(4):
            for word in itertools.product(alphabet, repeat=length):
                verdict = run_monitor(template, word)
                has_extension = any(
                    candidate[: len(word)] == word for candidate in words
                )
                if verdict == "fail":
                    assert not has_extension, word
                elif has_extension:
                    assert verdict in ("match", "?"), word

    def test_state_gc_unsupported(self):
        template = compile_cfg(SAFELOCK)
        assert template.supports_state_gc is False


class TestConservativeGoals:
    """Non-{match} goals fall back to never-prune families (see SAFELOCK's
    @fail handler and the module docstring)."""

    def test_coenable_for_fail_goal_is_true_formula(self):
        template = compile_cfg(SAFELOCK)
        families = template.coenable_sets(frozenset({"fail"}))
        for event in template.alphabet:
            assert frozenset() in families[event]

    def test_enable_for_fail_goal_allows_everything(self):
        template = compile_cfg(SAFELOCK)
        families = template.enable_sets(frozenset({"fail"}))
        for event in template.alphabet:
            assert frozenset() in families[event]
            assert frozenset(template.alphabet) in families[event]


# -- property-based: Earley vs generate oracle on random balanced traces -----------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["begin", "end", "acquire", "release"]), max_size=8))
def test_safelock_monitor_never_crashes_and_is_consistent(trace):
    template = compile_cfg(SAFELOCK)
    monitor = template.create()
    last = monitor.verdict()
    seen_fail = False
    for event in trace:
        last = monitor.step(event)
        if seen_fail:
            assert last == "fail"  # fail is absorbing
        seen_fail = seen_fail or last == "fail"
    # A balanced-so-far prefix is 'match'; verify against a direct counter.
    depth = 0
    balanced = True
    stack = []
    for event in trace:
        if event in ("begin", "acquire"):
            stack.append(event)
        else:
            expected = "begin" if event == "end" else "acquire"
            if not stack or stack.pop() != expected:
                balanced = False
                break
    if balanced and not stack:
        assert last == "match" or not trace
    del depth
