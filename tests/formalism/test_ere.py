"""ERE plugin tests: parsing, derivatives, DFA construction, minimization."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FormalismError, SpecSyntaxError
from repro.core.monitor import run_monitor
from repro.formalism.ere import (
    EMPTY,
    EPSILON,
    complement,
    compile_ere,
    concat,
    derivative,
    ere_to_fsm,
    format_ere,
    intersect,
    nullable,
    optional,
    parse_ere,
    plus,
    star,
    symbol,
    symbols_of,
)


def accepts(expr, word) -> bool:
    """Reference semantics: iterated derivatives + nullability."""
    for event in word:
        expr = derivative(expr, event)
    return nullable(expr)


class TestSmartConstructors:
    def test_concat_unit_and_absorber(self):
        a = symbol("a")
        assert concat(a, EPSILON) is a
        assert concat(EPSILON, a) is a
        assert concat(a, EMPTY) is EMPTY
        assert concat() is EPSILON

    def test_union_dedup_and_unit(self):
        a, b = symbol("a"), symbol("b")
        assert union_size(parse_ere("a | a")) == 0  # collapses to the symbol
        assert parse_ere("a | b") == parse_ere("b | a")
        assert parse_ere("a | a") == a
        del b

    def test_star_laws(self):
        a = symbol("a")
        assert star(star(a)) == star(a)
        assert star(EPSILON) is EPSILON
        assert star(EMPTY) is EPSILON

    def test_double_complement(self):
        a = symbol("a")
        assert complement(complement(a)) is a

    def test_plus_and_optional_desugar(self):
        a = symbol("a")
        assert plus(a) == concat(a, star(a))
        assert optional(a) == parse_ere("epsilon | a")

    def test_intersect_absorber(self):
        assert intersect(symbol("a"), EMPTY) is EMPTY
        assert intersect(symbol("a")) == symbol("a")


def union_size(expr) -> int:
    parts = getattr(expr, "parts", None)
    return len(parts) if isinstance(parts, frozenset) else 0


class TestParser:
    def test_paper_pattern(self):
        expr = parse_ere("update* create next* update+ next")
        assert symbols_of(expr) == {"update", "create", "next"}

    def test_precedence_star_tighter_than_concat(self):
        assert parse_ere("a b*") == concat(symbol("a"), star(symbol("b")))

    def test_precedence_concat_tighter_than_union(self):
        assert parse_ere("a b | c") == parse_ere("(a b) | c")

    def test_intersection_between_union_and_concat(self):
        assert parse_ere("a | b & c") == parse_ere("a | (b & c)")

    def test_parentheses(self):
        assert parse_ere("(a | b) c") != parse_ere("a | (b c)")

    def test_roundtrip_through_format(self):
        for text in ("a b* (c | d)+", "~(a b) & c*", "epsilon | a?"):
            expr = parse_ere(text)
            assert parse_ere(format_ere(expr)) == expr

    @pytest.mark.parametrize("bad", ["", "(a", "a)", "a |", "| a", "*", "a @ b", "~"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SpecSyntaxError):
            parse_ere(bad)


class TestDerivativeSemantics:
    def test_basic_words(self):
        expr = parse_ere("a b")
        assert accepts(expr, ["a", "b"])
        assert not accepts(expr, ["a"])
        assert not accepts(expr, ["b", "a"])

    def test_complement_flips_membership(self):
        expr = parse_ere("~(a b)")
        assert not accepts(expr, ["a", "b"])
        assert accepts(expr, ["a"])
        assert accepts(expr, [])

    def test_intersection(self):
        expr = parse_ere("(a | b)* & ~(b (a|b)*)")  # strings not starting with b
        assert accepts(expr, ["a", "b"])
        assert not accepts(expr, ["b", "a"])


class TestDfaConstruction:
    def test_dfa_equals_derivative_semantics_exhaustively(self):
        pattern = "update* create next* update+ next"
        alphabet = ("create", "next", "update")
        expr = parse_ere(pattern)
        template = compile_ere(pattern, alphabet)
        for length in range(6):
            for word in itertools.product(alphabet, repeat=length):
                expected = "match" if accepts(expr, word) else None
                verdict = run_monitor(template, word)
                if expected == "match":
                    assert verdict == "match", word
                else:
                    assert verdict in ("?", "fail"), word

    def test_dead_states_marked_fail(self):
        template = compile_ere("a b", {"a", "b"})
        assert run_monitor(template, ["b"]) == "fail"
        assert run_monitor(template, ["a", "b", "a"]) == "fail"

    def test_alphabet_must_cover_pattern(self):
        with pytest.raises(FormalismError):
            ere_to_fsm("a b", {"a"})

    def test_events_not_in_pattern_fail_the_match(self):
        template = compile_ere("a b", {"a", "b", "z"})
        assert run_monitor(template, ["a", "z"]) == "fail"

    def test_minimization_produces_small_machine(self):
        fsm = ere_to_fsm("a a | a a", {"a"})
        # match needs exactly two a's: states = start, one-a, match, dead.
        assert len(fsm.states) <= 4


# -- property-based: DFA vs derivative reference on random patterns ---------------

_ALPHABET = ("a", "b", "c")


@st.composite
def ere_exprs(draw, depth=0):
    if depth > 3:
        return symbol(draw(st.sampled_from(_ALPHABET)))
    kind = draw(
        st.sampled_from(
            ["sym", "sym", "eps", "concat", "union", "star", "plus", "opt", "inter", "compl"]
        )
    )
    if kind == "sym":
        return symbol(draw(st.sampled_from(_ALPHABET)))
    if kind == "eps":
        return EPSILON
    if kind == "concat":
        return concat(draw(ere_exprs(depth=depth + 1)), draw(ere_exprs(depth=depth + 1)))
    if kind == "union":
        return parse_ere(
            f"({format_ere(draw(ere_exprs(depth=depth + 1)))}) | "
            f"({format_ere(draw(ere_exprs(depth=depth + 1)))})"
        )
    if kind == "star":
        return star(draw(ere_exprs(depth=depth + 1)))
    if kind == "plus":
        return plus(draw(ere_exprs(depth=depth + 1)))
    if kind == "opt":
        return optional(draw(ere_exprs(depth=depth + 1)))
    if kind == "inter":
        return intersect(
            draw(ere_exprs(depth=depth + 1)), draw(ere_exprs(depth=depth + 1))
        )
    return complement(draw(ere_exprs(depth=depth + 1)))


@settings(max_examples=40, deadline=None)
@given(ere_exprs(), st.lists(st.sampled_from(_ALPHABET), max_size=6))
def test_dfa_agrees_with_derivatives(expr, word):
    template = compile_ere(expr, _ALPHABET)
    verdict = run_monitor(template, word)
    assert (verdict == "match") == accepts(expr, word)
