"""FSM plugin tests: validation, monitor semantics, analyses, parsing."""

from __future__ import annotations

import pytest

from repro.core.errors import FormalismError, SpecSyntaxError
from repro.core.monitor import run_monitor
from repro.formalism.fsm import (
    FAIL_SINK,
    FSM,
    FSMTemplate,
    before_sets,
    compile_fsm,
    parse_fsm,
    seeable_sets,
)

HASNEXT_TEXT = """
unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
more    [ hasnexttrue -> more  next -> unknown ]
none    [ hasnextfalse -> none  next -> error ]
error   [ ]
"""


def hasnext() -> FSMTemplate:
    return compile_fsm(HASNEXT_TEXT)


class TestValidation:
    def test_unknown_initial(self):
        with pytest.raises(FormalismError):
            FSM(states=("a",), alphabet=frozenset({"e"}), initial="b", transitions={})

    def test_transition_from_unknown_state(self):
        with pytest.raises(FormalismError):
            FSM(
                states=("a",),
                alphabet=frozenset({"e"}),
                initial="a",
                transitions={("b", "e"): "a"},
            )

    def test_transition_to_unknown_state(self):
        with pytest.raises(FormalismError):
            FSM(
                states=("a",),
                alphabet=frozenset({"e"}),
                initial="a",
                transitions={("a", "e"): "b"},
            )

    def test_transition_on_unknown_event(self):
        with pytest.raises(FormalismError):
            FSM(
                states=("a",),
                alphabet=frozenset({"e"}),
                initial="a",
                transitions={("a", "x"): "a"},
            )

    def test_verdict_for_unknown_state(self):
        with pytest.raises(FormalismError):
            FSM(
                states=("a",),
                alphabet=frozenset({"e"}),
                initial="a",
                transitions={},
                verdicts={"zzz": "match"},
            )


class TestMonitorSemantics:
    def test_figure1_walk(self):
        template = hasnext()
        assert run_monitor(template, []) == "unknown"
        assert run_monitor(template, ["hasnexttrue"]) == "more"
        assert run_monitor(template, ["hasnexttrue", "next"]) == "unknown"
        assert run_monitor(template, ["hasnextfalse"]) == "none"
        assert run_monitor(template, ["next"]) == "error"
        assert run_monitor(template, ["hasnextfalse", "next"]) == "error"

    def test_undefined_transition_goes_to_fail_sink(self):
        template = hasnext()
        # 'more' has no hasnextfalse transition in Figure 2.
        assert run_monitor(template, ["hasnexttrue", "hasnextfalse"]) == "fail"

    def test_fail_sink_is_absorbing_and_dead(self):
        monitor = hasnext().create()
        monitor.step("hasnexttrue")
        monitor.step("hasnextfalse")
        assert monitor.state == FAIL_SINK
        assert monitor.is_dead()
        assert monitor.step("next") == "fail"

    def test_clone_is_independent(self):
        monitor = hasnext().create()
        monitor.step("hasnexttrue")
        copy = monitor.clone()
        copy.step("next")
        assert monitor.verdict() == "more"
        assert copy.verdict() == "unknown"

    def test_error_state_is_inert(self):
        """error has no outgoing transitions: the verdict can only become
        fail — with goal semantics that makes it dead for monitoring."""
        fsm = parse_fsm(HASNEXT_TEXT)
        # error only reaches the sink; its verdicts differ (error vs fail) so
        # it is NOT inert, but the sink is.
        assert FAIL_SINK not in fsm.inert_states()


class TestAnalyses:
    def test_seeable_of_goal_state_contains_empty(self):
        fsm = parse_fsm(HASNEXT_TEXT)
        seeable = seeable_sets(fsm, frozenset({"error"}))
        assert frozenset() in seeable["error"]

    def test_seeable_of_unreachable_goal_is_empty(self):
        fsm = parse_fsm("a [ e -> b ]\nb [ ]")
        seeable = seeable_sets(fsm, frozenset({"nonexistent"}))
        assert all(not family for family in seeable.values())

    def test_before_sets_initial_contains_empty(self):
        fsm = parse_fsm(HASNEXT_TEXT)
        before = before_sets(fsm)
        assert frozenset() in before["unknown"]

    def test_fail_goal_uses_the_sink(self):
        fsm = parse_fsm("a [ e -> b ]\nb [ ]")
        template = FSMTemplate(fsm)
        coenable = template.coenable_sets(frozenset({"fail"}))
        # Any event can be followed by a sink-entering event.
        assert coenable["e"]

    def test_state_coenable_supported(self):
        template = hasnext()
        families = template.state_coenable_sets(frozenset({"error"}))
        assert families["error"] == frozenset()  # ∅ dropped: error is terminal
        assert families["unknown"]

    def test_categories_include_fail(self):
        assert "fail" in hasnext().categories


class TestParser:
    def test_first_state_is_initial(self):
        fsm = parse_fsm(HASNEXT_TEXT)
        assert fsm.initial == "unknown"
        assert fsm.states == ("unknown", "more", "none", "error")

    def test_commas_allowed(self):
        fsm = parse_fsm("a [ x -> b, y -> a ]\nb [ ]")
        assert fsm.successor("a", "x") == "b"
        assert fsm.successor("a", "y") == "a"

    def test_alphabet_may_be_widened(self):
        fsm = parse_fsm("a [ x -> a ]", alphabet={"x", "y"})
        assert fsm.alphabet == {"x", "y"}
        assert fsm.successor("a", "y") is None

    def test_alphabet_must_cover_mentioned_events(self):
        with pytest.raises(FormalismError):
            parse_fsm("a [ x -> a ]", alphabet={"y"})

    @pytest.mark.parametrize(
        "text",
        [
            "",                       # empty
            "a [ x -> ",              # unterminated arrow
            "a [ x b ]",              # missing arrow
            "a x -> b ]",             # missing bracket
            "a [ x -> b ] a [ ]",     # duplicate state
            "a [ x -> b  x -> a ]",   # duplicate transition
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(SpecSyntaxError):
            parse_fsm(text)
