"""Past-LTL plugin tests: parsing, semantics, FSM compilation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import FormalismError, SpecSyntaxError
from repro.core.monitor import run_monitor
from repro.formalism.ltl import (
    AlwaysPast,
    And,
    FalseConst,
    Implies,
    Not,
    OncePast,
    Or,
    Prev,
    Prop,
    Since,
    TrueConst,
    compile_ltl,
    format_ltl,
    ltl_to_fsm,
    parse_ltl,
    propositions_of,
)

ALPHABET = ("hasnexttrue", "hasnextfalse", "next")


def reference_eval(formula, trace, position):
    """Textbook recursive past-LTL semantics at ``position`` (0-based)."""
    if isinstance(formula, Prop):
        return trace[position] == formula.name
    if isinstance(formula, TrueConst):
        return True
    if isinstance(formula, FalseConst):
        return False
    if isinstance(formula, Not):
        return not reference_eval(formula.body, trace, position)
    if isinstance(formula, And):
        return reference_eval(formula.left, trace, position) and reference_eval(
            formula.right, trace, position
        )
    if isinstance(formula, Or):
        return reference_eval(formula.left, trace, position) or reference_eval(
            formula.right, trace, position
        )
    if isinstance(formula, Implies):
        return (not reference_eval(formula.left, trace, position)) or reference_eval(
            formula.right, trace, position
        )
    if isinstance(formula, Prev):
        return position > 0 and reference_eval(formula.body, trace, position - 1)
    if isinstance(formula, OncePast):
        return any(reference_eval(formula.body, trace, k) for k in range(position + 1))
    if isinstance(formula, AlwaysPast):
        return all(reference_eval(formula.body, trace, k) for k in range(position + 1))
    if isinstance(formula, Since):
        return any(
            reference_eval(formula.right, trace, k)
            and all(
                reference_eval(formula.left, trace, j)
                for j in range(k + 1, position + 1)
            )
            for k in range(position + 1)
        )
    raise AssertionError(formula)


def reference_verdict(formula, trace):
    """violation iff the formula is false at some step of the prefix."""
    for position in range(len(trace)):
        if not reference_eval(formula, trace, position):
            return "violation"
    return "?"


class TestParser:
    def test_paper_formula(self):
        formula = parse_ltl("[](next => (*)hasnexttrue)")
        assert isinstance(formula, AlwaysPast)
        assert isinstance(formula.body, Implies)
        assert isinstance(formula.body.right, Prev)
        assert propositions_of(formula) == {"next", "hasnexttrue"}

    def test_precedence_implies_weakest(self):
        formula = parse_ltl("a || b => c && d")
        assert isinstance(formula, Implies)
        assert isinstance(formula.left, Or)
        assert isinstance(formula.right, And)

    def test_since_binds_tighter_than_and(self):
        formula = parse_ltl("a S b && c")
        assert isinstance(formula, And)
        assert isinstance(formula.left, Since)

    def test_implies_right_associative(self):
        formula = parse_ltl("a => b => c")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_word_operators(self):
        assert parse_ltl("a and b") == parse_ltl("a && b")
        assert parse_ltl("a or b") == parse_ltl("a || b")
        assert parse_ltl("not a") == parse_ltl("!a")

    def test_constants(self):
        assert parse_ltl("true") == TrueConst()
        assert parse_ltl("false") == FalseConst()

    def test_roundtrip_through_format(self):
        for text in (
            "[](next => (*)hasnexttrue)",
            "<*>(a && b) S !c",
            "[*](a || (*)b)",
        ):
            formula = parse_ltl(text)
            assert parse_ltl(format_ltl(formula)) == formula

    @pytest.mark.parametrize("bad", ["", "(a", "a )", "=> a", "a &&", "a S", "[] "])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SpecSyntaxError):
            parse_ltl(bad)


class TestPaperSemantics:
    def template(self):
        return compile_ltl("[](next => (*)hasnexttrue)", ALPHABET)

    def test_immediate_next_violates(self):
        assert run_monitor(self.template(), ["next"]) == "violation"

    def test_guarded_next_ok(self):
        assert run_monitor(self.template(), ["hasnexttrue", "next"]) == "?"

    def test_double_next_violates(self):
        assert run_monitor(self.template(), ["hasnexttrue", "next", "next"]) == "violation"

    def test_hasnextfalse_then_next_violates(self):
        assert run_monitor(self.template(), ["hasnextfalse", "next"]) == "violation"

    def test_violation_is_absorbing(self):
        monitor = self.template().create()
        monitor.step("next")
        assert monitor.step("hasnexttrue") == "violation"
        assert monitor.is_dead()

    def test_empty_trace_is_unknown(self):
        assert run_monitor(self.template(), []) == "?"


class TestCompilation:
    def test_alphabet_must_cover_propositions(self):
        with pytest.raises(FormalismError):
            ltl_to_fsm("[](next => (*)hasnexttrue)", {"next"})

    def test_violation_states_exist(self):
        fsm = ltl_to_fsm("[] a", {"a", "b"})
        categories = {fsm.verdict_of(state) for state in fsm.states}
        assert "violation" in categories


# -- property-based: compiled FSM vs reference semantics ---------------------------


@st.composite
def ltl_formulas(draw, depth=0):
    if depth > 2:
        return Prop(draw(st.sampled_from(ALPHABET)))
    kind = draw(
        st.sampled_from(
            ["prop", "prop", "not", "and", "or", "implies", "prev", "once", "always", "since"]
        )
    )
    if kind == "prop":
        return Prop(draw(st.sampled_from(ALPHABET)))
    if kind == "not":
        return Not(draw(ltl_formulas(depth=depth + 1)))
    child = lambda: draw(ltl_formulas(depth=depth + 1))  # noqa: E731
    if kind == "and":
        return And(child(), child())
    if kind == "or":
        return Or(child(), child())
    if kind == "implies":
        return Implies(child(), child())
    if kind == "prev":
        return Prev(child())
    if kind == "once":
        return OncePast(child())
    if kind == "always":
        return AlwaysPast(child())
    return Since(child(), child())


@settings(max_examples=50, deadline=None)
@given(ltl_formulas(), st.lists(st.sampled_from(ALPHABET), max_size=6))
def test_compiled_fsm_matches_reference(formula, trace):
    template = compile_ltl(formula, ALPHABET)
    assert run_monitor(template, trace) == reference_verdict(formula, trace)
