"""Raw (user-defined) formalism plugin tests."""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import FormalismError
from repro.core.monitor import run_monitor
from repro.core.events import EventDefinition
from repro.core.parametric import AbstractParametricMonitor
from repro.formalism.raw import RawMonitor, RawTemplate, functional_template
from repro.runtime.engine import MonitoringEngine
from repro.spec.compiler import CompiledProperty
from repro.spec.ast import HandlerDecl

from ..conftest import Obj


def counter_template(**kwargs):
    """"Never more releases than acquires" as a pure transition function."""
    return functional_template(
        transition=lambda n, e: n + (1 if e == "acquire" else -1),
        verdict=lambda n: "violation" if n < 0 else "?",
        initial=0,
        alphabet={"acquire", "release"},
        categories={"violation"},
        **kwargs,
    )


class TestRawMonitor:
    def test_step_and_verdict(self):
        template = counter_template()
        assert run_monitor(template, ["acquire", "release"]) == "?"
        assert run_monitor(template, ["release"]) == "violation"
        assert run_monitor(template, ["acquire", "release", "release"]) == "violation"

    def test_clone_independence(self):
        monitor = counter_template().create()
        monitor.step("acquire")
        copy = monitor.clone()
        copy.step("release")
        copy.step("release")
        assert copy.verdict() == "violation"
        assert monitor.verdict() == "?"
        assert isinstance(copy, RawMonitor)

    def test_state_exposed(self):
        monitor = counter_template().create()
        monitor.step("acquire")
        assert monitor.state == 1


class TestRawTemplate:
    def test_categories_include_unknown(self):
        assert "?" in counter_template().categories
        assert "violation" in counter_template().categories

    def test_conservative_coenable_is_true_formula(self):
        families = counter_template().coenable_sets(frozenset({"violation"}))
        for family in families.values():
            assert frozenset() in family

    def test_conservative_enable_is_powerset(self):
        families = counter_template().enable_sets(frozenset({"violation"}))
        assert frozenset({"acquire", "release"}) in families["acquire"]
        assert frozenset() in families["acquire"]

    def test_user_supplied_families_win(self):
        template = counter_template(
            coenable={"acquire": frozenset({frozenset({"release"})})},
        )
        families = template.coenable_sets(frozenset({"violation"}))
        assert families["acquire"] == frozenset({frozenset({"release"})})
        # Unspecified events get the conservative default.
        assert frozenset() in families["release"]

    def test_family_validation(self):
        with pytest.raises(FormalismError):
            counter_template(coenable={"bogus": frozenset()})
        with pytest.raises(FormalismError):
            counter_template(
                coenable={"acquire": frozenset({frozenset({"bogus"})})}
            )

    def test_empty_alphabet_rejected(self):
        with pytest.raises(FormalismError):
            RawTemplate(factory=lambda: None, alphabet=())

    def test_factory_type_checked(self):
        template = RawTemplate(factory=lambda: object(), alphabet={"e"})
        with pytest.raises(FormalismError):
            template.create()

    def test_no_state_gc(self):
        assert counter_template().supports_state_gc is False


class TestRawInParametricStack:
    """Formalism independence end to end: the abstract algorithm and the
    production engine both host a raw template untouched."""

    def definition(self):
        return EventDefinition({"acquire": {"l"}, "release": {"l"}})

    def test_abstract_algorithm(self):
        from repro.core.events import ParametricEvent

        monitor = AbstractParametricMonitor(counter_template(), self.definition())
        l1, l2 = Obj("l1"), Obj("l2")
        monitor.process(ParametricEvent.of("acquire", l=l1))
        updates = monitor.process(ParametricEvent.of("release", l=l2))
        from repro.core.params import Binding

        assert updates[Binding.of(l=l2)] == "violation"
        assert monitor.verdict(Binding.of(l=l1)) == "?"

    def prop(self):
        return CompiledProperty(
            spec_name="Balance",
            formalism="raw",
            template=counter_template(),
            definition=self.definition(),
            goal=frozenset({"violation"}),
            handlers=(HandlerDecl("violation", None),),
        )

    def test_engine_hosts_raw_property(self):
        hits = []
        prop = self.prop()
        prop.on("violation", lambda n, c, b: hits.append(b))
        engine = MonitoringEngine(prop, gc="coenable")
        l1 = Obj("l1")
        engine.emit("acquire", l=l1)
        engine.emit("release", l=l1)
        engine.emit("release", l=l1)
        assert len(hits) == 1

    def test_conservative_gc_never_prunes(self):
        prop = self.prop()
        engine = MonitoringEngine(prop, gc="coenable")
        l1 = Obj("l1")
        engine.emit("acquire", l=l1)
        del l1
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("Balance")
        assert stats.monitors_flagged == 0  # conservative: never via coenable
