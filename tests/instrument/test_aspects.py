"""Aspect-weaving tests: advice positions, bindings, conditions, unweaving."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import ReproError
from repro.instrument.aspects import CallContext, Weaver, after_returning, before
from repro.runtime.engine import MonitoringEngine
from repro.spec import compile_spec


class Door:
    """A tiny target class to weave against."""

    def __init__(self):
        self.state = "closed"

    def open(self, who="someone"):
        self.state = "open"
        return True

    def close(self):
        self.state = "closed"
        return False


SPEC = """
DoorProtocol(d) {
  event opened(d)
  event closed(d)
  event openedtrue(d)
  ere: (opened closed)*
  @fail
}
"""


@pytest.fixture
def engine():
    return MonitoringEngine(compile_spec(SPEC), gc="none")


class TestWeaving:
    def test_before_advice_emits(self, engine):
        with Weaver(engine).weave(
            before(Door, "open", event="opened", bind={"d": "target"})
        ):
            door = Door()
            door.open()
        assert engine.stats_for("DoorProtocol").events == 1

    def test_after_returning_sees_result(self, engine):
        seen = []
        pointcut = after_returning(
            Door,
            "open",
            event="openedtrue",
            bind={"d": "target"},
            condition=lambda ctx: seen.append(ctx.result) or ctx.result is True,
        )
        with Weaver(engine).weave(pointcut):
            Door().open()
        assert seen == [True]
        assert engine.stats_for("DoorProtocol").events == 1

    def test_condition_filters(self, engine):
        pointcut = after_returning(
            Door,
            "close",
            event="closed",
            bind={"d": "target"},
            condition=lambda ctx: ctx.result is True,  # close returns False
        )
        with Weaver(engine).weave(pointcut):
            Door().close()
        assert engine.stats_for("DoorProtocol").events == 0

    def test_unweave_restores_original(self, engine):
        original = Door.open
        weaver = Weaver(engine).weave(
            before(Door, "open", event="opened", bind={"d": "target"})
        )
        assert Door.open is not original
        weaver.unweave()
        assert Door.open is original
        Door().open()
        assert engine.stats_for("DoorProtocol").events == 0

    def test_unweave_idempotent(self, engine):
        weaver = Weaver(engine).weave(
            before(Door, "open", event="opened", bind={"d": "target"})
        )
        weaver.unweave()
        weaver.unweave()

    def test_multiple_pointcuts_one_joinpoint(self, engine):
        pointcuts = [
            before(Door, "open", event="opened", bind={"d": "target"}),
            after_returning(
                Door,
                "open",
                event="openedtrue",
                bind={"d": "target"},
                condition=lambda ctx: ctx.result is True,
            ),
        ]
        with Weaver(engine).weave(pointcuts):
            Door().open()
        assert engine.stats_for("DoorProtocol").events == 2

    def test_return_value_passes_through(self, engine):
        with Weaver(engine).weave(
            before(Door, "open", event="opened", bind={"d": "target"})
        ):
            assert Door().open() is True

    def test_missing_method_rejected(self, engine):
        with pytest.raises(ReproError):
            Weaver(engine).weave(
                before(Door, "nonexistent", event="opened", bind={"d": "target"})
            )

    def test_unknown_events_silently_dropped(self, engine):
        """A woven join point may emit events no monitored spec declares."""
        with Weaver(engine).weave(
            before(Door, "open", event="who_is_this", bind={"d": "target"})
        ):
            Door().open()  # must not raise


class TestBindingSources:
    def test_target_binding(self, engine):
        captured = []
        engine_cb = MonitoringEngine(
            compile_spec(SPEC),
            gc="none",
            on_verdict=lambda p, c, m: None,
        )
        del engine_cb
        door = Door()
        with Weaver(engine).weave(
            before(
                Door,
                "open",
                event="opened",
                bind={"d": lambda ctx: captured.append(ctx.target) or ctx.target},
            )
        ):
            door.open()
        assert captured == [door]

    def test_argument_binding(self):
        context = CallContext(target="t", args=("a0", "a1"), kwargs={})
        pointcut = before(Door, "open", event="opened", bind={"d": "arg1"})
        assert pointcut.extract(context) == {"d": "a1"}

    def test_thread_binding(self):
        context = CallContext(target="t", args=(), kwargs={})
        pointcut = before(Door, "open", event="opened", bind={"d": "thread"})
        assert pointcut.extract(context)["d"] is threading.current_thread()

    def test_result_binding(self):
        context = CallContext(target="t", args=(), kwargs={}, result="r")
        pointcut = after_returning(Door, "open", event="opened", bind={"d": "result"})
        assert pointcut.extract(context) == {"d": "r"}

    def test_unknown_source_rejected(self):
        context = CallContext(target="t", args=(), kwargs={})
        pointcut = before(Door, "open", event="opened", bind={"d": "bogus"})
        with pytest.raises(ReproError):
            pointcut.extract(context)
