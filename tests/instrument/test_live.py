"""The live instrumentation layer: LiveBinding, TraceWeaver, LiveSession."""

from __future__ import annotations

import gc
import io
import sys

import pytest

from repro.core.errors import ReproError
from repro.instrument.live import (
    LiveBinding,
    LiveSession,
    TraceWeaver,
    active_sessions,
    emits,
    on_call,
    on_return,
)
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import read_trace, split_death_markers
from repro.service import MonitorService

from ..conftest import Obj

HASNEXT_SRC = """
HasNext(i) {
  event hasnexttrue(i)
  event next(i)
  ltl: [](next => (*)hasnexttrue)
  @violation "bad"
}
"""


# ---------------------------------------------------------------------------
# LiveBinding
# ---------------------------------------------------------------------------


class TestLiveBinding:
    def test_watch_and_death(self):
        binding = LiveBinding()
        token = Obj("a")
        key = id(token)
        binding.watch("i", token)
        assert binding.live_count == 1
        assert binding.drain() == {}
        del token
        gc.collect()
        assert binding.live_count == 0
        assert binding.drain() == {"i": {key}}
        assert binding.drain() == {}  # drained once

    def test_one_object_many_names(self):
        binding = LiveBinding()
        token = Obj("a")
        key = id(token)
        binding.watch("i", token)
        binding.watch("c", token)
        assert binding.live_count == 1
        del token
        gc.collect()
        assert binding.drain() == {"i": {key}, "c": {key}}

    def test_immortal_values_are_not_watched(self):
        binding = LiveBinding()
        binding.watch("i", 42)
        binding.watch("i", "interned")
        assert binding.live_count == 0
        assert binding.drain() == {}

    def test_rewatch_same_object_is_stable(self):
        binding = LiveBinding()
        token = Obj("a")
        for _ in range(3):
            binding.watch("i", token)
        assert binding.live_count == 1

    def test_coalesces_many_deaths(self):
        binding = LiveBinding()
        tokens = [Obj(str(n)) for n in range(5)]
        keys = {id(token) for token in tokens}
        for token in tokens:
            binding.watch("i", token)
        del token
        tokens.clear()
        gc.collect()
        assert binding.drain() == {"i": keys}


# ---------------------------------------------------------------------------
# Engine / service death injection
# ---------------------------------------------------------------------------


class TestNoteDeaths:
    def test_lazy_engine_is_noop(self):
        engine = MonitoringEngine(HASNEXT_SRC, gc="alldead", propagation="lazy")
        engine.note_deaths({"i": {123}})
        assert engine._pending_dead == []

    def test_eager_engine_queues_for_next_boundary(self):
        engine = MonitoringEngine(HASNEXT_SRC, gc="alldead", propagation="eager")
        token = Obj("i1")
        engine.emit("hasnexttrue", i=token)
        assert engine.stats_for("HasNext").live_monitors == 1
        key = id(token)
        del token
        gc.collect()
        engine.note_deaths({"i": {key}})
        other = Obj("i2")
        engine.emit("hasnexttrue", i=other)  # boundary: deaths propagate
        gc.collect()
        assert engine.stats_for("HasNext").monitors_collected >= 1

    def test_unknown_parameter_names_ignored(self):
        engine = MonitoringEngine(HASNEXT_SRC, propagation="eager")
        engine.note_deaths({"zz": {1, 2}})
        assert engine._pending_dead == []

    def test_service_forwards_to_shards(self):
        with MonitorService(HASNEXT_SRC, shards=2, mode="inline",
                            propagation="eager", gc="alldead") as service:
            token = Obj("i1")
            service.emit("hasnexttrue", i=token)
            key = id(token)
            del token
            gc.collect()
            service.note_deaths({"i": {key}})
            assert any(engine._pending_dead for engine in service.engines)


# ---------------------------------------------------------------------------
# TraceWeaver (forced settrace backend; default backend covered on 3.12 CI)
# ---------------------------------------------------------------------------


def make_session(**kwargs):
    return LiveSession(properties=[HASNEXT_SRC], **kwargs)


class TestTraceWeaver:
    def test_call_and_return_advice(self):
        events = []

        class Sink:
            def emit(self, event, _strict=False, **params):
                events.append((event, params))

        def step(i):
            return i

        weaver = TraceWeaver(Sink(), backend="settrace")
        token = Obj("it")
        with weaver:
            weaver.weave([
                on_call(step, "next", {"i": "arg:i"}),
                on_return(step, "stepped", {"i": "result"}),
            ])
            step(token)
        assert events == [("next", {"i": token}), ("stepped", {"i": token})]

    def test_exceptional_exit_skips_return_advice(self):
        events = []

        class Sink:
            def emit(self, event, _strict=False, **params):
                events.append(event)

        def boom(i):
            raise ValueError("no")

        weaver = TraceWeaver(Sink(), backend="settrace")
        with weaver:
            weaver.weave([on_return(boom, "after", {"i": "arg:i"})])
            with pytest.raises(ValueError):
                boom(Obj("x"))
        assert events == []

    def test_internally_caught_exception_still_fires_return_advice(self):
        events = []

        class Sink:
            def emit(self, event, _strict=False, **params):
                events.append(event)

        def resilient(i):
            try:
                int("not a number")
            except ValueError:
                pass
            return i

        weaver = TraceWeaver(Sink(), backend="settrace")
        with weaver:
            weaver.weave([on_return(resilient, "done", {"i": "result"})])
            resilient(Obj("x"))
        assert events == ["done"]

    def test_condition_filters(self):
        events = []

        class Sink:
            def emit(self, event, _strict=False, **params):
                events.append(event)

        def step(i, flag):
            return i

        weaver = TraceWeaver(Sink(), backend="settrace")
        with weaver:
            weaver.weave([
                on_call(step, "only_flagged", {"i": "arg:i"},
                        condition=lambda ctx: ctx.locals["flag"]),
            ])
            step(Obj("a"), False)
            step(Obj("b"), True)
        assert events == ["only_flagged"]

    def test_unweave_restores_tracing(self):
        previous = sys.gettrace()
        weaver = TraceWeaver(object(), backend="settrace")
        weaver.weave([on_call(make_session, "x", {})])
        weaver.unweave()
        assert sys.gettrace() is previous

    def test_non_python_function_is_refused(self):
        with pytest.raises(ReproError):
            on_call(len, "x", {})

    def test_suspendable_functions_are_refused(self):
        def generator():
            yield 1

        async def coroutine():
            return 1

        for suspendable in (generator, coroutine):
            with pytest.raises(ReproError, match="generator/coroutine"):
                on_call(suspendable, "x", {})

    def test_monitoring_backend_requires_312(self):
        if hasattr(sys, "monitoring"):
            pytest.skip("sys.monitoring available; default backend covers it")
        with pytest.raises(ReproError):
            TraceWeaver(object(), backend="monitoring")


# ---------------------------------------------------------------------------
# emits decorator + ambient sessions
# ---------------------------------------------------------------------------


@emits("hasnexttrue", bind={"i": "arg:i"})
def check(i):
    return True


@emits("next", when="return", bind={"i": "arg:i"})
def advance(i):
    return i


class TestEmitsDecorator:
    def test_inactive_sessions_make_it_a_passthrough(self):
        assert active_sessions() == ()
        assert advance(Obj("i")) is not None  # no engine, no error

    def test_active_session_receives_events(self):
        verdicts = []
        session = LiveSession(
            properties=[HASNEXT_SRC], gc="none",
            on_verdict=lambda p, c, m: verdicts.append(c),
        )
        with session:
            assert active_sessions() == (session,)
            token = Obj("it")
            check(token)
            advance(token)   # fine: hasnexttrue preceded
            advance(token)   # violation: no hasnexttrue since last next
        assert verdicts == ["violation"]
        assert active_sessions() == ()

    def test_probe_is_session_bound(self):
        verdicts = []
        session = LiveSession(
            properties=[HASNEXT_SRC], gc="none",
            on_verdict=lambda p, c, m: verdicts.append(c),
        )

        @session.probe("next", bind={"i": "arg:i"})
        def use(i):
            return i

        use(Obj("a"))  # session not entered: probe still reports to it
        assert verdicts == ["violation"]


# ---------------------------------------------------------------------------
# LiveSession
# ---------------------------------------------------------------------------


class TestLiveSession:
    def test_needs_sink_or_properties(self):
        with pytest.raises(ReproError):
            LiveSession()

    def test_engine_options_refused_with_explicit_sink(self):
        engine = MonitoringEngine(HASNEXT_SRC)
        with pytest.raises(ReproError):
            LiveSession(engine, gc="none")

    def test_unknown_catalogue_key(self):
        with pytest.raises(ReproError):
            LiveSession(properties=["nope"])

    def test_emitted_params_are_watched_and_deaths_recorded(self):
        buf = io.StringIO()
        session = LiveSession(properties=[HASNEXT_SRC], gc="none", record=buf)
        with session:
            token = Obj("it")
            session.emit("hasnexttrue", i=token)
            del token
            gc.collect()
            session.emit("hasnexttrue", i=Obj("other"))
        records = read_trace(buf.getvalue().splitlines())
        entries, deaths = split_death_markers(records)
        assert [event for event, _ in entries] == ["hasnexttrue", "hasnexttrue"]
        # o1 died between the events; the second token (a temporary) died
        # after the last event and is flushed as a trailing marker on close.
        assert deaths == {1: ["o1"], 2: ["o2"]}

    def test_trailing_deaths_flushed_on_close(self):
        buf = io.StringIO()
        session = LiveSession(properties=[HASNEXT_SRC], gc="none", record=buf)
        with session:
            token = Obj("it")
            session.emit("hasnexttrue", i=token)
            del token
            gc.collect()
        _entries, deaths = split_death_markers(read_trace(buf.getvalue().splitlines()))
        assert deaths == {1: ["o1"]}

    def test_recording_requires_engine_sink(self):
        with MonitorService(HASNEXT_SRC, shards=1, mode="inline") as service:
            with pytest.raises(ReproError):
                LiveSession(service, record=io.StringIO())

    def test_service_sink(self):
        with MonitorService(HASNEXT_SRC, shards=2, mode="inline") as service:
            session = LiveSession(service)
            with session:
                token = Obj("it")
                session.emit("next", i=token)
            categories = [record.category for record in service.verdicts()]
            assert categories == ["violation"]

    def test_patch_method_restored_on_close(self):
        class Victim:
            def ping(self):
                return "pong"

        original = Victim.ping
        session = LiveSession(properties=[HASNEXT_SRC], gc="none")
        calls = []
        with session:
            session.patch_method(
                Victim, "ping",
                lambda orig, self_: calls.append(1) or orig(self_),
            )
            assert Victim().ping() == "pong"
        assert Victim.ping is original
        assert calls == [1]

    def test_death_ledger_skipped_for_lazy_sinks(self):
        lazy = LiveSession(properties=[HASNEXT_SRC], gc="none")
        with lazy:
            lazy.emit("hasnexttrue", i=Obj("a"))
            assert lazy.binding.live_count == 0  # ledger not engaged

    def test_death_ledger_engaged_for_eager_sinks(self):
        eager = LiveSession(properties=[HASNEXT_SRC], gc="none",
                            propagation="eager")
        with eager:
            token = Obj("a")
            eager.emit("hasnexttrue", i=token)
            assert eager.binding.live_count == 1

    def test_close_is_idempotent(self):
        session = LiveSession(properties=[HASNEXT_SRC], gc="none")
        with session:
            pass
        session.close()
