"""Weakref-driven deaths must equal explicit-death-marker traces.

The live instrumentation layer's contract (ISSUE 5 acceptance): one
workload run

* **live** — real objects churn through woven classes, parameter deaths
  are interpreter refcount drops observed by ``weakref`` callbacks
  (:class:`~repro.instrument.live.LiveBinding` + the engine's own eager
  watcher), while a :class:`~repro.runtime.tracelog.TraceRecorder` with
  ``record_deaths=True`` writes the event stream *plus* explicit death
  markers; and
* **replayed** — the recorded trace re-monitored in a fresh engine, with
  tokens dropped at the marked death points,

must produce the **identical verdict multiset and identical
monitors-created / monitors-collected counts**, across every GC strategy
and both dispatch paths (plus the eager propagation regimes).  The
comparison point keeps the workload's surviving window alive, so the
collection counts are death-driven, not end-of-test trivia.
"""

from __future__ import annotations

import gc
import io
import random
from collections import Counter

import pytest

from repro.instrument.collections_shim import MonitoredCollection, NoSuchElementError
from repro.instrument.live import LiveSession
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay

GC_STRATEGIES = ("none", "alldead", "coenable", "statebased")
DISPATCHES = ("compiled", "reference")

#: Extra propagation regimes beyond the default lazy matrix.
EAGER_CASES = (
    ("statebased", "compiled", "eager"),
    ("coenable", "compiled", "eager"),
    ("alldead", "reference", "eager"),
    ("coenable", "compiled", "eager_full"),
)

SEED = 7


def churn(seed: int) -> list[MonitoredCollection]:
    """A deterministic iterator-churn workload over real shim objects.

    Collections slide through a live window (the oldest dies with its
    iterators — the paper's leak driver); iterators die young; some are
    used after their collection was updated (UNSAFEITER matches) and some
    are advanced past exhaustion without a hasNext (HASNEXT errors).
    Returns the surviving window so the caller controls which parameter
    objects are still alive at the comparison point.
    """
    rng = random.Random(seed)
    window: list[MonitoredCollection] = []
    for serial in range(40):
        collection = MonitoredCollection(range(4))
        window.append(collection)
        if len(window) > 8:
            window.pop(0)
        for _ in range(3):
            target = window[rng.randrange(len(window))]
            iterator = target.iterator()
            for _ in range(3):
                if not iterator.has_next():
                    break
                iterator.next()
            roll = rng.random()
            if roll < 0.45:
                target.add(serial)
                if iterator.has_next():
                    iterator.next()  # use after update: UNSAFEITER
            elif roll < 0.6:
                try:
                    iterator.next()  # no hasNext first: HASNEXT error
                except NoSuchElementError:
                    pass
            del iterator  # iterators die young
    return window


def build_engine(gc_kind: str, dispatch: str, propagation: str, verdicts: Counter):
    specs = [
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        ALL_PROPERTIES["hasnext"].make().silence(),
    ]
    return MonitoringEngine(
        specs,
        gc=gc_kind,
        dispatch=dispatch,
        propagation=propagation,
        on_verdict=lambda prop, category, _monitor: verdicts.update(
            [(prop.spec_name, prop.formalism, category)]
        ),
    )


def settle_and_measure(engine: MonitoringEngine) -> dict:
    """Flush GC to a fixed point and snapshot the death-driven counters."""
    for _ in range(2):
        engine.flush_gc()
        gc.collect()
    return {
        key: (stats.events, stats.monitors_created, stats.monitors_collected)
        for key, stats in engine.stats().items()
    }


def run_live(gc_kind: str, dispatch: str, propagation: str):
    verdicts: Counter = Counter()
    engine = build_engine(gc_kind, dispatch, propagation, verdicts)
    buf = io.StringIO()
    session = LiveSession(
        engine,
        properties=[ALL_PROPERTIES["unsafeiter"], ALL_PROPERTIES["hasnext"]],
        record=buf,
    )
    with session:
        survivors = churn(SEED)
    counters = settle_and_measure(engine)
    del survivors
    return buf.getvalue(), verdicts, counters


def run_replay(trace: str, gc_kind: str, dispatch: str, propagation: str):
    verdicts: Counter = Counter()
    engine = build_engine(gc_kind, dispatch, propagation, verdicts)
    tokens = replay(trace.splitlines(), engine)
    counters = settle_and_measure(engine)
    del tokens
    return verdicts, counters


@pytest.mark.parametrize("dispatch", DISPATCHES)
@pytest.mark.parametrize("gc_kind", GC_STRATEGIES)
def test_live_equals_marked_trace(gc_kind: str, dispatch: str):
    trace, live_verdicts, live_counters = run_live(gc_kind, dispatch, "lazy")
    assert live_verdicts, "workload must produce verdicts to compare"
    assert '"die"' in trace, "live recording must contain death markers"
    replay_verdicts, replay_counters = run_replay(trace, gc_kind, dispatch, "lazy")
    assert replay_verdicts == live_verdicts
    assert replay_counters == live_counters


@pytest.mark.parametrize("gc_kind,dispatch,propagation", EAGER_CASES)
def test_live_equals_marked_trace_eager(gc_kind: str, dispatch: str, propagation: str):
    trace, live_verdicts, live_counters = run_live(gc_kind, dispatch, propagation)
    replay_verdicts, replay_counters = run_replay(
        trace, gc_kind, dispatch, propagation
    )
    assert replay_verdicts == live_verdicts
    assert replay_counters == live_counters


def test_trace_is_config_independent():
    """The recorded stream is a workload property, not an engine property."""
    traces = {
        run_live(gc_kind, "compiled", "lazy")[0]
        for gc_kind in ("none", "coenable")
    }
    assert len(traces) == 1


def test_collections_are_death_driven_not_trivial():
    """At the comparison point some monitors are alive: CM < M."""
    _trace, _verdicts, counters = run_live("coenable", "compiled", "lazy")
    unsafeiter = counters[("UnsafeIter", "ere")]
    _events, created, collected = unsafeiter
    assert collected > 0
    assert collected < created
