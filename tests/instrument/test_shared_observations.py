"""Shared observations across specifications (the ALL-monitoring wiring).

HASNEXT and UNSAFEITER both observe ``Iterator.next()`` as the event
``next``.  When both are monitored, that join point must emit ``next``
exactly once per call — one advice feeding every declaring specification,
as a single AspectJ advice serves every matching JavaMOP spec.  A naive
per-property weave emits twice and corrupts every downstream count (the
regression this file pins).
"""

from __future__ import annotations

from repro.instrument.aspects import Weaver
from repro.instrument.collections_shim import MonitoredCollection
from repro.properties import EVALUATED_PROPERTIES, HASNEXT, UNSAFEITER
from repro.runtime.engine import MonitoringEngine


def co_instrument(properties, system="rv"):
    specs = [prop.make().silence() for prop in properties]
    engine = MonitoringEngine(specs, system=system)
    weaver = Weaver(engine)
    for prop in properties:
        prop.instrument(engine, weaver)
    return engine, weaver


class TestSharedJoinPoints:
    def test_next_emitted_once_per_call(self):
        engine, weaver = co_instrument([HASNEXT, UNSAFEITER])
        try:
            collection = MonitoredCollection([1, 2, 3])
            iterator = collection.iterator()
            while iterator.has_next():
                iterator.next()
        finally:
            weaver.unweave()
        # 4 has_next() calls (3 true + 1 false) + 3 next() calls = 7 events
        # for HasNext; a double-emitting weave would report 10.
        assert engine.stats_for("HasNext", "fsm").events == 7
        # UnsafeIter sees create(1) + next(3) only.
        assert engine.stats_for("UnsafeIter").events == 1 + 3

    def test_all_five_properties_event_counts_match_solo_runs(self):
        def drive():
            collection = MonitoredCollection([1, 2])
            iterator = collection.iterator()
            while iterator.has_next():
                iterator.next()
            collection.add(3)

        solo_counts = {}
        for prop in EVALUATED_PROPERTIES:
            engine, weaver = co_instrument([prop])
            try:
                drive()
            finally:
                weaver.unweave()
            solo_counts[prop.key] = {
                key: stats.events for key, stats in engine.stats().items()
            }

        engine, weaver = co_instrument(list(EVALUATED_PROPERTIES))
        try:
            drive()
        finally:
            weaver.unweave()
        for prop in EVALUATED_PROPERTIES:
            for key, expected in solo_counts[prop.key].items():
                assert engine.stats().get(key).events == expected, key

    def test_dedup_is_per_identical_pointcut(self):
        """Distinct advice on one join point still both fire."""
        engine, weaver = co_instrument([HASNEXT])
        try:
            # has_next carries two pointcuts (true/false conditions): one
            # call emits exactly one of the two events.
            collection = MonitoredCollection([1])
            iterator = collection.iterator()
            iterator.has_next()                     # -> hasnexttrue only
            stats = engine.stats_for("HasNext", "fsm")
            assert stats.events == 1
        finally:
            weaver.unweave()
