"""Edge cases of the collections shim — the thinnest-tested module.

Covers nested iterators, bulk-modification entry points
(``update`` / ``setdefault`` / ``|=``), iterator exhaustion vs.
abandonment, fail-fast behavior, and map-view projection subtleties.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import ReproError
from repro.instrument.collections_shim import (
    ConcurrentModificationError,
    MonitoredCollection,
    MonitoredIterator,
    MonitoredMap,
    NoSuchElementError,
    SynchronizedMap,
)
from repro.instrument.live import LiveSession
from repro.properties import ALL_PROPERTIES


class TestNestedIterators:
    def test_independent_cursors_over_one_collection(self):
        collection = MonitoredCollection([1, 2, 3])
        outer = collection.iterator()
        seen = []
        while outer.has_next():
            item = outer.next()
            inner = collection.iterator()
            while inner.has_next():
                seen.append((item, inner.next()))
        assert seen == [(a, b) for a in (1, 2, 3) for b in (1, 2, 3)]

    def test_inner_iterator_survives_outer_abandonment(self):
        collection = MonitoredCollection([1, 2])
        outer = collection.iterator()
        outer.next()
        inner = collection.iterator()
        del outer  # abandoned mid-iteration, not exhausted
        assert [inner.next(), inner.next()] == [1, 2]
        assert not inner.has_next()

    def test_exhaustion_raises_but_abandonment_does_not(self):
        collection = MonitoredCollection([1])
        exhausted = collection.iterator()
        exhausted.next()
        with pytest.raises(NoSuchElementError):
            exhausted.next()
        abandoned = collection.iterator()  # never touched again
        del abandoned

    def test_fail_fast_nested_modification(self):
        collection = MonitoredCollection([1, 2, 3])
        collection.fail_fast = True
        iterator = collection.iterator()
        iterator.next()
        collection.add(4)
        with pytest.raises(ConcurrentModificationError):
            iterator.next()

    def test_non_fail_fast_reflects_growth(self):
        collection = MonitoredCollection([1])
        iterator = collection.iterator()
        iterator.next()
        assert not iterator.has_next()
        collection.add(2)
        assert iterator.has_next()  # live view of the backing list
        assert iterator.next() == 2


class TestMapBulkModification:
    def test_update_from_dict_and_map(self):
        target = MonitoredMap()
        target.update({"a": 1, "b": 2})
        other = MonitoredMap()
        other.put("c", 3)
        target.update(other)
        assert target.size() == 3
        assert target.get("c") == 3

    def test_update_counts_every_insert_as_modification(self):
        target = MonitoredMap()
        before = target._mod_count
        target.update({"a": 1, "b": 2})
        assert target._mod_count == before + 2

    def test_setdefault_inserts_once(self):
        target = MonitoredMap()
        assert target.setdefault("a", 1) == 1
        before = target._mod_count
        assert target.setdefault("a", 99) == 1
        assert target._mod_count == before  # hit: not a modification
        assert "a" in target

    def test_ior_operator(self):
        target = MonitoredMap()
        target.put("a", 1)
        target |= {"b": 2}
        assert target.size() == 2

    def test_bulk_updates_fire_woven_updatemap_events(self):
        """update/setdefault/|= must be visible to UNSAFEMAPITER."""
        verdicts: Counter = Counter()
        session = LiveSession(
            properties=[ALL_PROPERTIES["unsafemapiter"].make().silence()],
            gc="coenable",
            on_verdict=lambda _p, category, _m: verdicts.update([category]),
        )
        with session:
            session.weave(ALL_PROPERTIES["unsafemapiter"].pointcuts())

            def iterate_then(modify):
                backing = MonitoredMap()
                backing.put("k", "v")
                view = backing.key_set()
                iterator = view.iterator()
                iterator.next()
                modify(backing)
                iterator.next() if iterator.has_next() else None
                # One more use after the map changed: the violation.
                try:
                    iterator.next()
                except NoSuchElementError:
                    pass

            iterate_then(lambda m: m.update({"x": 1}))
            iterate_then(lambda m: m.setdefault("y", 2))
            iterate_then(lambda m: m.__ior__({"z": 3}))
        assert verdicts["match"] >= 3

    def test_setdefault_hit_does_not_fire_update(self):
        verdicts: Counter = Counter()
        session = LiveSession(
            properties=[ALL_PROPERTIES["unsafemapiter"].make().silence()],
            gc="coenable",
            on_verdict=lambda _p, category, _m: verdicts.update([category]),
        )
        with session:
            session.weave(ALL_PROPERTIES["unsafemapiter"].pointcuts())
            backing = MonitoredMap()
            backing.put("k", "v")
            iterator = backing.key_set().iterator()
            iterator.next()
            backing.setdefault("k", "other")  # present: no modification
            assert not iterator.has_next()
        assert verdicts == Counter()

    def test_synchronized_map_inherits_bulk_updates(self):
        target = SynchronizedMap()
        target.update({"a": 1})
        assert target.setdefault("b", 2) == 2
        assert target.size() == 2


class TestMapViewEdges:
    def test_views_are_read_through(self):
        backing = MonitoredMap()
        backing.put("a", 1)
        view = backing.key_set()
        for operation in (lambda: view.add("x"), lambda: view.remove("a"),
                          lambda: view.clear()):
            with pytest.raises(ReproError):
                operation()

    def test_view_iterator_sees_backing_changes(self):
        backing = MonitoredMap()
        backing.put("a", 1)
        values = backing.values()
        iterator = values.iterator()
        assert iterator.next() == 1
        backing.put("b", 2)
        assert iterator.has_next()
        assert iterator.next() == 2

    def test_view_mod_count_tracks_backing(self):
        backing = MonitoredMap()
        view = backing.key_set()
        view.fail_fast = True
        iterator = view.iterator()
        backing.update({"a": 1})
        with pytest.raises(ConcurrentModificationError):
            iterator.next()

    def test_iterator_source_property(self):
        collection = MonitoredCollection([1])
        iterator = collection.iterator()
        assert isinstance(iterator, MonitoredIterator)
        assert iterator.source is collection
