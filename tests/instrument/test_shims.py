"""Monitored-program substrate tests (the java.util analogs)."""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.core.errors import ReproError
from repro.instrument.collections_shim import (
    ConcurrentModificationError,
    HashedObject,
    MethodBody,
    MonitoredCollection,
    MonitoredFile,
    MonitoredHashSet,
    MonitoredIterator,
    MonitoredLock,
    MonitoredMap,
    NoSuchElementError,
    SynchronizedCollection,
    SynchronizedMap,
)


class TestMonitoredCollection:
    def test_java_api(self):
        coll = MonitoredCollection([1, 2])
        assert coll.size() == 2
        assert coll.add(3)
        assert coll.contains(3)
        assert coll.remove(3)
        assert not coll.remove(99)
        assert coll.get(0) == 1
        assert not coll.is_empty()
        coll.clear()
        assert coll.is_empty()
        assert len(coll) == 0

    def test_iterator_protocol(self):
        coll = MonitoredCollection(["a", "b"])
        iterator = coll.iterator()
        assert iterator.has_next()
        assert iterator.next() == "a"
        assert iterator.next() == "b"
        assert not iterator.has_next()
        with pytest.raises(NoSuchElementError):
            iterator.next()

    def test_enumeration_is_separate(self):
        coll = MonitoredCollection([1])
        assert isinstance(coll.elements(), MonitoredIterator)

    def test_iterator_keeps_collection_alive_not_vice_versa(self):
        coll = MonitoredCollection([1])
        iterator = coll.iterator()
        ref = weakref.ref(coll)
        del coll
        gc.collect()
        assert ref() is not None  # the iterator pins the collection
        assert iterator.source is ref()
        del iterator
        gc.collect()
        assert ref() is None

    def test_fail_fast_mode(self):
        coll = MonitoredCollection([1, 2])
        coll.fail_fast = True
        iterator = coll.iterator()
        coll.add(3)
        with pytest.raises(ConcurrentModificationError):
            iterator.next()

    def test_non_fail_fast_lets_violation_through(self):
        coll = MonitoredCollection([1, 2])
        iterator = coll.iterator()
        coll.add(3)
        assert iterator.next() == 1  # the monitors, not the JVM, must catch it


class TestMonitoredMap:
    def test_map_api(self):
        mapping = MonitoredMap()
        assert mapping.put("k", 1) is None
        assert mapping.put("k", 2) == 1
        assert mapping.get("k") == 2
        assert mapping.size() == 1
        assert mapping.remove("k") == 2
        mapping.put("x", 1)
        mapping.clear()
        assert mapping.size() == 0

    def test_views_are_live(self):
        mapping = MonitoredMap()
        keys = mapping.key_set()
        values = mapping.values()
        mapping.put("a", 1)
        assert keys.contains("a")
        assert values.contains(1)
        assert keys.size() == 1

    def test_view_iterator_reflects_map_updates(self):
        mapping = MonitoredMap()
        mapping.put("a", 1)
        iterator = mapping.key_set().iterator()
        mapping.put("b", 2)
        assert iterator.next() == "a"
        assert iterator.next() == "b"

    def test_views_reject_direct_mutation(self):
        view = MonitoredMap().key_set()
        for operation in (lambda: view.add("x"), lambda: view.remove("x"), view.clear):
            with pytest.raises(ReproError):
                operation()

    def test_view_fail_fast_uses_map_mod_count(self):
        mapping = MonitoredMap()
        mapping.put("a", 1)
        view = mapping.key_set()
        view.fail_fast = True
        iterator = view.iterator()
        mapping.put("b", 2)
        with pytest.raises(ConcurrentModificationError):
            iterator.next()


class TestSynchronized:
    def test_collection_lock_tracking(self):
        coll = SynchronizedCollection([1])
        assert not coll.holds_lock()
        with coll:
            assert coll.holds_lock()
            with coll:  # re-entrant
                assert coll.holds_lock()
            assert coll.holds_lock()
        assert not coll.holds_lock()

    def test_map_lock_and_views(self):
        mapping = SynchronizedMap()
        mapping.put("a", 1)
        view = mapping.key_set()
        assert not view.holds_lock()
        with mapping:
            assert view.holds_lock()
        assert not view.holds_lock()


class TestMonitoredLock:
    def test_reentrant_balance(self):
        lock = MonitoredLock("L")
        lock.acquire()
        lock.acquire()
        assert lock.depth == 2
        lock.release()
        lock.release()
        assert lock.depth == 0

    def test_release_without_acquire(self):
        with pytest.raises(ReproError):
            MonitoredLock().release()


class TestMethodBody:
    def test_context_manager(self):
        body = MethodBody()
        with body as inner:
            assert inner is body


class TestMonitoredFile:
    def test_protocol_counters(self):
        handle = MonitoredFile("f")
        handle.open()
        handle.write("x")
        assert handle.read() == ""
        handle.close()
        assert handle.writes == 1 and handle.reads == 1
        assert not handle.is_open


class TestHashSet:
    def test_mutation_breaks_lookup(self):
        """The defect HASHSET monitors: mutate after insert => unfindable."""
        hashset = MonitoredHashSet()
        item = HashedObject(7)
        assert hashset.add(item)
        assert not hashset.add(item)  # no duplicates
        assert hashset.contains(item)
        item.mutate()
        assert not hashset.contains(item)  # lost!
        assert not hashset.remove(item)
        assert hashset.size() == 1  # still physically inside
