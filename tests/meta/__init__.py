"""Meta-tests: suite hygiene policies (markers, flake quarantine)."""
