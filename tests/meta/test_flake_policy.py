"""The flake policy, executable: zero ``flaky``-marked tests, ever.

A quarantine marker that accumulates members becomes a graveyard of
silently-skipped coverage.  This suite pins the alternative workflow:
the marker exists (registered, so a typo'd use still errors under
``--strict-markers``) but must have **no members** — intermittent
failures get diagnosed with ``tools/retest.py`` and fixed, not marked.
"""

from __future__ import annotations

import configparser
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TESTS = REPO / "tests"


def test_markers_are_registered():
    config = configparser.ConfigParser()
    config.read(REPO / "pytest.ini")
    markers = config.get("pytest", "markers")
    registered = {line.split(":")[0].strip() for line in markers.splitlines() if line.strip()}
    assert {"slow", "flaky"} <= registered


def test_flaky_marker_has_zero_members():
    """Grep the whole test tree: nothing may apply the quarantine marker."""
    offenders = []
    for path in sorted(TESTS.rglob("*.py")):
        if path == Path(__file__).resolve():
            continue  # this file names the marker in strings/docs
        for number, line in enumerate(path.read_text().splitlines(), start=1):
            if "mark.flaky" in line or "pytestmark" in line and "flaky" in line:
                offenders.append(f"{path.relative_to(REPO)}:{number}: {line.strip()}")
    assert not offenders, (
        "the flaky marker has zero-member policy; diagnose with "
        "tools/retest.py and fix instead:\n" + "\n".join(offenders)
    )


def test_retest_tool_reports_pass_rate(tmp_path):
    """End-to-end: retest.py reruns a trivial test and reports 100%."""
    probe = tmp_path / "test_probe.py"
    probe.write_text("def test_trivially_green():\n    assert True\n")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "retest.py"), str(probe),
         "-n", "2", "--", "-q", "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "pass rate: 2/2 (100%)" in proc.stdout
    assert "stable across all runs" in proc.stdout


def test_retest_tool_flags_a_flaky_test(tmp_path):
    """A test that fails on its first fresh interpreter and passes on the
    next (state left on disk) yields a sub-100% rate and exit status 1."""
    probe = tmp_path / "test_probe.py"
    probe.write_text(
        "import pathlib\n"
        "def test_flaky_by_disk_state():\n"
        "    stamp = pathlib.Path('stamp')\n"
        "    first = not stamp.exists()\n"
        "    stamp.write_text('seen')\n"
        "    assert not first\n"
    )
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "retest.py"), str(probe),
         "-n", "2", "--", "-q", "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "pass rate: 1/2" in proc.stdout
    assert "FLAKY" in proc.stdout


def test_retest_help_runs():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "retest.py"), "--help"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "pass rate" in proc.stdout
