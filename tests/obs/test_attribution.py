"""Per-property stage attribution: where the sampled millisecond went.

Pins the tentpole contracts of ``repro.obs.attribution``:

* attribution off (the default) installs nothing — the engine carries no
  plane and no wrapped emit paths;
* at ``sample_interval=1`` every stage fills, and the attributed sums
  equal the measured emit wall time within 15% on the bloat workload
  (the acceptance bound — at interval 1 the sampled sums *are* the
  engine time);
* attribution never changes monitoring results (verdicts and monitors
  are identical on vs off);
* labels are slot-stable: detach + reattach starts a fresh series under
  the new slot instead of bleeding into the tombstoned one;
* forked shard workers sample on pairwise-distinct phases
  (``Telemetry.config(shard=k)``), and process-mode worker cells merge
  back into the parent snapshot.
"""

from __future__ import annotations

from time import perf_counter

from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.obs.attribution import ENGINE_LABEL, STAGES, prop_label, stage_table
from repro.obs.telemetry import SHARD_PHASE_STRIDE, Telemetry
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.service import MonitorService
from repro.service.service import ingest_symbolic

from ..conftest import Obj


def bloat_entries(scale=0.03):
    return record_workload_events(WORKLOADS["bloat"].scaled(scale), [UNSAFEITER])


def attributed_engine(interval=1, **kwargs):
    telemetry = Telemetry(sample_interval=interval, attribution=True)
    engine = MonitoringEngine(
        UNSAFEITER.make().silence(),
        gc="coenable",
        propagation="lazy",
        dispatch="compiled",
        telemetry=telemetry,
        **kwargs,
    )
    return engine, telemetry


def emit_triples(target, n, start=0):
    keepalive = []
    for k in range(start, start + n):
        c, i = Obj(f"c{k}"), Obj(f"i{k}")
        keepalive.append((c, i))
        target.emit("create", c=c, i=i)
        target.emit("update", c=c)
        target.emit("next", i=i)
    return keepalive


class TestDefaultOff:
    def test_no_plane_and_no_wrappers_without_attribution(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence())
        assert engine.attribution is None
        assert "emit" not in vars(engine)
        assert "emit_batch" not in vars(engine)

    def test_plain_telemetry_does_not_build_a_plane(self):
        engine = MonitoringEngine(
            UNSAFEITER.make().silence(), telemetry=Telemetry()
        )
        assert engine.attribution is None


class TestStageAccounting:
    def test_every_dispatch_stage_fills_at_interval_one(self):
        engine, telemetry = attributed_engine(interval=1)
        keepalive = emit_triples(engine, 30)
        table = stage_table(telemetry.snapshot())
        label = prop_label(0, "UnsafeIter", "ere")
        assert label in table
        for stage in ("dispatch", "tree-walk", "fsm-step"):
            assert table[label][stage] > 0.0, stage
        assert table[ENGINE_LABEL]["emit-batch"] > 0.0
        del keepalive

    def test_sampling_interval_thins_the_samples(self):
        engine, telemetry = attributed_engine(interval=64)
        keepalive = emit_triples(engine, 40)  # 120 emits -> ~2 sampled
        snap = telemetry.snapshot()
        samples = sum(
            value
            for _key, value in snap["repro_prop_stage_samples_total"]["series"]
        )
        assert 0 < samples < 120
        del keepalive

    def test_attributed_sum_matches_emit_wall_time_on_bloat(self):
        entries = bloat_entries()
        engine, telemetry = attributed_engine(interval=1)
        # Replay ingests through the attribution boundary's ``emit_values``
        # (the repack-free instance rebinding) — time that exact entry.
        inner_emit_values = engine.emit_values
        wall = 0.0

        def timed_emit_values(event, values, _strict=True):
            nonlocal wall
            started = perf_counter()
            try:
                return inner_emit_values(event, values, _strict)
            finally:
                wall += perf_counter() - started

        engine.emit_values = timed_emit_values
        replay_entries(entries, engine, retire_after_last_use=True)
        attributed = sum(
            value
            for _key, value in telemetry.snapshot()[
                "repro_prop_stage_seconds_total"
            ]["series"]
        )
        assert wall > 0.0
        # The acceptance bound: at interval 1 the attributed decomposition
        # accounts for the engine's emit wall time within 15%.
        assert abs(attributed - wall) / wall <= 0.15, (attributed, wall)

    def test_attribution_does_not_change_monitoring_results(self):
        entries = bloat_entries()

        def run(attribution):
            verdicts = []
            telemetry = Telemetry(sample_interval=1, attribution=attribution)
            engine = MonitoringEngine(
                UNSAFEITER.make().silence(),
                gc="coenable",
                propagation="lazy",
                dispatch="compiled",
                telemetry=telemetry,
                on_verdict=lambda prop, cat, mon: verdicts.append(cat),
            )
            replay_entries(entries, engine, retire_after_last_use=True)
            stats = engine.stats_for("UnsafeIter")
            return sorted(verdicts), stats.monitors_created

        assert run(False) == run(True)


class TestSlotStability:
    def test_reload_starts_a_fresh_series_with_no_cross_slot_bleed(self):
        engine, telemetry = attributed_engine(interval=1)
        keepalive = emit_triples(engine, 10)
        old_label = prop_label(0, "UnsafeIter", "ere")
        first = stage_table(telemetry.snapshot())
        assert first[old_label]["total"] > 0.0

        engine.detach_property(0)
        frozen = stage_table(telemetry.snapshot())[old_label]["total"]
        slots = engine.attach_property(UNSAFEITER.make().silence())
        assert slots == [1]  # tombstoned slot 0 is never reused
        keepalive += emit_triples(engine, 10, start=10)

        table = stage_table(telemetry.snapshot())
        new_label = prop_label(1, "UnsafeIter", "ere")
        assert table[new_label]["total"] > 0.0
        # The tombstoned slot's history is frozen, not extended.
        assert table[old_label]["total"] == frozen
        del keepalive


class TestShardDecorrelation:
    def test_config_offsets_phases_pairwise_distinct(self):
        telemetry = Telemetry(sample_phase=3, attribution=True)
        phases = [telemetry.config(shard=s)["sample_phase"] for s in range(4)]
        assert len(set(phases)) == 4
        assert phases == [3 + SHARD_PHASE_STRIDE * s for s in range(4)]

    def test_from_config_round_trips_the_flags(self):
        telemetry = Telemetry(
            sample_interval=32, sample_phase=5, attribution=True, trace=True
        )
        rebuilt = Telemetry.from_config(telemetry.config(shard=2))
        assert rebuilt.sample_interval == 32
        assert rebuilt.sample_phase == 5 + 2 * SHARD_PHASE_STRIDE
        assert rebuilt.attribution is True
        assert rebuilt.tracer is not None


class TestServiceModes:
    def test_thread_mode_adds_queue_wait_cells(self):
        telemetry = Telemetry(sample_interval=1, attribution=True)
        service = MonitorService(
            UNSAFEITER.make().silence(), shards=2, telemetry=telemetry
        )
        keepalive = emit_triples(service, 40)
        service.drain()
        service.close()
        table = stage_table(service.metrics_snapshot())
        shard_labels = [label for label in table if label.startswith("shard:")]
        assert shard_labels
        assert all(
            set(table[label]) <= {"queue-wait", "total"} for label in shard_labels
        )
        del keepalive

    def test_process_mode_worker_cells_merge_into_the_parent_view(self):
        entries = bloat_entries(0.02)
        telemetry = Telemetry(sample_interval=1, attribution=True)
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=2,
            mode="process",
            telemetry=telemetry,
        )
        try:
            ingest_symbolic(service, entries)
            service.drain()
            table = stage_table(service.metrics_snapshot())
        finally:
            service.close()
        prop_labels = [label for label in table if "UnsafeIter" in label]
        assert prop_labels
        assert sum(table[label]["total"] for label in prop_labels) > 0.0


def test_stage_universe_is_closed():
    assert STAGES == (
        "dispatch", "tree-walk", "fsm-step", "gc", "emit-batch", "queue-wait"
    )
