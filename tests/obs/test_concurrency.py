"""Telemetry under concurrency: exact counts from shard workers, exact
merges across process boundaries, deterministic sampling.

These are the satellite-3 guarantees: counters and histograms touched
from every shard worker thread still read exactly at quiescence, the
process backend's snapshot merge neither drops nor double-counts, and
the seeded sampler fires identically across identical runs.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry, Sampler
from repro.obs.telemetry import Telemetry
from repro.properties import UNSAFEITER
from repro.service import MonitorService

from ..conftest import Obj

THREADS = 8
INCS = 2_000


def _counter_value(snapshot, name, *labels):
    for key, value in snapshot[name]["series"]:
        if tuple(key) == labels:
            return value
    return 0


def _hammer(work):
    """Run ``work(thread_index)`` from THREADS threads, join them all."""
    threads = [threading.Thread(target=work, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestPrimitivesUnderThreads:
    def test_shared_counter_child_counts_exactly(self):
        child = MetricsRegistry().counter("c_total", "h").labels()
        _hammer(lambda i: [child.inc() for _ in range(INCS)])
        assert child.snapshot_value() == THREADS * INCS

    def test_label_resolution_races_create_one_child(self):
        family = MetricsRegistry().counter("c_total", "h", ("k",))
        children = [None] * THREADS

        def work(i):
            children[i] = family.labels("same")
            for _ in range(INCS):
                children[i].inc()

        _hammer(work)
        assert all(c is children[0] for c in children)
        assert children[0].snapshot_value() == THREADS * INCS

    def test_histogram_count_and_sum_exact_from_threads(self):
        hist = MetricsRegistry().histogram("h", "h", (), (1.0,)).labels()
        _hammer(lambda i: [hist.observe(0.5) for _ in range(INCS)])
        snap = hist.snapshot_value()
        assert snap["count"] == THREADS * INCS
        assert snap["sum"] == float(THREADS * INCS) * 0.5
        assert snap["counts"] == [THREADS * INCS, 0]

    def test_gauge_inc_dec_balance_to_zero(self):
        gauge = MetricsRegistry().gauge("g", "h").labels()

        def work(i):
            for _ in range(INCS):
                gauge.inc()
                gauge.dec()

        _hammer(work)
        assert gauge.snapshot_value() == 0


def _trace(n):
    """n interleaved UnsafeIter create/update/next triples, distinct anchors."""
    events = []
    keepalive = []
    for k in range(n):
        c, i = Obj(f"c{k}"), Obj(f"i{k}")
        keepalive.append((c, i))
        events.append(("create", {"c": c, "i": i}))
        events.append(("update", {"c": c}))
        events.append(("next", {"i": i}))
    return events, keepalive


class TestServiceModes:
    def _run(self, mode, telemetry):
        events, keepalive = _trace(120)
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=4,
            mode=mode,
            telemetry=telemetry,
        )
        with service:
            for event, params in events:
                service.emit(event, **params)
            service.drain()
            snapshot = service.metrics_snapshot()
        del keepalive
        return snapshot, len(events)

    def test_thread_mode_counts_match_inline_mode(self):
        inline, total = self._run("inline", Telemetry())
        threaded, _ = self._run("thread", Telemetry())
        assert _counter_value(inline, "repro_service_events_total") == total
        assert _counter_value(threaded, "repro_service_events_total") == total
        handled = sum(
            value for _, value in threaded["repro_engine_handled_total"]["series"]
        )
        assert handled == sum(
            value for _, value in inline["repro_engine_handled_total"]["series"]
        )

    def test_thread_mode_engine_counters_exact_across_workers(self):
        snapshot, _total = self._run("thread", Telemetry())
        # Every trace event is anchored, reaches exactly one shard engine,
        # and each triple drives the one registered property runtime.
        handled = sum(
            value for _, value in snapshot["repro_engine_handled_total"]["series"]
        )
        assert handled == 360
        verdicts = sum(
            value for _, value in snapshot["repro_service_verdicts_total"]["series"]
        )
        assert verdicts == 120  # one match per triple

    def test_process_mode_merge_is_exact(self):
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=2,
            mode="process",
            telemetry=Telemetry(),
        )
        events, keepalive = _trace(40)
        with service:
            for event, params in events:
                service.emit(event, **params)
            service.drain()
            live = service.metrics_snapshot()  # polled from live workers
        final = service.metrics_snapshot()  # folded from cached worker snapshots
        for snapshot in (live, final):
            handled = sum(
                value for _, value in snapshot["repro_engine_handled_total"]["series"]
            )
            assert handled == len(events)
            assert _counter_value(snapshot, "repro_service_events_total") == len(events)
        del keepalive


class TestSamplingDeterminism:
    def test_identical_runs_sample_identically(self):
        def run():
            telemetry = Telemetry(sample_interval=4)
            sampler = telemetry.sampler(0)
            hist = telemetry.registry.histogram("h_seconds", "h").labels()
            for k in range(103):
                if sampler.sample():
                    hist.observe(float(k))
            return hist.snapshot_value()

        first, second = run(), run()
        assert first == second
        assert first["count"] == 26  # ticks 0, 4, ..., 100

    def test_sampler_instances_are_independent_across_threads(self):
        telemetry = Telemetry(sample_interval=8)
        counts = [0] * THREADS

        def work(i):
            sampler = telemetry.sampler(0)
            counts[i] = sum(1 for _ in range(800) if sampler.sample())

        _hammer(work)
        assert counts == [100] * THREADS
