"""The ``python -m repro.obs health`` supervision summary.

The CLI is the operator's first stop during an incident: it must render
the shard table straight from catalogue-declared series, exit non-zero
exactly when a shard is down, and degrade gracefully when pointed at a
service that runs no supervisor.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.catalogue import declare
from repro.obs.metrics import MetricsRegistry

from ..service.test_supervisor import synth_trace


def _snapshot_file(tmp_path, registry: MetricsRegistry) -> str:
    path = tmp_path / "snapshot.json"
    path.write_text(json.dumps(registry.snapshot()), encoding="utf-8")
    return str(path)


def _supervision_registry(*, shard0_alive: int = 1) -> MetricsRegistry:
    registry = MetricsRegistry()
    declare(registry, "repro_shard_alive").labels("0").set(shard0_alive)
    declare(registry, "repro_shard_alive").labels("1").set(1)
    declare(registry, "repro_shard_restarts_total").labels("0", "crash").inc(2)
    declare(registry, "repro_shard_restarts_total").labels("1", "hang").inc(1)
    declare(registry, "repro_events_quarantined_total").labels("0").inc(3)
    declare(registry, "repro_quarantine_depth").labels().set(3)
    declare(registry, "repro_events_shed_total").labels("property").inc(7)
    declare(registry, "repro_shed_level").labels().set(1)
    return registry


class TestHealthCommand:
    def test_renders_shard_table_and_exits_zero(self, tmp_path, capsys):
        source = _snapshot_file(tmp_path, _supervision_registry())
        assert main(["health", source]) == 0
        out = capsys.readouterr().out
        assert "shard" in out and "restarts" in out
        assert "crash:2" in out
        assert "hang:1" in out
        assert "quarantine depth: 3" in out
        assert "shed level: 1" in out
        assert "property=7" in out

    def test_down_shard_exits_nonzero(self, tmp_path, capsys):
        source = _snapshot_file(
            tmp_path, _supervision_registry(shard0_alive=0)
        )
        assert main(["health", source]) == 1
        captured = capsys.readouterr()
        assert "DOWN" in captured.out
        assert "down" in captured.err

    def test_without_supervision_series_is_friendly(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("unrelated_total", "noise").labels().inc()
        source = _snapshot_file(tmp_path, registry)
        assert main(["health", source]) == 0
        assert "no supervision series" in capsys.readouterr().out


class TestHealthEndToEnd:
    def test_reads_a_live_supervised_snapshot(self, tmp_path, capsys):
        from repro.faults import FaultPlan
        from repro.properties import ALL_PROPERTIES
        from repro.service import supervise

        plan = FaultPlan()
        for shard in range(2):
            plan.add("crash", shard=shard, at=15)
        paper = ALL_PROPERTIES["hasnext"]
        sup = supervise(
            paper.make().silence(),
            str(tmp_path / "sup"),
            plan=plan,
            shards=2,
            system="rv",
            mode="thread",
            telemetry=True,
        )
        spec = paper.make().silence()
        trace, pools = synth_trace(spec.definition, seed=5)
        with sup:
            sup.service.emit_batch(trace)
            sup.drain()
            snapshot = sup.service.metrics_snapshot()
            restarts = sup.restarts()
        assert restarts >= 1
        path = tmp_path / "live.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        assert main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "up" in out
        assert "crash" in out
