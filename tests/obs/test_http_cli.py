"""The exposition endpoint and the ``python -m repro.obs`` CLI.

End-to-end over real sockets (loopback, ephemeral ports): the server's
``/metrics`` text parses back to the exact registry values, the JSON
route is byte-equivalent to the snapshot, and the CLI subcommands hit
both routes the way the CI smoke step does.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.__main__ import main
from repro.obs.http import ExpositionServer, parse_exposition
from repro.obs.metrics import MetricsRegistry, render_prometheus


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "events", ("kind",)).labels("a").inc(5)
    registry.counter("demo_total", "events", ("kind",)).labels("b").inc(2)
    registry.gauge("demo_depth", "queue depth").labels().set(3)
    hist = registry.histogram("demo_seconds", "timings", (), (0.1, 1.0)).labels()
    hist.observe(0.05)
    hist.observe(0.5)
    return registry


@pytest.fixture()
def server(registry):
    server = ExpositionServer(registry.snapshot)
    yield server
    server.close()


def fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestExpositionServer:
    def test_metrics_route_round_trips_exact_values(self, registry, server):
        status, body = fetch(f"{server.url}/metrics")
        assert status == 200
        families = parse_exposition(body.decode("utf-8"))
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in families["demo_total"]["samples"]
        )
        assert samples[("demo_total", (("kind", "a"),))] == 5.0
        assert samples[("demo_total", (("kind", "b"),))] == 2.0
        count = [
            s for s in families["demo_seconds"]["samples"] if s[0] == "demo_seconds_count"
        ]
        assert count[0][2] == 2.0

    def test_json_route_is_the_snapshot(self, registry, server):
        status, body = fetch(f"{server.url}/metrics.json")
        assert status == 200
        assert json.loads(body) == json.loads(json.dumps(registry.snapshot()))

    def test_healthz_and_unknown_path(self, server):
        assert fetch(f"{server.url}/healthz")[0] == 200
        assert fetch(f"{server.url}/nope")[0] == 404

    def test_snapshot_failure_is_a_500(self):
        def boom():
            raise RuntimeError("registry gone")

        server = ExpositionServer(boom)
        try:
            assert fetch(f"{server.url}/metrics")[0] == 500
        finally:
            server.close()

    def test_live_updates_visible_without_restart(self, registry, server):
        registry.counter("demo_total", "events", ("kind",)).labels("a").inc(10)
        families = parse_exposition(fetch(f"{server.url}/metrics")[1].decode("utf-8"))
        assert ("demo_total", {"kind": "a"}, 15.0) in families["demo_total"]["samples"]


class TestCli:
    def test_snapshot_from_endpoint_to_file(self, registry, server, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert main(["snapshot", server.url, "-o", str(out)]) == 0
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(registry.snapshot())
        )

    def test_diff_reports_moved_series(self, registry, server, tmp_path, capsys):
        before = tmp_path / "before.json"
        assert main(["snapshot", server.url, "-o", str(before)]) == 0
        registry.counter("demo_total", "events", ("kind",)).labels("a").inc(7)
        assert main(["diff", str(before), server.url]) == 0
        moved = capsys.readouterr().out
        assert "demo_total{a} 5 -> 12 (+7)" in moved

    def test_diff_of_identical_snapshots_says_so(self, registry, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["diff", str(path), str(path)]) == 0
        assert "no series moved" in capsys.readouterr().out

    def test_validate_accepts_rendered_exposition(self, registry, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text(render_prometheus(registry.snapshot()))
        assert main(["validate", str(path)]) == 0
        assert capsys.readouterr().out.startswith("ok: 3 families")

    def test_validate_rejects_corrupt_exposition(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("# TYPE x counter\nx notanumber\n")
        assert main(["validate", str(path)]) == 1
        assert "invalid exposition" in capsys.readouterr().err


class TestDiffResets:
    """Counter/histogram resets: clamp the monotone delta, flag the series."""

    def _snap(self, tmp_path, name, build):
        registry = MetricsRegistry()
        build(registry)
        path = tmp_path / name
        path.write_text(json.dumps(registry.snapshot()))
        return str(path)

    def test_counter_going_backwards_is_clamped_and_flagged(self, tmp_path, capsys):
        before = self._snap(
            tmp_path, "before.json",
            lambda r: r.counter("demo_total", "events", ("kind",)).labels("a").inc(10),
        )
        after = self._snap(
            tmp_path, "after.json",
            lambda r: r.counter("demo_total", "events", ("kind",)).labels("a").inc(3),
        )
        assert main(["diff", before, after]) == 0
        assert "demo_total{a} 10 -> 3 (+0) [reset]" in capsys.readouterr().out

    def test_gauge_keeps_its_raw_negative_delta(self, tmp_path, capsys):
        before = self._snap(
            tmp_path, "before.json",
            lambda r: r.gauge("demo_depth", "depth").labels().set(5),
        )
        after = self._snap(
            tmp_path, "after.json",
            lambda r: r.gauge("demo_depth", "depth").labels().set(2),
        )
        assert main(["diff", before, after]) == 0
        out = capsys.readouterr().out
        assert "demo_depth 5 -> 2 (-3)" in out
        assert "[reset]" not in out

    def test_histogram_count_going_backwards_is_flagged(self, tmp_path, capsys):
        def observe(registry, times):
            hist = registry.histogram("demo_seconds", "t", (), (1.0,)).labels()
            for _ in range(times):
                hist.observe(0.5)

        before = self._snap(tmp_path, "before.json", lambda r: observe(r, 4))
        after = self._snap(tmp_path, "after.json", lambda r: observe(r, 1))
        assert main(["diff", before, after]) == 0
        out = capsys.readouterr().out
        assert "count 4 -> 1 (+0)" in out
        assert "[reset]" in out


class TestTopCli:
    def test_top_ranks_attributed_properties(self, tmp_path, capsys):
        from repro.obs.telemetry import Telemetry
        from repro.properties import UNSAFEITER
        from repro.runtime.engine import MonitoringEngine

        from .test_attribution import emit_triples

        telemetry = Telemetry(sample_interval=1, attribution=True)
        engine = MonitoringEngine(
            UNSAFEITER.make().silence(), telemetry=telemetry
        )
        keepalive = emit_triples(engine, 10)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(telemetry.snapshot()))
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0:UnsafeIter/ere" in out
        assert "dispatch" in out and "emit-batch" in out
        assert "%" in out
        del keepalive

    def test_top_without_attribution_says_so(self, tmp_path, capsys):
        registry = MetricsRegistry()
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["top", str(path)]) == 0
        assert "no attributed samples" in capsys.readouterr().out

    def test_top_limit_truncates_the_table(self, tmp_path, capsys):
        from repro.obs.catalogue import declare
        from repro.obs.metrics import MetricsRegistry as _Registry

        registry = _Registry()
        seconds = declare(registry, "repro_prop_stage_seconds_total")
        samples = declare(registry, "repro_prop_stage_samples_total")
        for k in range(5):
            seconds.labels(f"{k}:Prop/ere", "dispatch").inc(1.0 + k)
            samples.labels(f"{k}:Prop/ere", "dispatch").inc(1)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["top", str(path), "--limit", "2"]) == 0
        assert "... 3 more (raise --limit)" in capsys.readouterr().out


class TestTraceCli:
    def test_record_then_export_round_trip(self, tmp_path, capsys):
        from repro.obs.trace import validate_chrome_trace

        spans_path = tmp_path / "spans.ndjson"
        chrome_path = tmp_path / "chrome.json"
        assert main(
            ["trace", "record", "--scale", "0.02", "--out", str(spans_path)]
        ) == 0
        recorded = capsys.readouterr().out
        assert "spans" in recorded and str(spans_path) in recorded
        assert main(
            ["trace", "export", "--spans", str(spans_path),
             "--out", str(chrome_path)]
        ) == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(chrome_path.read_text())
        validate_chrome_trace(payload)
        assert payload["traceEvents"]
        assert {e["name"] for e in payload["traceEvents"]} >= {
            "service.emit_batch", "shard.drain"
        }

    def test_export_rejects_corrupt_spans(self, tmp_path, capsys):
        bad = tmp_path / "bad.ndjson"
        bad.write_text('{"kind": "span", "name": "s", "ts": -5}\n')
        out = tmp_path / "chrome.json"
        assert main(
            ["trace", "export", "--spans", str(bad), "--out", str(out)]
        ) == 1
        assert "invalid spans" in capsys.readouterr().err
