"""The exposition endpoint and the ``python -m repro.obs`` CLI.

End-to-end over real sockets (loopback, ephemeral ports): the server's
``/metrics`` text parses back to the exact registry values, the JSON
route is byte-equivalent to the snapshot, and the CLI subcommands hit
both routes the way the CI smoke step does.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.obs.__main__ import main
from repro.obs.http import ExpositionServer, parse_exposition
from repro.obs.metrics import MetricsRegistry, render_prometheus


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "events", ("kind",)).labels("a").inc(5)
    registry.counter("demo_total", "events", ("kind",)).labels("b").inc(2)
    registry.gauge("demo_depth", "queue depth").labels().set(3)
    hist = registry.histogram("demo_seconds", "timings", (), (0.1, 1.0)).labels()
    hist.observe(0.05)
    hist.observe(0.5)
    return registry


@pytest.fixture()
def server(registry):
    server = ExpositionServer(registry.snapshot)
    yield server
    server.close()


def fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestExpositionServer:
    def test_metrics_route_round_trips_exact_values(self, registry, server):
        status, body = fetch(f"{server.url}/metrics")
        assert status == 200
        families = parse_exposition(body.decode("utf-8"))
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in families["demo_total"]["samples"]
        )
        assert samples[("demo_total", (("kind", "a"),))] == 5.0
        assert samples[("demo_total", (("kind", "b"),))] == 2.0
        count = [
            s for s in families["demo_seconds"]["samples"] if s[0] == "demo_seconds_count"
        ]
        assert count[0][2] == 2.0

    def test_json_route_is_the_snapshot(self, registry, server):
        status, body = fetch(f"{server.url}/metrics.json")
        assert status == 200
        assert json.loads(body) == json.loads(json.dumps(registry.snapshot()))

    def test_healthz_and_unknown_path(self, server):
        assert fetch(f"{server.url}/healthz")[0] == 200
        assert fetch(f"{server.url}/nope")[0] == 404

    def test_snapshot_failure_is_a_500(self):
        def boom():
            raise RuntimeError("registry gone")

        server = ExpositionServer(boom)
        try:
            assert fetch(f"{server.url}/metrics")[0] == 500
        finally:
            server.close()

    def test_live_updates_visible_without_restart(self, registry, server):
        registry.counter("demo_total", "events", ("kind",)).labels("a").inc(10)
        families = parse_exposition(fetch(f"{server.url}/metrics")[1].decode("utf-8"))
        assert ("demo_total", {"kind": "a"}, 15.0) in families["demo_total"]["samples"]


class TestCli:
    def test_snapshot_from_endpoint_to_file(self, registry, server, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert main(["snapshot", server.url, "-o", str(out)]) == 0
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(registry.snapshot())
        )

    def test_diff_reports_moved_series(self, registry, server, tmp_path, capsys):
        before = tmp_path / "before.json"
        assert main(["snapshot", server.url, "-o", str(before)]) == 0
        registry.counter("demo_total", "events", ("kind",)).labels("a").inc(7)
        assert main(["diff", str(before), server.url]) == 0
        moved = capsys.readouterr().out
        assert "demo_total{a} 5 -> 12 (+7)" in moved

    def test_diff_of_identical_snapshots_says_so(self, registry, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["diff", str(path), str(path)]) == 0
        assert "no series moved" in capsys.readouterr().out

    def test_validate_accepts_rendered_exposition(self, registry, tmp_path, capsys):
        path = tmp_path / "metrics.txt"
        path.write_text(render_prometheus(registry.snapshot()))
        assert main(["validate", str(path)]) == 0
        assert capsys.readouterr().out.startswith("ok: 3 families")

    def test_validate_rejects_corrupt_exposition(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("# TYPE x counter\nx notanumber\n")
        assert main(["validate", str(path)]) == 1
        assert "invalid exposition" in capsys.readouterr().err
