"""Metric primitives: exactness, sampling, snapshots, merging, exposition.

The registry is the telemetry plane's foundation; everything here is a
contract other layers rely on — exact counters under concurrency, the
deterministic sampler the determinism suite pins, snapshot/merge round
trips across process boundaries, and a Prometheus render that the strict
parser accepts back.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.http import parse_exposition
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    Sampler,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.sink import NdjsonSink, read_ndjson
from repro.obs.telemetry import Telemetry, as_telemetry, stats_to_metrics


class TestPrimitives:
    def test_counter_counts_exactly(self):
        child = MetricsRegistry().counter("c_total", "h", ("k",)).labels("a")
        for _ in range(10):
            child.inc()
        child.inc(5)
        assert child.snapshot_value() == 15

    def test_counter_pull_sources_fold_into_snapshot(self):
        child = MetricsRegistry().counter("c_total", "h").labels()
        ticks = Sampler(interval=1)
        child.add_pull(lambda: ticks.ticks)
        child.inc(2)
        for _ in range(7):
            ticks.sample()
        assert child.snapshot_value() == 9  # 2 pushed + 7 pulled

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g", "h").labels()
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.snapshot_value() == 12

    def test_histogram_buckets_and_totals(self):
        hist = MetricsRegistry().histogram("h", "h", (), (1.0, 10.0)).labels()
        for value in (0.5, 1.0, 2.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot_value()
        assert snap["counts"] == [2, 1, 1]  # <=1, <=10, overflow
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(53.5)

    def test_histogram_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "h", (), (2.0, 1.0))


class TestSampler:
    def test_deterministic_one_in_n(self):
        sampler = Sampler(interval=4)
        fired = [i for i in range(16) if sampler.sample()]
        assert fired == [0, 4, 8, 12]
        assert sampler.ticks == 16

    def test_identical_seeds_fire_identically(self):
        a, b = Sampler(interval=7, phase=3), Sampler(interval=7, phase=3)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_phase_decorrelates_owners(self):
        ticks = range(12)
        first = {i for i in ticks if Sampler(4, 0).interval and i % 4 == 0}
        sampler = Sampler(4, 1)
        second = {i for i in ticks if sampler.sample()}
        assert first.isdisjoint(second)

    def test_telemetry_sampler_offset(self):
        telemetry = Telemetry(sample_interval=4, sample_phase=0)
        assert telemetry.sampler(0).phase == 0
        assert telemetry.sampler(1).phase == 1
        assert telemetry.sampler(5).phase == 1  # wraps modulo interval

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Sampler(interval=0)


class TestRegistry:
    def test_declarations_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "h", ("k",))
        assert registry.counter("c_total", "h", ("k",)) is first

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("k",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "h", ("k",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "h", ("other",))

    def test_label_arity_is_checked(self):
        family = MetricsRegistry().counter("c_total", "h", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")

    def test_snapshot_shape_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("k",)).labels("x").inc()
        registry.histogram("h_seconds", "h").labels().observe(0.01)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["c_total"]["series"] == [[["x"], 1]]
        assert snap["h_seconds"]["kind"] == "histogram"


class TestMergeSnapshots:
    def _registry(self, count: int, observation: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("k",)).labels("x").inc(count)
        registry.gauge("g", "h", ("k",)).labels("x").set(count)
        registry.histogram("h_seconds", "h").labels().observe(observation)
        return registry

    def test_counters_histograms_and_gauges_add(self):
        merged = merge_snapshots(
            self._registry(3, 0.001).snapshot(), self._registry(4, 0.002).snapshot()
        )
        assert merged["c_total"]["series"] == [[["x"], 7]]
        assert merged["g"]["series"] == [[["x"], 7]]  # per-shard levels sum
        hist = merged["h_seconds"]["series"][0][1]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.003)

    def test_disjoint_series_union(self):
        left = MetricsRegistry()
        left.counter("c_total", "h", ("k",)).labels("a").inc()
        right = MetricsRegistry()
        right.counter("c_total", "h", ("k",)).labels("b").inc(2)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["c_total"]["series"] == [[["a"], 1], [["b"], 2]]

    def test_inputs_not_mutated(self):
        snap = self._registry(1, 0.001).snapshot()
        before = json.dumps(snap, sort_keys=True)
        merge_snapshots(snap, snap)
        assert json.dumps(snap, sort_keys=True) == before

    def test_conflicting_kinds_raise(self):
        left = MetricsRegistry()
        left.counter("m_total", "h").labels().inc()
        right = MetricsRegistry()
        right.gauge("m_total", "h").labels().set(1)
        with pytest.raises(ValueError):
            merge_snapshots(left.snapshot(), right.snapshot())


class TestExpositionRoundTrip:
    def test_render_parses_back_exactly(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counted things", ("k",)).labels("a b").inc(3)
        registry.gauge("g", "level").labels().set(-2.5)
        hist = registry.histogram("h_seconds", "timings", (), LATENCY_BUCKETS)
        hist.labels().observe(0.002)
        hist.labels().observe(7.0)  # overflow bucket
        families = parse_exposition(render_prometheus(registry.snapshot()))
        assert families["c_total"]["type"] == "counter"
        assert ("c_total", {"k": "a b"}, 3.0) in families["c_total"]["samples"]
        assert ("g", {}, -2.5) in families["g"]["samples"]
        buckets = [
            s for s in families["h_seconds"]["samples"] if s[0] == "h_seconds_bucket"
        ]
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 2.0  # cumulative includes the overflow
        assert ("h_seconds_count", {}, 2.0) in families["h_seconds"]["samples"]

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("k",)).labels('we"ird\\v').inc()
        families = parse_exposition(render_prometheus(registry.snapshot()))
        assert families["c_total"]["samples"][0][1] == {"k": 'we"ird\\v'}

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line at all!\n")
        with pytest.raises(ValueError):
            parse_exposition("orphan_sample 1\n")  # no # TYPE
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x counter\nx notanumber\n")

    def test_render_ends_with_newline(self):
        assert render_prometheus({}).endswith("\n")


class TestTelemetryFacade:
    def test_as_telemetry_normalization(self):
        assert as_telemetry(None) is None
        assert as_telemetry(False) is None
        fresh = as_telemetry(True)
        assert isinstance(fresh, Telemetry)
        assert as_telemetry(fresh) is fresh

    def test_config_round_trip_is_fresh(self):
        telemetry = Telemetry(sample_interval=16, sample_phase=2)
        telemetry.registry.counter("c_total", "h").labels().inc(5)
        rebuilt = Telemetry.from_config(telemetry.config())
        assert rebuilt.sample_interval == 16
        assert rebuilt.sample_phase == 2
        assert rebuilt.snapshot() == {}  # fresh: no inherited counts

    def test_stats_bridge_emits_catalogue_shaped_series(self):
        bridged = stats_to_metrics(
            {
                "Spec/ere": {
                    "events": 10,
                    "monitors_created": 4,
                    "monitors_collected": 1,
                    "live_monitors": 3,
                    "peak_live_monitors": 4,
                    "verdicts": {"match": 2},
                }
            }
        )
        assert bridged["repro_monitor_events_total"]["series"] == [[["Spec/ere"], 10]]
        assert bridged["repro_monitor_verdicts_total"]["series"] == [
            [["Spec/ere", "match"], 2]
        ]
        # Mergeable with a live registry snapshot (same schema).
        live = MetricsRegistry()
        live.counter(
            "repro_monitor_events_total", "E", ("property",)
        ).labels("Spec/ere").inc(5)
        merged = merge_snapshots(live.snapshot(), bridged)
        assert merged["repro_monitor_events_total"]["series"] == [[["Spec/ere"], 15]]


class TestNdjsonSink:
    def test_metrics_and_trace_records_round_trip(self, tmp_path):
        path = tmp_path / "run.ndjson"
        registry = MetricsRegistry()
        registry.counter("c_total", "h").labels().inc(3)
        clock = iter([1.0, 2.0]).__next__
        with NdjsonSink(path, clock=clock) as sink:
            sink.write_metrics(registry.snapshot(), label="mid-run")
            sink.write_trace("checkpoint", seq=42)
        records = list(read_ndjson(path))
        assert [r["kind"] for r in records] == ["metrics", "trace"]
        assert records[0]["label"] == "mid-run"
        assert records[0]["snapshot"]["c_total"]["series"] == [[[], 3]]
        assert records[1] == {"kind": "trace", "at": 2.0, "event": "checkpoint", "seq": 42}

    def test_closed_sink_refuses_writes(self, tmp_path):
        sink = NdjsonSink(tmp_path / "x.ndjson")
        sink.close()
        with pytest.raises(ValueError):
            sink.write_trace("late")
