"""Verdict provenance: every verdict names the WAL slice that reproduces it.

The acceptance contract of the telemetry plane's time-travel side: a
durable run stamps each verdict with (property, slot, WAL segment, seq,
checkpoint floor); ``extract_slice`` pulls exactly that range back out,
``replay_verdict``/``verify_verdict`` reproduce the verdict from it —
including through a checkpoint whose older segments were pruned — and
the sharded service prepends the shard that fired it.  All of it holds
with telemetry off: provenance is correctness metadata, not a metric.
"""

from __future__ import annotations

import json

from repro.obs.__main__ import main
from repro.obs.provenance import (
    binding_symbols,
    extract_slice,
    replay_verdict,
    verify_verdict,
)
from repro.persist.recovery import DurableEngine
from repro.properties import UNSAFEITER
from repro.service import MonitorService

from ..conftest import Obj


class _Capture:
    """Collect (category, provenance, symbolic binding) per engine verdict."""

    def __init__(self):
        self.verdicts = []
        self.registry = None  # set once the DurableEngine exists

    def __call__(self, prop, verdict, monitor):
        self.verdicts.append(
            (
                verdict,
                dict(monitor.provenance),
                binding_symbols(self.registry, monitor.binding()),
            )
        )


def durable_run(tmp_path, triples=3, checkpoint_after=None, **kwargs):
    """Run UnsafeIter triples through a DurableEngine; return capture + dir.

    Each triple (create, update, next over fresh objects) fires exactly
    one ``match``.  ``checkpoint_after`` checkpoints after that many
    triples, exercising the restore-then-replay provenance path.
    """
    directory = tmp_path / "wal"
    capture = _Capture()
    durable = DurableEngine(
        UNSAFEITER.make().silence(),
        directory,
        gc="coenable",
        on_verdict=capture,
        checkpoint_every=10_000,
        **kwargs,
    )
    capture.registry = durable.registry
    keepalive = []
    for k in range(triples):
        c, i = Obj(f"c{k}"), Obj(f"i{k}")
        keepalive.append((c, i))
        durable.emit("create", c=c, i=i)
        durable.emit("update", c=c)
        durable.emit("next", i=i)
        if checkpoint_after is not None and k + 1 == checkpoint_after:
            durable.checkpoint()
    durable.close()
    del keepalive
    return capture, directory


class TestStamping:
    def test_provenance_names_the_triggering_event(self, tmp_path):
        capture, _ = durable_run(tmp_path, triples=3)
        assert len(capture.verdicts) == 3
        for index, (category, provenance, binding) in enumerate(capture.verdicts):
            assert category == "match"
            assert provenance["property"] == "UnsafeIter"
            assert provenance["formalism"] == "ere"
            assert provenance["slot"] == 0
            # Write-ahead: the k-th triple's verdict fires on its 3rd event.
            assert provenance["seq"] == 3 * (index + 1)
            assert provenance["first_seq"] == 0
            # Symbols are allocated by the WAL's SymbolRegistry in first-seen
            # order: the k-th triple binds (o<2k+1>, o<2k+2>).
            assert binding == {"c": f"o{2 * index + 1}", "i": f"o{2 * index + 2}"}

    def test_stamped_with_telemetry_off(self, tmp_path):
        capture, _ = durable_run(tmp_path, triples=1)  # no telemetry= anywhere
        _, provenance, _ = capture.verdicts[0]
        assert {"segment", "seq", "first_seq", "slot"} <= set(provenance)

    def test_service_prepends_the_firing_shard(self):
        records = []
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=3,
            mode="inline",
            on_verdict=records.append,
        )
        keepalive = []
        with service:
            for k in range(6):
                c, i = Obj(f"c{k}"), Obj(f"i{k}")
                keepalive.append((c, i))
                service.emit("create", c=c, i=i)
                service.emit("update", c=c)
                service.emit("next", i=i)
            service.drain()
        assert len(records) == 6
        for record in records:
            assert record.provenance["shard"] in range(3)
            assert record.provenance["property"] == "UnsafeIter"
        del keepalive


class TestSliceAndReplay:
    def test_extract_slice_ends_at_the_triggering_event(self, tmp_path):
        capture, directory = durable_run(tmp_path, triples=3)
        _, provenance, _ = capture.verdicts[1]  # seq 6
        records = extract_slice(directory, provenance)
        assert [seq for seq, _, _ in records] == [1, 2, 3, 4, 5, 6]
        seq, kind, payload = records[-1]
        assert (seq, kind, payload[0]) == (6, "event", "next")

    def test_replay_reproduces_every_verdict(self, tmp_path):
        capture, directory = durable_run(tmp_path, triples=3)
        for category, provenance, binding in capture.verdicts:
            assert verify_verdict(
                directory,
                provenance,
                UNSAFEITER.make().silence(),
                category,
                binding,
                gc="coenable",
            )

    def test_wrong_binding_or_category_fails_verification(self, tmp_path):
        capture, directory = durable_run(tmp_path, triples=2)
        category, provenance, binding = capture.verdicts[0]
        specs = UNSAFEITER.make().silence()
        assert not verify_verdict(
            directory, provenance, specs, category, {"c": "c1", "i": "i1"}
        )
        assert not verify_verdict(directory, provenance, specs, "fail", binding)

    def test_replay_through_a_pruning_checkpoint(self, tmp_path):
        capture, directory = durable_run(
            tmp_path, triples=4, checkpoint_after=2, prune_on_checkpoint=True,
            segment_events=3,
        )
        category, provenance, binding = capture.verdicts[-1]
        assert provenance["first_seq"] == 6  # the checkpoint floor
        # Pre-checkpoint verdicts were stamped before the floor existed...
        assert capture.verdicts[0][1]["first_seq"] == 0
        # ...but the post-checkpoint one replays from the snapshot alone.
        assert verify_verdict(
            directory,
            provenance,
            UNSAFEITER.make().silence(),
            category,
            binding,
            gc="coenable",
        )

    def test_replay_verdict_returns_symbolic_bindings(self, tmp_path):
        capture, directory = durable_run(tmp_path, triples=2)
        _, provenance, _ = capture.verdicts[1]
        replayed = replay_verdict(
            directory, provenance, UNSAFEITER.make().silence(), gc="coenable"
        )
        assert ("UnsafeIter", "ere", "match", {"c": "o3", "i": "o4"}) in replayed


class TestCliSlice:
    def test_slice_prints_the_range_as_json_lines(self, tmp_path, capsys):
        capture, directory = durable_run(tmp_path, triples=2)
        _, provenance, _ = capture.verdicts[0]
        rc = main(
            ["slice", "--wal", str(directory), "--seq", str(provenance["seq"])]
        )
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [line["seq"] for line in lines] == [1, 2, 3]
        assert lines[-1]["event"] == "next"

    def test_empty_range_hints_and_fails(self, tmp_path, capsys):
        _, directory = durable_run(tmp_path, triples=1)
        rc = main(
            ["slice", "--wal", str(directory), "--seq", "99", "--first-seq", "98"]
        )
        assert rc == 1
        assert "was the WAL synced?" in capsys.readouterr().err
