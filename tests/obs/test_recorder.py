"""The flight recorder: bounded ring, triggered dumps, replayable postmortems.

Covers the recorder half of the trace plane: the lock-guarded ring and
its triggers (verdict burst with cooldown, queue saturation, worker
exception), the per-instance engine wrappers behind
``enable_flight_recorder`` (default-off hot paths stay byte-identical),
and the acceptance criterion — a triggered dump on a durable engine
carries WAL refs from which :func:`replay_dump_verdict` reproduces the
triggering verdict through ``repro.obs.provenance``.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ReproError, ServiceError
from repro.obs.recorder import FlightRecorder, replay_dump_verdict
from repro.persist.recovery import DurableEngine
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine
from repro.service import MonitorService

from ..conftest import Obj
from .test_attribution import emit_triples


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRing:
    def test_ring_is_bounded_oldest_first(self):
        recorder = FlightRecorder(capacity=4, clock=FakeClock())
        for k in range(10):
            recorder.record("event", k=k)
        assert len(recorder) == 4
        assert [entry["k"] for entry in recorder.snapshot()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_record_event_makes_params_json_safe(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record_event("create", {"c": Obj("c0"), "n": 3}, wal={"seq": 7})
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "event"
        assert entry["params"]["n"] == 3
        assert isinstance(entry["params"]["c"], str)  # repr stand-in, not the object
        assert entry["wal"] == {"seq": 7}


class _Prop:
    spec_name = "UnsafeIter"
    formalism = "ere"


class TestTriggers:
    def test_manual_trigger_dumps_ring_and_context(self):
        clock = FakeClock()
        recorder = FlightRecorder(clock=clock)
        recorder.record("event", k=1)
        dump = recorder.trigger("queue-saturation", shard=2)
        assert dump["reason"] == "queue-saturation"
        assert dump["at"] == clock.now
        assert dump["context"] == {"shard": 2}
        assert [e["kind"] for e in dump["entries"]] == ["event"]
        assert recorder.dumps == [dump]

    def test_cooldown_suppresses_repeat_dumps_per_reason(self):
        clock = FakeClock()
        recorder = FlightRecorder(clock=clock, cooldown=5.0)
        assert recorder.trigger("queue-saturation") is not None
        assert recorder.trigger("queue-saturation") is None  # inside cooldown
        assert recorder.trigger("worker-exception") is not None  # other reason
        clock.now += 5.0
        assert recorder.trigger("queue-saturation") is not None
        assert len(recorder.dumps) == 3

    def test_verdict_burst_trigger_and_on_dump_hook(self):
        clock = FakeClock()
        seen = []
        recorder = FlightRecorder(
            clock=clock, burst_count=3, burst_window=1.0, on_dump=seen.append
        )
        prop = _Prop()

        class _Mon:
            provenance = {"property": "UnsafeIter", "slot": 0, "seq": 3}

            def binding(self):
                return {"c": Obj("c0")}

        dumps = []
        for k in range(3):
            clock.now += 0.1  # three verdicts inside one second
            dumps.append(recorder.record_verdict(prop, "match", _Mon()))
        assert dumps[0] is None and dumps[1] is None
        burst = dumps[2]
        assert burst is not None and burst["reason"] == "verdict-burst"
        assert burst["context"]["verdict"]["category"] == "match"
        assert seen == [burst]

    def test_slow_verdicts_never_burst(self):
        clock = FakeClock()
        recorder = FlightRecorder(clock=clock, burst_count=3, burst_window=1.0)
        prop = _Prop()

        class _Mon:
            provenance = None

            def binding(self):
                return {}

        for _ in range(10):
            clock.now += 2.0  # always outside the window
            assert recorder.record_verdict(prop, "match", _Mon()) is None
        assert recorder.dumps == []

    def test_wal_refs_deduplicate_across_entries(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record_event("a", {}, wal={"segment": 0, "seq": 1, "first_seq": 0})
        recorder.record_event("b", {}, wal={"segment": 0, "seq": 1, "first_seq": 0})
        recorder.record_event("c", {}, wal={"segment": 0, "seq": 2, "first_seq": 0})
        dump = recorder.trigger("test")
        assert [ref["seq"] for ref in dump["wal_refs"]] == [1, 2]


class TestEngineIntegration:
    def test_wrappers_record_events_deaths_and_registry_ops(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence(), gc="coenable")
        recorder = engine.enable_flight_recorder()
        keepalive = emit_triples(engine, 2)
        engine.detach_property(0)
        kinds = [entry["kind"] for entry in recorder.snapshot()]
        assert kinds.count("event") == 6
        assert "registry-op" in kinds
        verdicts = [e for e in recorder.snapshot() if e["kind"] == "verdict"]
        assert len(verdicts) == 2
        assert all(v["property"] == "UnsafeIter" for v in verdicts)
        del keepalive

    def test_default_off_installs_nothing(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence())
        assert engine.flight_recorder is None
        assert "emit" not in vars(engine)

    def test_double_enable_raises(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence())
        engine.enable_flight_recorder()
        with pytest.raises(ValueError):
            engine.enable_flight_recorder()


class TestDurableReplay:
    def test_triggered_dump_replays_through_provenance(self, tmp_path):
        """The acceptance path: burst dump -> WAL refs -> replayed verdict."""
        directory = tmp_path / "wal"
        durable = DurableEngine(
            UNSAFEITER.make().silence(),
            directory,
            gc="coenable",
            checkpoint_every=10_000,
        )
        recorder = durable.enable_flight_recorder(
            FlightRecorder(burst_count=2, burst_window=60.0)
        )
        keepalive = emit_triples(durable, 3)
        durable.close()  # syncs the WAL the dump's refs point into
        del keepalive

        assert recorder.dumps, "burst trigger never fired"
        dump = recorder.dumps[0]
        assert dump["reason"] == "verdict-burst"
        # Dumped events and verdicts carry durable WAL coordinates.
        assert dump["wal_refs"]
        triggering = dump["context"]["verdict"]
        assert triggering["provenance"]["seq"] in {ref["seq"] for ref in dump["wal_refs"]}

        replayed = replay_dump_verdict(
            directory, dump, UNSAFEITER.make().silence(), gc="coenable"
        )
        # The burst fires on the 2nd verdict (seq 6), whose triple bound the
        # WAL symbols (o3, o4); replay reports WAL-symbolic bindings.
        assert triggering["provenance"]["seq"] == 6
        assert ("UnsafeIter", "ere", "match", {"c": "o3", "i": "o4"}) in replayed

    def test_replay_refuses_dumps_without_wal_coordinates(self, tmp_path):
        engine = MonitoringEngine(UNSAFEITER.make().silence(), gc="coenable")
        recorder = engine.enable_flight_recorder(FlightRecorder(burst_count=1))
        keepalive = emit_triples(engine, 1)
        assert recorder.dumps
        with pytest.raises(ValueError, match="WAL"):
            replay_dump_verdict(
                tmp_path, recorder.dumps[0], UNSAFEITER.make().silence()
            )
        del keepalive

    def test_replay_requires_a_verdict_entry(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("event", k=1)
        dump = recorder.trigger("queue-saturation")
        with pytest.raises(ValueError, match="no verdict"):
            replay_dump_verdict(tmp_path, dump, UNSAFEITER.make().silence())


class TestServiceTriggers:
    def test_queue_saturation_dump_in_thread_mode(self):
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=1,
            queue_capacity=1,
            flight_recorder=True,
        )
        keepalive = emit_triples(service, 100)
        service.drain()
        service.close()
        reasons = {d["reason"] for d in service.flight_recorder_dumps()}
        assert "queue-saturation" in reasons
        del keepalive

    def test_worker_exception_dump_in_thread_mode(self):
        def explode(record):
            raise RuntimeError("boom in verdict callback")

        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=1,
            on_verdict=explode,
            flight_recorder=True,
        )
        keepalive = emit_triples(service, 2)
        with pytest.raises(ServiceError):
            service.drain()
        dumps = service.flight_recorder_dumps()
        assert any(d["reason"] == "worker-exception" for d in dumps)
        crash = next(d for d in dumps if d["reason"] == "worker-exception")
        assert "boom" in crash["context"]["error"]
        del keepalive


class TestLiveSession:
    def test_session_forwards_to_a_capable_sink(self):
        from repro.instrument.live import LiveSession

        session = LiveSession(
            properties=UNSAFEITER.make().silence(), gc="coenable"
        )
        recorder = session.enable_flight_recorder()
        with session:
            c, i = Obj("c0"), Obj("i0")
            session.emit("create", c=c, i=i)
            session.emit("update", c=c)
            session.emit("next", i=i)
        assert any(e["kind"] == "verdict" for e in recorder.snapshot())

    def test_session_rejects_incapable_sinks(self):
        from repro.instrument.live import LiveSession

        class _Sink:
            def emit(self, event, **params):
                pass

        session = LiveSession(sink=_Sink())
        with pytest.raises(ReproError, match="flight recorder"):
            session.enable_flight_recorder()
