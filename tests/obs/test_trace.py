"""Structured spans: the Tracer ring, Chrome export, and service wiring.

Covers the span half of the trace plane: the bounded thread-safe
:class:`Tracer`, cross-buffer stitching via :func:`merge_spans`, the
Chrome trace-event export and its schema validator (the acceptance
criterion — an exported trace validates against the trace-event schema),
the NDJSON at-rest format, and the three service span sites
(``service.emit_batch``, ``shard.drain``, ``service.verdict_merge``)
in thread and process mode — process workers ship their buffers back
over the snapshot channel, so a merged trace spans multiple pids.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.workloads import WORKLOADS, record_workload_events
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    Tracer,
    merge_spans,
    read_spans_ndjson,
    spans_to_chrome,
    validate_chrome_trace,
    write_spans_ndjson,
)
from repro.properties import UNSAFEITER
from repro.service import MonitorService
from repro.service.service import ingest_symbolic

from .test_attribution import emit_triples


class TestTracer:
    def test_record_stores_microsecond_units(self):
        tracer = Tracer()
        span = tracer.record(
            "site", "service", start=10.0, duration=0.25, shard=3
        )
        assert span["ts"] == 10.0 * 1e6
        assert span["dur"] == 0.25 * 1e6
        assert span["args"] == {"shard": 3}
        assert len(tracer) == 1
        assert tracer.snapshot() == [span]

    def test_negative_duration_is_clamped(self):
        tracer = Tracer()
        assert tracer.record("s", start=1.0, duration=-5.0)["dur"] == 0.0

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=8)
        for k in range(20):
            tracer.record("s", start=float(k), duration=0.0, k=k)
        assert len(tracer) == 8
        assert [s["args"]["k"] for s in tracer.snapshot()] == list(range(12, 20))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_span_context_manager_times_its_body(self):
        tracer = Tracer()
        with tracer.span("work", "test", batch=7):
            pass
        (span,) = tracer.snapshot()
        assert span["name"] == "work"
        assert span["args"] == {"batch": 7}
        assert span["dur"] >= 0.0

    def test_merge_spans_orders_by_timestamp(self):
        a, b = Tracer(), Tracer()
        a.record("late", start=2.0, duration=0.0)
        b.record("early", start=1.0, duration=0.0)
        b.record("middle", start=1.5, duration=0.0)
        merged = merge_spans(a.snapshot(), b.snapshot())
        assert [s["name"] for s in merged] == ["early", "middle", "late"]


class TestChromeExport:
    def test_spans_become_complete_duration_events(self):
        tracer = Tracer()
        tracer.record("site", "service", start=1.0, duration=0.5, shard=0)
        payload = spans_to_chrome(tracer.snapshot())
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "site"
        assert event["ts"] == 1.0 * 1e6
        assert event["dur"] == 0.5 * 1e6
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        # The export self-validates; the loader's check must agree.
        validate_chrome_trace(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            [],  # not an object
            {"traceEvents": "nope"},  # events not an array
            {"traceEvents": [{"ph": "X", "ts": 0, "pid": 0, "tid": 0}]},  # no name
            {"traceEvents": [{"name": "s", "ph": "Q", "ts": 0, "pid": 0, "tid": 0}]},
            {"traceEvents": [{"name": "s", "ph": "X", "ts": -1, "pid": 0, "tid": 0}]},
            {"traceEvents": [{"name": "s", "ph": "X", "ts": 0, "pid": 0.5, "tid": 0}]},
            {"traceEvents": [{"name": "s", "ph": "X", "ts": 0, "pid": 0, "tid": 0, "args": 3}]},
        ],
    )
    def test_validator_rejects_malformed_payloads(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)

    def test_ndjson_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", start=1.0, duration=0.1, shard=0)
        tracer.record("b", start=2.0, duration=0.2, batch=1)
        path = str(tmp_path / "spans.ndjson")
        assert write_spans_ndjson(tracer.snapshot(), path) == 2
        assert read_spans_ndjson(path) == tracer.snapshot()

    def test_ndjson_lines_are_tagged_and_blank_tolerant(self):
        tracer = Tracer()
        tracer.record("a", start=1.0, duration=0.0)
        buffer = io.StringIO()
        write_spans_ndjson(tracer.snapshot(), buffer)
        line = buffer.getvalue().splitlines()[0]
        assert json.loads(line)["kind"] == "span"
        assert read_spans_ndjson(io.StringIO("\n" + line + "\n\n")) == tracer.snapshot()


class TestServiceSpans:
    def test_thread_mode_records_all_three_sites(self):
        service = MonitorService(
            UNSAFEITER.make().silence(), shards=2, telemetry=Telemetry(trace=True)
        )
        keepalive = emit_triples(service, 30)
        service.drain()
        spans = service.trace_spans()
        service.close()
        names = {span["name"] for span in spans}
        assert {"service.emit_batch", "shard.drain", "service.verdict_merge"} <= names
        assert spans == sorted(spans, key=lambda s: (s["ts"], s["pid"], s["tid"]))
        # Spans are metered into the catalogue as they are recorded.
        snap = service.metrics_snapshot()
        sites = {tuple(key): value for key, value in snap["repro_trace_spans_total"]["series"]}
        assert sites[("service.emit_batch",)] > 0
        del keepalive

    def test_no_tracer_means_no_spans(self):
        service = MonitorService(UNSAFEITER.make().silence(), shards=2)
        keepalive = emit_triples(service, 5)
        service.drain()
        assert service.trace_spans() == []
        service.close()
        del keepalive

    def test_process_mode_ships_worker_buffers_across_pids(self):
        entries = record_workload_events(
            WORKLOADS["bloat"].scaled(0.02), [UNSAFEITER]
        )
        service = MonitorService(
            UNSAFEITER.make().silence(),
            shards=2,
            mode="process",
            telemetry=Telemetry(trace=True),
        )
        try:
            ingest_symbolic(service, entries)
            service.drain()
            live = service.trace_spans()
        finally:
            service.close()
        after_close = service.trace_spans()
        for spans in (live, after_close):
            pids = {span["pid"] for span in spans}
            assert len(pids) >= 2  # parent + at least one forked worker
            assert {s["name"] for s in spans} >= {
                "service.emit_batch", "shard.drain"
            }
        # The merged buffer exports as a valid Chrome trace end-to-end.
        payload = spans_to_chrome(after_close)
        assert payload["traceEvents"]
