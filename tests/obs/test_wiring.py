"""Per-layer telemetry wiring: the right series move by the right amounts.

Each layer's instrumentation is interposed per instance when (and only
when) a ``Telemetry`` is passed; these tests pin the observable contract
per layer — exact counters exact, sampled timers firing at interval 1,
and ``telemetry=None`` leaving the registry out of the picture entirely.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import Telemetry
from repro.persist.recovery import DurableEngine
from repro.properties import UNSAFEITER
from repro.runtime.engine import MonitoringEngine

from ..conftest import Obj


def series_sum(snapshot, name):
    return sum(value for _, value in snapshot.get(name, {"series": []})["series"])


def series(snapshot, name, *labels):
    for key, value in snapshot[name]["series"]:
        if tuple(key) == labels:
            return value
    raise AssertionError(f"{name}{labels!r} not in snapshot")


def emit_triples(target, n):
    """Drive n UnsafeIter create/update/next triples; returns keepalives."""
    keepalive = []
    for k in range(n):
        c, i = Obj(f"c{k}"), Obj(f"i{k}")
        keepalive.append((c, i))
        target.emit("create", c=c, i=i)
        target.emit("update", c=c)
        target.emit("next", i=i)
    return keepalive


def sample_everything():
    """A telemetry plane whose samplers fire on every tick."""
    return Telemetry(sample_interval=1)


class TestEngineWiring:
    def test_handled_counter_is_exact(self):
        telemetry = sample_everything()
        engine = MonitoringEngine(UNSAFEITER.make().silence(), telemetry=telemetry)
        keepalive = emit_triples(engine, 25)
        snap = telemetry.snapshot()
        assert series(snap, "repro_engine_handled_total", "UnsafeIter/ere") == 75
        del keepalive

    def test_sampled_latency_labels_property_and_event(self):
        telemetry = sample_everything()
        engine = MonitoringEngine(UNSAFEITER.make().silence(), telemetry=telemetry)
        keepalive = emit_triples(engine, 10)
        snap = telemetry.snapshot()
        by_event = {
            tuple(key): value["count"]
            for key, value in snap["repro_engine_event_seconds"]["series"]
        }
        assert by_event == {
            ("UnsafeIter/ere", "create"): 10,
            ("UnsafeIter/ere", "update"): 10,
            ("UnsafeIter/ere", "next"): 10,
        }
        del keepalive

    def test_default_sampling_observes_one_in_n(self):
        telemetry = Telemetry(sample_interval=8)
        engine = MonitoringEngine(UNSAFEITER.make().silence(), telemetry=telemetry)
        keepalive = emit_triples(engine, 16)  # 48 events -> 6 sampled
        snap = telemetry.snapshot()
        assert series(snap, "repro_engine_handled_total", "UnsafeIter/ere") == 48
        assert (
            sum(
                value["count"]
                for _, value in snap["repro_engine_event_seconds"]["series"]
            )
            == 6
        )
        del keepalive

    def test_batch_paths_record_batch_sizes(self):
        telemetry = sample_everything()
        engine = MonitoringEngine(UNSAFEITER.make().silence(), telemetry=telemetry)
        c, i = Obj("c"), Obj("i")
        engine.emit_batch(
            [("create", {"c": c, "i": i}), ("update", {"c": c}), ("next", {"i": i})]
        )
        snap = telemetry.snapshot()
        emit_hist = series(snap, "repro_engine_batch_size", "emit")
        assert emit_hist["count"] == 1
        assert emit_hist["sum"] == 3.0
        del c, i

    def test_gc_purge_pause_observed_on_deaths(self):
        telemetry = sample_everything()
        engine = MonitoringEngine(
            UNSAFEITER.make().silence(),
            gc="coenable",
            propagation="eager",  # lazy GC never calls collect_deaths
            telemetry=telemetry,
        )
        keepalive = emit_triples(engine, 4)
        del keepalive
        import gc as _gc

        _gc.collect()
        engine.emit("update", c=Obj("fresh"))  # death boundary -> purge
        snap = telemetry.snapshot()
        phases = {
            tuple(key): value["count"]
            for key, value in snap["repro_engine_gc_pause_seconds"]["series"]
        }
        assert phases.get(("UnsafeIter/ere", "purge"), 0) >= 1

    def test_telemetry_none_records_nothing(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence())
        keepalive = emit_triples(engine, 5)
        assert engine.telemetry is None
        snap = engine.metrics_snapshot()
        # Only the stats-derived series exist; no live registry families.
        assert all(name.startswith("repro_monitor_") for name in snap)
        assert series(snap, "repro_monitor_events_total", "UnsafeIter/ere") == 15
        del keepalive

    def test_enable_telemetry_retrofits_a_running_engine(self):
        engine = MonitoringEngine(UNSAFEITER.make().silence())
        keepalive = emit_triples(engine, 3)
        telemetry = engine.enable_telemetry(sample_everything())
        keepalive += emit_triples(engine, 2)
        # Counts start at attachment time; stats cover the whole run.
        snap = engine.metrics_snapshot()
        assert series(snap, "repro_engine_handled_total", "UnsafeIter/ere") == 6
        assert series(snap, "repro_monitor_events_total", "UnsafeIter/ere") == 15
        with pytest.raises(ValueError):
            engine.enable_telemetry(telemetry)
        del keepalive


class TestPersistWiring:
    def _durable(self, tmp_path, telemetry, **kwargs):
        return DurableEngine(
            UNSAFEITER.make().silence(),
            tmp_path / "wal",
            gc="coenable",
            telemetry=telemetry,
            **kwargs,
        )

    def test_wal_appends_and_fsyncs_counted(self, tmp_path):
        telemetry = sample_everything()
        durable = self._durable(tmp_path, telemetry, fsync_interval=5)
        keepalive = emit_triples(durable, 10)
        durable.wal.sync()
        snap = telemetry.snapshot()
        assert series(snap, "repro_wal_appends_total") == 30
        assert series(snap, "repro_wal_append_seconds")["count"] == 30
        assert series(snap, "repro_wal_fsync_seconds")["count"] >= 6
        durable.close()
        del keepalive

    def test_rotation_and_checkpoint_timed(self, tmp_path):
        telemetry = sample_everything()
        durable = self._durable(
            tmp_path, telemetry, segment_events=7, checkpoint_every=12
        )
        keepalive = emit_triples(durable, 10)
        durable.checkpoint()
        snap = telemetry.snapshot()
        assert series(snap, "repro_wal_rotation_seconds")["count"] >= 3
        assert series(snap, "repro_persist_checkpoint_seconds")["count"] >= 2
        durable.close()
        del keepalive

    def test_recover_times_restore_and_rewires_engine(self, tmp_path):
        durable = self._durable(tmp_path, None)
        keepalive = emit_triples(durable, 6)
        durable.close()
        telemetry = sample_everything()
        recovered, _tokens = DurableEngine.recover(
            UNSAFEITER.make().silence(), tmp_path / "wal", telemetry=telemetry
        )
        keepalive += emit_triples(recovered, 2)
        snap = telemetry.snapshot()
        assert series(snap, "repro_persist_restore_seconds")["count"] == 1
        # The recovered engine is live-instrumented: 3 replayed + 3 fresh...
        assert series(snap, "repro_wal_appends_total") == 6
        assert series(snap, "repro_engine_handled_total", "UnsafeIter/ere") >= 6
        recovered.close()
        del keepalive


class TestLiveWiring:
    def test_live_event_counters_exact_and_engine_shares_registry(self):
        from repro.instrument.live import LiveSession

        telemetry = sample_everything()
        with LiveSession(
            properties=["unsafeiter"], telemetry=telemetry, system="rv"
        ) as session:
            keepalive = emit_triples(session, 8)
            snap = telemetry.snapshot()
        assert series(snap, "repro_live_events_total", "create") == 8
        assert series(snap, "repro_live_events_total", "update") == 8
        assert series(snap, "repro_live_events_total", "next") == 8
        # The session-built engine inherited the same telemetry plane.
        assert series(snap, "repro_engine_handled_total", "UnsafeIter/ere") == 24
        pointcut = sum(
            value["count"]
            for _, value in snap["repro_live_pointcut_seconds"]["series"]
        )
        assert pointcut == 24  # interval 1: every woven event timed
        del keepalive

    def test_live_sampling_defaults_leave_counters_exact(self):
        from repro.instrument.live import LiveSession

        telemetry = Telemetry(sample_interval=16)
        with LiveSession(
            properties=["unsafeiter"], telemetry=telemetry, system="rv"
        ) as session:
            keepalive = emit_triples(session, 8)
            snap = telemetry.snapshot()
        assert series_sum(snap, "repro_live_events_total") == 24  # exact
        timed = sum(
            value["count"]
            for _, value in snap.get(
                "repro_live_pointcut_seconds", {"series": []}
            )["series"]
        )
        assert timed == 2  # 24 events, 1-in-16 sampling
        del keepalive
