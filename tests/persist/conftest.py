"""Shared helpers for the persistence test suite."""

from __future__ import annotations

import random
import zlib
from collections import Counter

#: Small symbol pools so bindings collide and the creation/suppression,
#: join, and GC paths all fire.
POOL = 4
EVENTS = 300


def synth_entries(definition, seed: int, events: int = EVENTS, pool: int = POOL):
    """A reproducible symbolic trace over a specification's alphabet."""
    rng = random.Random(seed)
    alphabet = sorted(definition.alphabet)
    entries = []
    for _ in range(events):
        event = rng.choice(alphabet)
        entries.append(
            (
                event,
                {
                    param: f"{param}{rng.randrange(pool)}"
                    for param in definition.params_of(event)
                },
            )
        )
    return entries


def seed_for(key: str, salt: str = "") -> int:
    """Hash-randomization-proof deterministic seed."""
    return zlib.crc32(f"{key}/{salt}".encode())


def symbolic_verdict_key(prop, category, monitor):
    """Engine-callback verdict identity keyed by trace symbols.

    Symbols survive snapshot/restore while object ids do not, so two runs
    over re-materialized tokens stay comparable.
    """
    pairs = [
        (name, getattr(value, "symbol", value))
        for name, value in monitor.binding().items()
    ]
    return (prop.spec_name, prop.formalism, category, tuple(sorted(pairs)))


def symbolic_record_key(record):
    """Service-callback (VerdictRecord) analog of :func:`symbolic_verdict_key`."""
    pairs = [(name, getattr(value, "symbol", value)) for name, value in record.binding]
    return (record.spec_name, record.formalism, record.category, tuple(sorted(pairs)))


def verdict_counter():
    """A Counter plus an engine ``on_verdict`` feeding it symbolically."""
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        verdicts[symbolic_verdict_key(prop, category, monitor)] += 1

    return verdicts, on_verdict
