"""Snapshot codec unit tests: format, identity checks, state fidelity."""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import PersistError
from repro.formalism.raw import functional_template
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.instance import MonitorInstance
from repro.runtime.refs import ParamRef, SymbolRegistry
from repro.runtime.tracelog import replay_entries
from repro.persist import (
    SNAPSHOT_VERSION,
    restore_engine,
    restore_into,
    snapshot_engine,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""

VARIANT = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update* next
  @match
}
"""


def make_engine(source=UNSAFEITER, **kwargs):
    return MonitoringEngine(compile_spec(source).silence(), **kwargs)


class TestContainer:
    def test_bytes_round_trip(self):
        engine = make_engine()
        engine.emit("create", c=Obj("c"), i=Obj("i"))
        snapshot = snapshot_engine(engine)
        assert snapshot_from_bytes(snapshot_to_bytes(snapshot)) == snapshot

    def test_bad_magic_rejected(self):
        with pytest.raises(PersistError, match="magic"):
            snapshot_from_bytes(b"not a snapshot")

    def test_corrupt_payload_rejected(self):
        engine = make_engine()
        data = snapshot_to_bytes(snapshot_engine(engine))
        with pytest.raises(PersistError, match="corrupt"):
            snapshot_from_bytes(data[:-4] + b"zzzz")

    def test_unsupported_version_rejected(self):
        engine = make_engine()
        snapshot = snapshot_engine(engine)
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(PersistError, match="version"):
            restore_engine(snapshot, compile_spec(UNSAFEITER).silence())

    def test_config_recorded(self):
        engine = make_engine(gc="alldead", propagation="eager", scan_budget=5)
        snapshot = snapshot_engine(engine)
        assert snapshot["engine"] == {
            "gc": "alldead",
            "propagation": "eager",
            "scan_budget": 5,
        }


class TestPropertyIdentity:
    def test_changed_semantics_rejected(self):
        engine = make_engine()
        snapshot = snapshot_engine(engine)
        with pytest.raises(PersistError, match="fingerprint"):
            restore_engine(snapshot, compile_spec(VARIANT).silence())

    def test_wrong_property_count_rejected(self):
        engine = make_engine()
        snapshot = snapshot_engine(engine)
        hasnext = ALL_PROPERTIES["hasnext"].make().silence()
        with pytest.raises(PersistError, match="properties"):
            restore_engine(snapshot, [compile_spec(UNSAFEITER).silence(), hasnext])

    def test_same_source_recompiled_accepted(self):
        engine = make_engine()
        c, i = Obj("c"), Obj("i")
        engine.emit("create", c=c, i=i)
        restored, _ = restore_engine(
            snapshot_engine(engine), compile_spec(UNSAFEITER).silence()
        )
        assert restored.total_live_monitors() == 1
        del c, i

    def test_restore_into_requires_virgin_engine(self):
        engine = make_engine()
        snapshot = snapshot_engine(engine)
        used = make_engine()
        used.emit("update", c=Obj("c"))
        with pytest.raises(PersistError, match="already processed"):
            restore_into(used, snapshot)

    def test_restore_into_requires_matching_config(self):
        engine = make_engine(gc="coenable")
        snapshot = snapshot_engine(engine)
        other = make_engine(gc="alldead")
        with pytest.raises(PersistError, match="configuration"):
            restore_into(other, snapshot)


class TestStateFidelity:
    def test_dead_parameters_stay_dead(self):
        engine = make_engine(gc="none")
        c = Obj("c")
        engine.emit("create", c=c, i=Obj("i-dies"))
        gc.collect()
        restored, tokens = restore_engine(
            snapshot_engine(engine), compile_spec(UNSAFEITER).silence()
        )
        [monitor] = restored.runtimes[0].iter_reachable_instances()
        assert monitor.param_alive("c")
        assert not monitor.param_alive("i")
        assert monitor.all_params_dead() is False
        del c

    def test_serials_and_stats_carry_over(self):
        engine = make_engine()
        c, i = Obj("c"), Obj("i")
        engine.emit("create", c=c, i=i)
        engine.emit("update", c=c)
        restored, _ = restore_engine(
            snapshot_engine(engine), compile_spec(UNSAFEITER).silence()
        )
        assert restored.runtimes[0]._event_serial == 2
        stats = restored.stats_for("UnsafeIter")
        assert stats.events == 2
        assert stats.monitors_created == engine.stats_for("UnsafeIter").monitors_created

    def test_cfg_chart_round_trip(self):
        """An Earley-chart monitor survives serialization mid-derivation.

        The cut lands after ``acquire acquire release`` — one level of
        nesting still open — and the suffix's stray ``release`` must make
        the restored chart fail exactly like the uninterrupted one.
        """
        prop = ALL_PROPERTIES["safelock"]
        entries = [
            ("acquire", {"l": "l1", "t": "t1"}),
            ("acquire", {"l": "l1", "t": "t1"}),
            ("release", {"l": "l1", "t": "t1"}),
            ("release", {"l": "l1", "t": "t1"}),
            ("release", {"l": "l1", "t": "t1"}),
        ]
        want, got = [], []
        full = MonitoringEngine(
            prop.make().silence(),
            gc="none",
            on_verdict=lambda p, c, m: want.append(c),
        )
        replay_entries(entries, full)

        prefix = MonitoringEngine(
            prop.make().silence(), gc="none", on_verdict=lambda p, c, m: got.append(c)
        )
        tokens = replay_entries(entries, prefix, stop=3)
        restored, tokens = restore_engine(
            snapshot_engine(prefix),
            prop.make().silence(),
            on_verdict=lambda p, c, m: got.append(c),
        )
        replay_entries(entries, restored, start=3, tokens=tokens)
        assert got == want and want  # the unbalanced-nesting state survived

    def test_raw_monitor_json_state_round_trips(self):
        template = functional_template(
            transition=lambda n, e: n + 1,
            verdict=lambda n: "hit" if n >= 3 else "?",
            initial=0,
            alphabet={"tick"},
            categories={"hit"},
        )
        monitor = template.create()
        monitor.step("tick")
        restored = template.monitor_from_state(monitor.snapshot_state())
        assert restored.step("tick") == "?"
        assert restored.step("tick") == "hit"

    def test_non_serializable_state_fails_at_snapshot_time(self):
        class Opaque:
            pass

        from repro.core.events import EventDefinition
        from repro.spec.compiler import CompiledProperty

        template = functional_template(
            transition=lambda s, e: s,
            verdict=lambda s: "?",
            initial=Opaque(),
            alphabet={"tick"},
        )
        prop = CompiledProperty(
            spec_name="Opaque",
            formalism="raw",
            template=template,
            definition=EventDefinition({"tick": ("x",)}),
            goal=frozenset({"?"}),
            handlers=(),
        )
        engine = MonitoringEngine(prop, gc="none")
        x = Obj("x")
        engine.emit("tick", x=x)
        with pytest.raises(PersistError):
            snapshot_engine(engine)
        del x


class TestSymbolRegistry:
    def test_symbols_stable_per_identity(self):
        registry = SymbolRegistry()
        a, b = Obj("a"), Obj("b")
        assert registry.symbol_for(a) == registry.symbol_for(a)
        assert registry.symbol_for(a) != registry.symbol_for(b)

    def test_resolve_and_death(self):
        deaths = []
        registry = SymbolRegistry(on_death=deaths.append)
        a = Obj("a")
        symbol = registry.symbol_for(a)
        assert registry.resolve(symbol) is a
        del a
        gc.collect()
        assert deaths == [symbol]
        assert registry.resolve(symbol) is None

    def test_immortals_keyed_by_value(self):
        registry = SymbolRegistry()
        assert registry.symbol_for("x").startswith("v:")
        assert registry.symbol_for("x") == registry.symbol_for("x")

    def test_ensure_counter_prevents_collisions(self):
        registry = SymbolRegistry()
        registry.ensure_counter(41)
        assert registry.symbol_for(Obj("a")) == "o42"

    def test_dead_ref_constructor(self):
        ref = ParamRef.dead(0xDEAD)
        assert not ref.is_alive
        assert ref.get() is None
        assert ref.param_id == 0xDEAD
