"""Crash recovery: last intact snapshot + WAL suffix replay.

The durability story end to end — a ``DurableEngine`` is fed live objects,
killed without warning (handles abandoned, objects dropped), and rebuilt
from disk; the recovered engine's verdicts and accounting must equal an
uninterrupted engine over the same durable prefix.
"""

from __future__ import annotations

import gc
import os
import random
from collections import Counter

import pytest

from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.persist import DurableEngine, checkpoint_files, latest_checkpoint, wal_segments

from ..conftest import Obj
from .conftest import symbolic_verdict_key


def unsafeiter_trace(events: int, seed: int, pool: int = 3):
    """(event, {param: pool-key}) pairs over UNSAFEITER's alphabet."""
    rng = random.Random(seed)
    trace = []
    for _ in range(events):
        event = rng.choice(("create", "update", "next"))
        if event == "create":
            binding = {"c": f"c{rng.randrange(pool)}", "i": f"i{rng.randrange(pool)}"}
        elif event == "update":
            binding = {"c": f"c{rng.randrange(pool)}"}
        else:
            binding = {"i": f"i{rng.randrange(pool)}"}
        trace.append((event, binding))
    return trace


def drive(target, trace, pool):
    for event, binding in trace:
        target.emit(event, **{name: pool[key] for name, key in binding.items()})


class TestDurableEngine:
    def test_recovery_equals_uninterrupted(self, tmp_path):
        trace = unsafeiter_trace(80, seed=20110601)
        pool = {k: Obj(k) for k in ("c0", "c1", "c2", "i0", "i1", "i2")}

        want = Counter()
        reference = MonitoringEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            gc="coenable",
            on_verdict=lambda p, c, m: want.update([symbolic_verdict_key(p, c, m)]),
        )
        drive(reference, trace, pool)

        live = Counter()
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            gc="coenable",
            on_verdict=lambda p, c, m: live.update([symbolic_verdict_key(p, c, m)]),
            segment_events=16,
            fsync_interval=1,  # exact durability for the equality check
        )
        drive(durable, trace[:50], pool)
        durable.checkpoint()
        drive(durable, trace[50:], pool)
        # Crash: no close(), the process just "dies".
        del durable
        gc.collect()

        recovered_suffix = Counter()
        recovered, _tokens = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            on_verdict=lambda p, c, m: recovered_suffix.update(
                [symbolic_verdict_key(p, c, m)]
            ),
        )
        stats = recovered.engine.stats_for("UnsafeIter")
        assert stats.events == len(trace)
        assert stats.monitors_created == reference.stats_for("UnsafeIter").monitors_created
        # Live verdicts match the reference; the recovery replay re-fires
        # only the post-checkpoint suffix (keys are a subset of the whole).
        # Binding symbols differ between the live registry ("o1"...) and the
        # reference (conftest Objs), so compare category totals.
        assert Counter(k[2] for k in live) == Counter(k[2] for k in want)
        assert set(recovered_suffix) <= set(live)
        recovered.close()

    def test_crash_before_any_checkpoint(self, tmp_path):
        trace = unsafeiter_trace(30, seed=7)
        pool = {k: Obj(k) for k in ("c0", "c1", "c2", "i0", "i1", "i2")}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            gc="coenable",
            fsync_interval=1,
        )
        drive(durable, trace, pool)
        del durable
        gc.collect()
        assert latest_checkpoint(str(tmp_path)) is None
        recovered, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path), gc="coenable"
        )
        assert recovered.engine.stats_for("UnsafeIter").events == 30
        recovered.close()

    def test_torn_checkpoint_is_skipped(self, tmp_path):
        pool = {k: Obj(k) for k in ("c0", "i0")}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            gc="coenable",
            fsync_interval=1,
        )
        durable.emit("create", c=pool["c0"], i=pool["i0"])
        good = durable.checkpoint()
        durable.emit("update", c=pool["c0"])
        bad = durable.checkpoint()
        durable.close()
        # Corrupt the newest checkpoint as a crash mid-write would.
        with open(bad, "r+b") as handle:
            handle.truncate(os.path.getsize(bad) // 2)
        seq, _payload = latest_checkpoint(str(tmp_path))
        assert seq == int(os.path.basename(good).split("-")[1].split(".")[0])
        recovered, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        assert recovered.engine.stats_for("UnsafeIter").events == 2
        recovered.close()

    def test_checkpoint_prunes_covered_segments(self, tmp_path):
        pool = {k: Obj(k) for k in ("c0", "i0")}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            gc="coenable",
            segment_events=4,
            fsync_interval=1,
        )
        for _ in range(13):
            durable.emit("update", c=pool["c0"])
        assert len(wal_segments(str(tmp_path))) == 4
        durable.checkpoint()
        assert len(wal_segments(str(tmp_path))) == 1
        durable.close()

    def test_auto_checkpoint_interval(self, tmp_path):
        pool = {k: Obj(k) for k in ("c0",)}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            gc="coenable",
            checkpoint_every=5,
        )
        for _ in range(11):
            durable.emit("update", c=pool["c0"])
        durable.close()
        assert len(checkpoint_files(str(tmp_path))) == 2

    def test_close_is_idempotent(self, tmp_path):
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        durable.close()
        durable.close()

    def test_recover_twice_after_torn_tail(self, tmp_path):
        """First recovery repairs the torn tail; a second recovery of the
        same directory must keep working (the tear must not survive as
        mid-log corruption once new segments follow it)."""
        pool = {k: Obj(k) for k in ("c0", "i0")}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            fsync_interval=1,
        )
        durable.emit("create", c=pool["c0"], i=pool["i0"])
        durable.emit("update", c=pool["c0"])
        del durable
        gc.collect()
        _seg, path = wal_segments(str(tmp_path))[-1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"q": 3, "e"')  # the crash tears the tail
        first, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        assert first.engine.stats_for("UnsafeIter").events == 2
        first.emit("update", c=pool["c0"])  # new segment after the repair
        first.close()
        second, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        assert second.engine.stats_for("UnsafeIter").events == 3
        second.close()

    def test_recovered_registry_never_reuses_symbols(self, tmp_path):
        pool = {k: Obj(k) for k in ("c0", "i0")}
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            str(tmp_path),
            fsync_interval=1,
        )
        durable.emit("create", c=pool["c0"], i=pool["i0"])
        used = durable.registry.counter
        del durable
        gc.collect()
        recovered, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        assert recovered.registry.counter >= used
        fresh = Obj("fresh")
        assert recovered.registry.symbol_for(fresh) == f"o{used + 1}"
        recovered.close()
