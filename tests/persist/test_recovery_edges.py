"""Recovery edge cases the straight-line crash tests never reach.

Three corners of the durability matrix: a crash landing *inside* one
``emit_batch`` whose recovery point is a checkpoint taken between two
batch halves; a torn WAL tail cutting into a stream that interleaves
registry operations with events; and the same shard dying twice while a
single drain barrier is held open.
"""

from __future__ import annotations

import gc as gc_module
import zlib
from collections import Counter

import pytest

from repro.faults import FaultPlan, tear_wal_tail
from repro.persist import DurableEngine, wal_segments
from repro.persist.wal import iter_wal_records, repair_tail
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine

from ..conftest import Obj
from ..service.test_supervisor import (
    MODES,
    run_supervised,
    single_engine_multiset,
    synth_trace,
)
from .conftest import symbolic_verdict_key


@pytest.mark.parametrize("mode", MODES)
def test_mid_batch_crash_recovers_from_between_batch_checkpoint(tmp_path, mode):
    """Crash ordinals land inside the second ``emit_batch``; the recovery
    point is a checkpoint deliberately taken between the two halves."""
    key = "hasnext"
    paper = ALL_PROPERTIES[key]
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=zlib.crc32(b"mid-batch"))
    want = single_engine_multiset(spec, trace)

    plan = FaultPlan()
    half = len(trace) // 2
    # Each shard sees roughly a third of ~200 first-half deliveries, so an
    # ordinal of 90 falls safely inside the *second* batch on every shard
    # (armed on all shards: identity-hash routing moves the spread around).
    for shard in range(3):
        plan.add("crash", shard=shard, at=90)
    with run_supervised(key, tmp_path, mode, plan) as sup:
        sup.service.emit_batch(trace[:half])
        sup.drain()
        sup.checkpoint_now()
        marks = {
            s["shard"]: s["checkpoint"]["journal_seq"]
            for s in sup.health()["shards"]
            if s["checkpoint"] is not None
        }
        # Every shard checkpointed; a starved shard legitimately marks
        # seq 0 (identity-hash routing can skip a shard entirely in the
        # first half), but the busiest one has journal behind it.
        assert len(marks) == 3 and max(marks.values()) > 0
        sup.service.emit_batch(trace[half:])
        sup.drain()
        got = sup.service.verdict_multiset()
        restarts = sup.restarts()
        shards = sup.health()["shards"]
    assert got == want
    assert restarts >= 1, "no crash fired inside the second batch"
    for state in shards:
        if state["restarts"]:
            # The shard recovered from the between-halves checkpoint (or a
            # later due one), never from scratch.
            assert state["checkpoint"]["journal_seq"] >= marks[state["shard"]]
            assert state["alive"]


def test_torn_tail_over_registry_op_interleave(tmp_path):
    """A torn trailing record must not take down a log whose suffix
    interleaves hot-load/unload registry ops with events."""
    directory = str(tmp_path)
    verdicts: Counter = Counter()
    durable = DurableEngine(
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        directory,
        system="rv",
        on_verdict=lambda p, c, m: verdicts.update([symbolic_verdict_key(p, c, m)]),
        fsync_interval=1,
    )
    pool = {k: Obj(k) for k in ("c0", "c1", "i0", "i1")}
    durable.emit("create", c=pool["c0"], i=pool["i0"])
    durable.emit("update", c=pool["c0"])
    # Interleave: hot-load a second paper property mid-stream...
    added = durable.register_property(ALL_PROPERTIES["hasnext"])
    durable.emit("next", i=pool["i0"])
    # ... then pause it again (every attached formalism), with more
    # events on both sides.
    for index in added:
        durable.set_property_enabled(index, False)
    durable.emit("create", c=pool["c1"], i=pool["i1"])
    durable.checkpoint()
    durable.emit("update", c=pool["c1"])
    durable.emit("next", i=pool["i1"])
    # Crash without close, then tear into the last durable record.
    del durable
    gc_module.collect()
    assert tear_wal_tail(directory) > 0

    recovered, tokens = DurableEngine.recover(
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        directory,
        system="rv",
    )
    try:
        # The torn record is gone for good; the surviving stream reads
        # cleanly end to end (repair happened on writer construction).
        assert repair_tail(directory) == 0
        kinds = [kind for _seq, kind, _p in iter_wal_records(directory)]
        assert "registry" in kinds and "event" in kinds
        # The interleaved ops replayed at their logged positions: the
        # hot-loaded property is present but left disabled, exactly as
        # the pre-crash stream ordered.
        loaded = list(recovered.engine.registry.loaded())
        names = {entry.spec_name for entry in loaded if not entry.removed}
        assert "HasNext" in names
        hasnext = [entry for entry in loaded if entry.spec_name == "HasNext"]
        assert hasnext and all(not entry.enabled for entry in hasnext)
    finally:
        recovered.close()


def test_same_shard_dies_twice_under_one_drain_barrier(tmp_path):
    """Two armed crashes on one shard both fire while a single
    ``drain()`` barrier is held; each heals independently and the verdict
    multiset still lands exact."""
    key = "unsafeiter"
    paper = ALL_PROPERTIES[key]
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=3)
    want = single_engine_multiset(spec, trace)

    plan = FaultPlan()
    plan.add("crash", shard=0, at=25)
    plan.add("crash", shard=0, at=55)
    with run_supervised(
        key, tmp_path, "process", plan, shards=1
    ) as sup:
        sup.service.emit_batch(trace)
        sup.drain()
        got = sup.service.verdict_multiset()
        restarts = sup.restarts()
        health = sup.health()
    assert got == want
    assert restarts == 2, "both crashes should fire on the single shard"
    assert health["shards"][0]["restarts"] == 2
    assert health["shards"][0]["alive"]
