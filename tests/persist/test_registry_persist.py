"""Registry persistence: snapshot round-trips, WAL ops, ordered recovery.

The acceptance criteria of ISSUE 4's persistence layer: snapshots record
the registry (epoch + fingerprints + per-property enabled state), the WAL
interleaves registry-op records with event segments, and recovery replays
property adds/removes at exactly the trace positions they originally
happened — so the recovered engine's verdicts and E/M accounting equal the
uninterrupted run's.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import PersistError
from repro.persist import (
    DurableEngine,
    WalWriter,
    iter_wal,
    iter_wal_records,
    restore_engine,
    snapshot_engine,
)
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.spec import PropertyRegistry, compile_spec

from .conftest import seed_for, symbolic_verdict_key, synth_entries

HOT_SOURCE = """
HotPair(p, q) {
  event open(p)
  event use(p, q)
  ere: open use
  @match
}
"""


def _ops_engine(gc_kind="coenable"):
    """An engine that lived through attach / disable / detach operations."""
    engine = MonitoringEngine(
        ALL_PROPERTIES["unsafeiter"].make().silence(), gc=gc_kind
    )
    entries = synth_entries(
        ALL_PROPERTIES["unsafeiter"].make().definition, seed_for("persist-ops"),
        events=60,
    )
    tokens: dict = {}
    replay_entries(entries, engine, stop=20, tokens=tokens)
    engine.attach_property(HOT_SOURCE)
    # Attach via the provider so the origin is portable (kind "paper") and
    # restore can re-materialize the slots without caller help.
    engine.attach_property(ALL_PROPERTIES["hasnext"])
    replay_entries(entries, engine, start=20, stop=40, tokens=tokens)
    engine.set_property_enabled("HasNext/fsm", False)
    engine.detach_property("HotPair/ere")
    replay_entries(entries, engine, start=40, tokens=tokens)
    return engine


class TestSnapshotRegistry:
    def test_epoch_and_enabled_round_trip(self):
        engine = _ops_engine()
        snapshot = snapshot_engine(engine)
        assert snapshot["registry"]["epoch"] == engine.registry_epoch
        restored, _tokens = restore_engine(
            snapshot, ALL_PROPERTIES["unsafeiter"].make().silence()
        )
        assert restored.registry_epoch == engine.registry_epoch
        for original, copy in zip(engine.registry.entries, restored.registry.entries):
            assert (original.name, original.fingerprint, original.enabled,
                    original.removed) == (
                copy.name, copy.fingerprint, copy.enabled, copy.removed)
        # The disabled slot stays paused after restore.
        fsm = restored.registry.entry("HasNext/fsm")
        assert not restored.runtimes[fsm.index].enabled

    def test_hot_loaded_source_rematerializes_from_origin(self):
        engine = MonitoringEngine(ALL_PROPERTIES["unsafeiter"].make().silence())
        engine.attach_property(HOT_SOURCE)
        snapshot = snapshot_engine(engine)
        # Restore supplies only the constructor-time property; the hot one
        # comes back from its recorded source text.
        restored, _ = restore_engine(
            snapshot, ALL_PROPERTIES["unsafeiter"].make().silence()
        )
        entry = restored.registry.entry("HotPair/ere")
        assert restored.runtimes[entry.index] is not None
        assert entry.origin["kind"] == "source"

    def test_retired_stats_round_trip(self):
        engine = _ops_engine()
        want = {
            key: stats.as_row() for key, stats in engine.stats().items()
        }
        restored, _ = restore_engine(
            snapshot_engine(engine), ALL_PROPERTIES["unsafeiter"].make().silence()
        )
        got = {key: stats.as_row() for key, stats in restored.stats().items()}
        for key in want:
            assert want[key]["E"] == got[key]["E"], key
            assert want[key]["M"] == got[key]["M"], key

    def test_tombstone_mismatch_rejected(self):
        engine = _ops_engine()
        snapshot = snapshot_engine(engine)
        # A target whose slot layout disagrees (no ops applied) is refused.
        other = MonitoringEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(), gc="coenable"
        )
        from repro.persist import restore_into

        with pytest.raises(PersistError, match="propert"):
            restore_into(other, snapshot)

    def test_restore_with_original_specs_after_unregister(self):
        """The common operator flow: restore passes the constructor-time
        spec list even though a slot was unregistered since — the
        tombstone consumes its supplied property and the rest match by
        fingerprint, not list position."""
        from repro.service import MonitorService

        def specs():
            return [
                ALL_PROPERTIES["unsafeiter"].make().silence(),
                ALL_PROPERTIES["hasnext"].make().silence(),
            ]

        service = MonitorService(specs(), shards=2, mode="inline")
        service.unregister_property("UnsafeIter/ere")
        checkpoint = service.checkpoint()
        service.close()
        restored = MonitorService.restore(checkpoint, specs(), mode="inline")
        assert restored.registry.entry("UnsafeIter/ere").removed
        assert not restored.registry.entry("HasNext/fsm").removed
        restored.close()

    def test_registry_clone_is_independent(self):
        registry = PropertyRegistry.from_specs(
            ALL_PROPERTIES["unsafeiter"].make().silence()
        )
        clone = registry.clone()
        clone.add(compile_spec(HOT_SOURCE).properties[0])
        assert len(clone) == 2 and len(registry) == 1
        assert clone.epoch == registry.epoch + 1


class TestWalRegistryOps:
    def test_records_interleave_in_sequence_order(self, tmp_path):
        directory = str(tmp_path)
        wal = WalWriter(directory, segment_events=4)
        wal.append("open", {"p": "o1"})
        wal.append_registry_op({"op": "add", "name": None,
                                "origin": {"kind": "source", "text": HOT_SOURCE}})
        wal.append("use", {"p": "o1", "q": "o2"})
        wal.append_registry_op({"op": "remove", "index": 1})
        wal.append("open", {"p": "o3"})
        wal.close()
        records = list(iter_wal_records(directory, 0))
        assert [seq for seq, _kind, _payload in records] == [1, 2, 3, 4, 5]
        assert [kind for _seq, kind, _payload in records] == [
            "event", "registry", "event", "registry", "event",
        ]
        assert records[1][2]["op"] == "add"
        assert records[3][2] == {"op": "remove", "index": 1}
        # The events-only view skips ops but keeps the gap check honest.
        assert [seq for seq, _entry in iter_wal(directory, 0)] == [1, 3, 5]

    def test_ops_survive_rotation_and_tail_repair(self, tmp_path):
        directory = str(tmp_path)
        wal = WalWriter(directory, segment_events=2)
        for n in range(3):
            wal.append("open", {"p": f"o{n}"})
            wal.append_registry_op({"op": "disable", "index": 0})
        wal.close()
        # A torn trailing line must not hide the intact registry ops.
        segments = sorted(tmp_path.glob("wal-*.log"))
        with open(segments[-1], "ab") as handle:
            handle.write(b'{"q": 99, "r": {"op": tr')
        kinds = [kind for _seq, kind, _payload in iter_wal_records(directory, 0)]
        assert kinds == ["event", "registry"] * 3


class TestDurableRecovery:
    @pytest.mark.parametrize("checkpoint_at", (None, "before", "between"))
    def test_recovery_replays_ops_in_order(self, tmp_path, checkpoint_at):
        directory = str(tmp_path)
        base = ALL_PROPERTIES["unsafeiter"]
        hot = ALL_PROPERTIES["hasnext"]
        entries = synth_entries(hot.make().definition, seed_for("durable-ops"),
                                events=45)

        verdicts: Counter = Counter()

        def on_verdict(prop, category, monitor):
            verdicts[symbolic_verdict_key(prop, category, monitor)] += 1

        durable = DurableEngine(
            base.make().silence(), directory, gc="coenable",
            on_verdict=on_verdict,
        )
        c = object
        tokens: dict = {}
        replay_entries(entries, durable.engine, stop=15, tokens=tokens)
        if checkpoint_at == "before":
            durable.checkpoint()
        durable.register_property(hot)
        replay_entries(entries, durable.engine, start=15, stop=30, tokens=tokens)
        if checkpoint_at == "between":
            durable.checkpoint()
        durable.unregister_property("HasNext/ltl")
        replay_entries(entries, durable.engine, start=30, tokens=tokens)
        live_rows = {
            key: (stats.events, stats.monitors_created)
            for key, stats in durable.engine.stats().items()
        }
        live_epoch = durable.engine.registry_epoch
        durable.close()

        recovered, _tokens = DurableEngine.recover(base.make().silence(), directory)
        assert recovered.engine.registry_epoch == live_epoch
        got_rows = {
            key: (stats.events, stats.monitors_created)
            for key, stats in recovered.engine.stats().items()
        }
        assert got_rows == live_rows
        # Slot layout reproduced exactly: HasNext/ltl removed, fsm loaded.
        assert recovered.engine.registry.entry("HasNext/ltl").removed
        assert not recovered.engine.registry.entry("HasNext/fsm").removed
        recovered.close()

    def test_failed_ops_never_reach_the_wal(self, tmp_path):
        """A registry op that raises must not be logged: a poisoned WAL
        would make every later recovery replay the failure and refuse the
        whole log suffix."""
        from repro.core.errors import RegistryError

        directory = str(tmp_path)
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(), directory
        )
        durable.register_property(ALL_PROPERTIES["hasnext"])
        durable.unregister_property("HasNext/fsm")
        with pytest.raises(RegistryError):
            durable.unregister_property("HasNext/fsm")  # already removed
        with pytest.raises(RegistryError):
            durable.set_property_enabled("HasNext/fsm", True)
        with pytest.raises(RegistryError):
            durable.register_property(HOT_SOURCE, name="HasNext/ltl")  # taken
        epoch = durable.engine.registry_epoch
        durable.close()
        recovered, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), directory
        )
        assert recovered.engine.registry_epoch == epoch
        recovered.close()

    def test_silenced_paper_origin_rematerializes_silenced(self):
        from repro.spec.registry import materialize_origin, normalize_properties

        _prop, origin = normalize_properties(ALL_PROPERTIES["hasnext"])[0]
        # Registered with live handlers: re-materialization keeps them.
        assert origin["kind"] == "paper" and not origin["silent"]
        assert materialize_origin(origin)._callbacks
        # Silenced before registration: the origin records it and the
        # restored property stays quiet (no resurrected print handlers).
        silent_origin = dict(origin, silent=True)
        assert not materialize_origin(silent_origin)._callbacks

    def test_opaque_registration_refused(self, tmp_path):
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(), str(tmp_path)
        )
        with pytest.raises(PersistError, match="re-materializable"):
            durable.register_property(compile_spec(HOT_SOURCE).silence())
        durable.close()

    def test_registered_source_recovers_without_caller_help(self, tmp_path):
        directory = str(tmp_path)
        durable = DurableEngine(
            ALL_PROPERTIES["unsafeiter"].make().silence(), directory
        )
        durable.register_property(HOT_SOURCE)
        durable.emit("open", p="p1", _strict=False)
        durable.emit("use", p="p1", q="q1", _strict=False)
        want = durable.engine.stats_for("HotPair", "ere").as_row()
        durable.close()
        recovered, _ = DurableEngine.recover(
            ALL_PROPERTIES["unsafeiter"].make().silence(), directory
        )
        assert recovered.engine.stats_for("HotPair", "ere").as_row() == want
        recovered.close()
