"""The persistence acceptance property: snapshots are replay-equivalent.

For every property in the library and every GC strategy: run a trace with
parameter mortality (tokens retired after last use), snapshot at event
*k*, restore into a fresh engine, replay the suffix — the combined verdict
multiset and the final E / M / CM accounting must equal an uninterrupted
run's.  The same holds one level up for a sharded ``MonitorService``
checkpoint across shard counts.

``FM`` (monitors *flagged*) is deliberately not compared: flagging happens
when a lazy scan reaches a dead key, and a restored engine's fresh scan
rotation can reach it at a different event — the flag itself is an
implementation hint, not semantics (the flagged instance is already
behaviorally invisible).  E, M, CM and the verdicts are exact.
"""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.persist import (
    restore_engine,
    snapshot_engine,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.service import MonitorService, ingest_symbolic

from .conftest import seed_for, symbolic_record_key, synth_entries, verdict_counter

STRATEGIES = ("coenable", "alldead", "statebased", "none")
CUT_POINTS = (1, 157, 299)
SHARD_COUNTS = (1, 2, 4)


def _rows(engine_or_service):
    return {
        key: {"E": stats.events, "M": stats.monitors_created, "CM": stats.monitors_collected}
        for key, stats in engine_or_service.stats().items()
    }


def _uninterrupted(prop_key: str, gc_kind: str, entries):
    want, on_verdict = verdict_counter()
    engine = MonitoringEngine(
        ALL_PROPERTIES[prop_key].make().silence(), gc=gc_kind, on_verdict=on_verdict
    )
    replay_entries(entries, engine, retire_after_last_use=True)
    engine.flush_gc()
    gc.collect()
    return want, _rows(engine)


@pytest.mark.parametrize("gc_kind", STRATEGIES)
@pytest.mark.parametrize("key", sorted(ALL_PROPERTIES))
def test_engine_snapshot_replay_equivalence(key, gc_kind):
    paper_prop = ALL_PROPERTIES[key]
    spec = paper_prop.make().silence()
    try:
        MonitoringEngine(spec, gc=gc_kind)
    except UnsupportedFormalismError:
        pytest.skip(f"{key} does not support the {gc_kind} strategy")
    entries = synth_entries(spec.definition, seed_for(key, gc_kind))

    want, want_rows = _uninterrupted(key, gc_kind, entries)

    for k in CUT_POINTS:
        got, on_verdict = verdict_counter()
        prefix_engine = MonitoringEngine(
            paper_prop.make().silence(), gc=gc_kind, on_verdict=on_verdict
        )
        # The token table must outlive the snapshot: objects alive at the
        # cut in the uninterrupted run must be alive in the snapshot too.
        prefix_tokens = replay_entries(
            entries, prefix_engine, retire_after_last_use=True, stop=k
        )
        payload = snapshot_to_bytes(snapshot_engine(prefix_engine))
        del prefix_engine, prefix_tokens
        gc.collect()

        restored, tokens = restore_engine(
            snapshot_from_bytes(payload),
            paper_prop.make().silence(),
            on_verdict=on_verdict,
        )
        replay_entries(
            entries, restored, retire_after_last_use=True, start=k, tokens=tokens
        )
        restored.flush_gc()
        gc.collect()

        assert got == want, f"verdict multiset diverged at cut {k}"
        assert _rows(restored) == want_rows, f"E/M/CM diverged at cut {k}"


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("key", sorted(ALL_PROPERTIES))
def test_service_checkpoint_replay_equivalence(key, shards):
    """Checkpoint a live sharded service, restore, resume: identical run."""
    paper_prop = ALL_PROPERTIES[key]
    entries = synth_entries(
        paper_prop.make().definition, seed_for(key, f"svc{shards}")
    )
    want, want_rows = _uninterrupted(key, "coenable", entries)
    k = 157

    from collections import Counter

    got: Counter = Counter()

    def collect(record):
        got[symbolic_record_key(record)] += 1

    service = MonitorService(
        paper_prop.make().silence(),
        shards=shards,
        gc="coenable",
        mode="inline",
        keep_verdict_log=False,
        on_verdict=collect,
    )
    prefix_tokens = ingest_symbolic(
        service, entries, retire_after_last_use=True, stop=k
    )
    checkpoint = service.checkpoint()
    service.close()
    del service, prefix_tokens
    gc.collect()

    restored = MonitorService.restore(
        checkpoint,
        paper_prop.make().silence(),
        mode="inline",
        keep_verdict_log=False,
        on_verdict=collect,
    )
    ingest_symbolic(
        restored,
        entries,
        retire_after_last_use=True,
        start=k,
        tokens=restored.restored_tokens,
    )
    restored.close()
    gc.collect()

    assert got == want
    assert _rows(restored) == want_rows
