"""Write-ahead tracelog: segments, fsync points, torn tails, pruning."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import PersistError
from repro.persist import WalWriter, read_wal, wal_segments
from repro.persist.wal import iter_wal

from ..conftest import Obj


def fill(writer: WalWriter, count: int, start: int = 0):
    objs = []
    for n in range(start, start + count):
        obj = Obj(f"o{n}")
        objs.append(obj)  # keep alive: one symbol per object
        writer.append("tick", {"x": obj})
    return objs


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        with WalWriter(str(tmp_path)) as writer:
            objs = fill(writer, 5)
        entries = read_wal(str(tmp_path))
        assert len(entries) == 5
        assert all(event == "tick" for event, _params in entries)
        symbols = [params["x"] for _event, params in entries]
        assert len(set(symbols)) == 5  # distinct objects, distinct ref IDs
        del objs

    def test_sequence_numbers_and_suffix_read(self, tmp_path):
        with WalWriter(str(tmp_path)) as writer:
            objs = fill(writer, 10)
        pairs = list(iter_wal(str(tmp_path)))
        assert [seq for seq, _entry in pairs] == list(range(1, 11))
        assert len(read_wal(str(tmp_path), after_seq=7)) == 3
        del objs

    def test_shared_object_shares_symbol(self, tmp_path):
        with WalWriter(str(tmp_path)) as writer:
            obj = Obj("shared")
            writer.append("tick", {"x": obj})
            writer.append("tock", {"y": obj})
        entries = read_wal(str(tmp_path))
        assert entries[0][1]["x"] == entries[1][1]["y"]


class TestRotationAndFsync:
    def test_segment_rotation(self, tmp_path):
        with WalWriter(str(tmp_path), segment_events=4) as writer:
            objs = fill(writer, 10)
        assert len(wal_segments(str(tmp_path))) == 3
        assert len(read_wal(str(tmp_path))) == 10
        del objs

    def test_fsync_interval(self, tmp_path):
        writer = WalWriter(str(tmp_path), fsync_interval=3)
        objs = fill(writer, 7)
        assert writer.fsyncs == 2  # at appends 3 and 6
        writer.close()  # final sync
        assert writer.fsyncs == 3
        del objs

    def test_prune_keeps_uncovered_segments(self, tmp_path):
        writer = WalWriter(str(tmp_path), segment_events=4)
        objs = fill(writer, 12)  # segments: 1-4, 5-8, 9-12
        removed = writer.prune(checkpoint_seq=8)
        assert len(removed) == 2
        assert len(wal_segments(str(tmp_path))) == 1
        writer.close()
        assert [seq for seq, _e in iter_wal(str(tmp_path))] == [9, 10, 11, 12]
        del objs

    def test_append_after_close_rejected(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.close()
        with pytest.raises(PersistError):
            writer.append("tick", {"x": Obj("x")})


class TestCrashTolerance:
    def test_torn_tail_is_dropped(self, tmp_path):
        with WalWriter(str(tmp_path)) as writer:
            objs = fill(writer, 5)
        _index, path = wal_segments(str(tmp_path))[-1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"q": 6, "e": "tick", "p"')  # crash mid-write
        entries = read_wal(str(tmp_path))
        assert len(entries) == 5
        del objs

    def test_mid_log_corruption_raises(self, tmp_path):
        with WalWriter(str(tmp_path), segment_events=3) as writer:
            objs = fill(writer, 6)  # two segments
        _index, first = wal_segments(str(tmp_path))[0]
        lines = open(first, encoding="utf-8").read().splitlines()
        lines[2] = "garbage"
        with open(first, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match="corrupt"):
            read_wal(str(tmp_path))
        del objs

    def test_sequence_gap_detected(self, tmp_path):
        with WalWriter(str(tmp_path), segment_events=3) as writer:
            objs = fill(writer, 6)
        _index, first = wal_segments(str(tmp_path))[0]
        lines = open(first, encoding="utf-8").read().splitlines()
        entry = json.loads(lines[2])
        entry["q"] = 99
        lines[2] = json.dumps(entry)
        with open(first, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match="gap"):
            read_wal(str(tmp_path))
        del objs

    def test_torn_final_segment_header_is_tolerated(self, tmp_path):
        """A crash right after rotation can tear the new segment's header
        line; recovery must fall back to the intact prior segments."""
        with WalWriter(str(tmp_path), segment_events=3) as writer:
            objs = fill(writer, 6)  # two full segments
        torn = os.path.join(str(tmp_path), "wal-00000003.log")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"wal": 1, "seg')  # header torn mid-write
        assert len(read_wal(str(tmp_path))) == 6
        del objs

    def test_torn_tail_is_repaired_when_writing_resumes(self, tmp_path):
        """A torn tail is tolerated while its segment is last — and must be
        cut off before a new writer adds segments after it, or every later
        read of the directory would hit it as mid-log corruption."""
        with WalWriter(str(tmp_path)) as writer:
            objs = fill(writer, 3)
        _index, path = wal_segments(str(tmp_path))[-1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"q": 4, "e": "ti')  # crash mid-write
        # Recovery-style resumption: a new writer opens the directory ...
        with WalWriter(str(tmp_path), start_seq=3) as resumed:
            more = fill(resumed, 2, start=10)
        # ... and the whole log (old segment + new) reads cleanly.
        assert [seq for seq, _e in iter_wal(str(tmp_path))] == [1, 2, 3, 4, 5]
        del objs, more

    def test_complete_final_line_without_newline_is_kept(self, tmp_path):
        """A crash between the payload write and the newline leaves a
        complete record: the readers replay it, so repair must keep it
        (cutting it would open a sequence gap against the recovered state)."""
        with WalWriter(str(tmp_path), fsync_interval=1) as writer:
            objs = fill(writer, 2)
        _index, path = wal_segments(str(tmp_path))[-1]
        with open(path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            assert handle.read(1) == b"\n"
            handle.seek(-1, os.SEEK_END)
            handle.truncate()  # the crash ate exactly the newline
        assert len(read_wal(str(tmp_path))) == 2  # reader accepts it ...
        with WalWriter(str(tmp_path), start_seq=2) as resumed:
            more = fill(resumed, 1, start=10)
        # ... and resumption keeps it: no gap, all three entries intact.
        assert [seq for seq, _e in iter_wal(str(tmp_path))] == [1, 2, 3]
        del objs, more

    def test_wal_adopts_replay_token_symbols(self, tmp_path):
        """Symbolic streams keep their names in the WAL (the checkpoint
        codec adopts token symbols; the log must agree or recovery would
        split one object into two identities)."""
        from repro.runtime.tracelog import ReplayToken

        with WalWriter(str(tmp_path)) as writer:
            second, first = ReplayToken("o2"), ReplayToken("o1")
            writer.append("tick", {"x": second})  # out of numbering order
            writer.append("tick", {"x": first})
            fresh = Obj("fresh")
            writer.append("tick", {"x": fresh})
        entries = read_wal(str(tmp_path))
        assert [params["x"] for _e, params in entries] == ["o2", "o1", "o3"]
        del first, second, fresh

    def test_version_check(self, tmp_path):
        path = os.path.join(str(tmp_path), "wal-00000001.log")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"wal": 99, "segment": 1, "first_seq": 1}\n')
        with pytest.raises(PersistError, match="version"):
            read_wal(str(tmp_path))
