"""WAL write-failure hardening: typed errors, failure latch, writer rebuild.

The supervisor's journal survives ENOSPC/EACCES by treating a write
failure as a *recovery point*: the failed writer latches shut (a
half-written log must never keep growing past the failure), the
supervisor hears about it through ``on_write_error``, and a replacement
writer picks up the directory's segment numbering and sequence stream so
readers never see a gap.
"""

from __future__ import annotations

import errno

import pytest

from repro.core.errors import PersistError, WalWriteError
from repro.persist import WalWriter, wal_segments
from repro.persist.wal import iter_wal_records


def _hook_failing_on(call: int, op: str = "append"):
    """A fault hook raising ``ENOSPC`` on the n-th occurrence of ``op``."""
    seen = {"n": 0}

    def hook(operation: str) -> None:
        if operation != op:
            return
        seen["n"] += 1
        if seen["n"] == call:
            raise OSError(errno.ENOSPC, "No space left on device")

    return hook


class TestTypedFailure:
    def test_append_failure_raises_wal_write_error_with_errno(self, tmp_path):
        writer = WalWriter(str(tmp_path), fault_hook=_hook_failing_on(2))
        writer.append_delivery("e0", {"p": "o:0"}, [[0], None, None, []])
        with pytest.raises(WalWriteError) as exc_info:
            writer.append_delivery("e1", {"p": "o:1"}, [[0], None, None, []])
        assert exc_info.value.errno == errno.ENOSPC
        assert isinstance(exc_info.value, PersistError)  # one except clause
        assert writer.failed is True

    def test_failed_writer_latches_shut(self, tmp_path):
        writer = WalWriter(str(tmp_path), fault_hook=_hook_failing_on(1))
        with pytest.raises(WalWriteError):
            writer.append_delivery("e0", {}, None)
        # Every further append refuses immediately — no dead-device retry
        # loop, no record written past the failure point.
        with pytest.raises(WalWriteError):
            writer.append_delivery("e1", {}, None)
        with pytest.raises(WalWriteError):
            writer.append_deaths(["o:0"])
        suffix = list(iter_wal_records(str(tmp_path)))
        assert suffix == []

    def test_sync_failure_is_typed_too(self, tmp_path):
        writer = WalWriter(str(tmp_path), fault_hook=_hook_failing_on(1, "sync"))
        writer.append_delivery("e0", {}, None)
        with pytest.raises(WalWriteError) as exc_info:
            writer.sync()
        assert exc_info.value.errno == errno.ENOSPC
        assert writer.failed is True


class TestObserver:
    def test_on_write_error_fires_before_raise(self, tmp_path):
        heard: list[WalWriteError] = []
        writer = WalWriter(
            str(tmp_path),
            fault_hook=_hook_failing_on(1),
            on_write_error=heard.append,
        )
        with pytest.raises(WalWriteError) as exc_info:
            writer.append_delivery("e0", {}, None)
        assert heard == [exc_info.value]

    def test_observer_exceptions_never_mask_the_failure(self, tmp_path):
        def bad_observer(error):
            raise RuntimeError("observer bug")

        writer = WalWriter(
            str(tmp_path),
            fault_hook=_hook_failing_on(1),
            on_write_error=bad_observer,
        )
        with pytest.raises(WalWriteError):
            writer.append_delivery("e0", {}, None)


class TestWriterRebuild:
    def test_replacement_continues_segments_and_sequence(self, tmp_path):
        directory = str(tmp_path)
        writer = WalWriter(directory, fault_hook=_hook_failing_on(4))
        for n in range(3):
            writer.append_delivery(f"e{n}", {"p": f"o:{n}"}, None)
        with pytest.raises(WalWriteError):
            writer.append_delivery("e3", {"p": "o:3"}, None)
        old_seq = writer.seq
        writer.close()

        # The supervisor's recovery move: a fresh writer over the same
        # directory, seeded with the failed writer's sequence counter.
        replacement = WalWriter(directory, start_seq=old_seq)
        assert replacement.segment_index > 1  # numbering continues
        replacement.append_delivery("e3", {"p": "o:3"}, None)
        replacement.append_delivery("e4", {"p": "o:4"}, None)
        replacement.close()

        records = [
            (seq, payload[0])
            for seq, kind, payload in iter_wal_records(directory)
            if kind == "delivery"
        ]
        # The failed append consumed no sequence number, so the stream is
        # gapless across the writer swap — recovery reads never reject it.
        assert [seq for seq, _event in records] == [1, 2, 3, 4, 5]
        assert [event for _seq, event in records] == ["e0", "e1", "e2", "e3", "e4"]
        assert len(wal_segments(directory)) == 2

    def test_rebuild_without_start_seq_would_gap(self, tmp_path):
        # The contract the supervisor relies on, stated negatively: a
        # replacement writer NOT seeded with the old counter restarts at
        # seq 1 and the reader rejects the directory as corrupt.
        directory = str(tmp_path)
        writer = WalWriter(directory)
        writer.append_delivery("e0", {}, None)
        writer.append_delivery("e1", {}, None)
        writer.close()
        naive = WalWriter(directory)  # start_seq defaults to 0
        naive.append_delivery("e2", {}, None)
        naive.close()
        with pytest.raises(PersistError):
            list(iter_wal_records(directory))
