"""Semantics and catalogue integration of the live-resource properties."""

from __future__ import annotations

import asyncio
import gc
import socket
import sqlite3
import tempfile
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.instrument.live import LiveSession
from repro.properties import (
    ALL_PROPERTIES,
    CATALOGUE,
    LIVE_PROPERTIES,
    PROTOCOL_PROPERTIES,
    property_registry,
)
from repro.runtime.engine import MonitoringEngine
from repro.spec.registry import materialize_origin

from ..conftest import Obj


def run_events(key: str, events: list[tuple[str, dict]]) -> Counter:
    """Feed one abstract event sequence to a property; count verdicts."""
    verdicts: Counter = Counter()
    engine = MonitoringEngine(
        LIVE_PROPERTIES[key].make().silence(),
        gc="coenable",
        on_verdict=lambda _p, category, _m: verdicts.update([category]),
    )
    for event, params in events:
        engine.emit(event, **params)
    return verdicts


# ---------------------------------------------------------------------------
# Abstract semantics (pure event sequences, no real resources).
# ---------------------------------------------------------------------------


class TestAbstractSemantics:
    def test_socketuse_use_after_close(self):
        s = Obj("s")
        assert run_events("socketuse", [
            ("sock_create", {"s": s}),
            ("sock_use", {"s": s}),
            ("sock_close", {"s": s}),
            ("sock_use", {"s": s}),
        ]) == Counter({"error": 1})

    def test_socketuse_clean_lifecycle(self):
        s = Obj("s")
        assert run_events("socketuse", [
            ("sock_create", {"s": s}),
            ("sock_use", {"s": s}),
            ("sock_close", {"s": s}),
            ("sock_close", {"s": s}),  # double close is harmless
        ]) == Counter()

    def test_taskloop_abandoned_and_cancelled(self):
        loop, t1, t2, t3 = Obj("l"), Obj("t1"), Obj("t2"), Obj("t3")
        assert run_events("taskloop", [
            ("task_spawn", {"l": loop, "t": t1}),
            ("task_done", {"t": t1}),            # completed: fine
            ("task_spawn", {"l": loop, "t": t2}),
            ("task_cancelled", {"t": t2}),       # shutdown sweep kill
            ("task_spawn", {"l": loop, "t": t3}),  # never completed at all
            ("loop_close", {"l": loop}),
        ]) == Counter({"match": 2})

    def test_cursorsafe_exec_after_cursor_close(self):
        conn, cur = Obj("c"), Obj("k")
        assert run_events("cursorsafe", [
            ("cur_open", {"c": conn, "k": cur}),
            ("cur_exec", {"k": cur}),
            ("cur_close", {"k": cur}),
            ("cur_exec", {"k": cur}),
        ]) == Counter({"error": 1})

    def test_cursorsafe_exec_after_connection_close(self):
        conn, cur = Obj("c"), Obj("k")
        assert run_events("cursorsafe", [
            ("cur_open", {"c": conn, "k": cur}),
            ("conn_close", {"c": conn}),
            ("cur_exec", {"k": cur}),
        ]) == Counter({"error": 1})

    def test_cursorsafe_connection_close_hits_every_cursor(self):
        conn, k1, k2 = Obj("c"), Obj("k1"), Obj("k2")
        assert run_events("cursorsafe", [
            ("cur_open", {"c": conn, "k": k1}),
            ("cur_open", {"c": conn, "k": k2}),
            ("conn_close", {"c": conn}),
            ("cur_exec", {"k": k1}),
            ("cur_exec", {"k": k2}),
        ]) == Counter({"error": 2})

    def test_tempdir_use_after_cleanup(self):
        d = Obj("d")
        assert run_events("tempdir", [
            ("dir_create", {"d": d}),
            ("dir_use", {"d": d}),
            ("dir_cleanup", {"d": d}),
            ("dir_use", {"d": d}),
        ]) == Counter({"error": 1})

    def test_tempdir_double_cleanup(self):
        d = Obj("d")
        assert run_events("tempdir", [
            ("dir_create", {"d": d}),
            ("dir_cleanup", {"d": d}),
            ("dir_cleanup", {"d": d}),
        ]) == Counter({"error": 1})

    def test_executor_submit_after_shutdown(self):
        x = Obj("x")
        assert run_events("executor", [
            ("exec_create", {"x": x}),
            ("exec_submit", {"x": x}),
            ("exec_shutdown", {"x": x}),
            ("exec_submit", {"x": x}),
        ]) == Counter({"error": 1})


# ---------------------------------------------------------------------------
# Default weaving against the real resources.
# ---------------------------------------------------------------------------


def live_session(key: str, verdicts: Counter) -> LiveSession:
    return LiveSession(
        properties=[LIVE_PROPERTIES[key].make().silence()],
        gc="coenable",
        on_verdict=lambda _p, category, _m: verdicts.update([category]),
    )


class TestLiveWeaving:
    def test_socket_use_after_close(self):
        verdicts: Counter = Counter()
        session = live_session("socketuse", verdicts)
        with session:
            session.weave(LIVE_PROPERTIES["socketuse"].pointcuts())
            left, right = socket.socketpair()
            left.sendall(b"ping")
            right.recv(16)
            left.close()
            right.close()
            with pytest.raises(OSError):
                left.sendall(b"pong")
        assert verdicts == Counter({"error": 1})

    def test_executor_submit_after_shutdown(self):
        verdicts: Counter = Counter()
        session = live_session("executor", verdicts)
        with session:
            session.weave(LIVE_PROPERTIES["executor"].pointcuts())
            with ThreadPoolExecutor(max_workers=1) as pool:
                pool.submit(lambda: None).result()
            with pytest.raises(RuntimeError):
                pool.submit(lambda: None)
        assert verdicts == Counter({"error": 1})

    def test_tempdir_cleanup_discipline(self):
        verdicts: Counter = Counter()
        session = live_session("tempdir", verdicts)
        with session:
            session.weave(LIVE_PROPERTIES["tempdir"].pointcuts())
            tmp = tempfile.TemporaryDirectory()
            tmp.cleanup()
            tmp.cleanup()  # double cleanup: silent in 3.11+, but a smell
        assert verdicts == Counter({"error": 1})

    def test_taskloop_abandoned_task(self):
        verdicts: Counter = Counter()
        session = live_session("taskloop", verdicts)
        with session:
            LIVE_PROPERTIES["taskloop"].weave_hook(session)
            async def worker():
                await asyncio.sleep(0.01)

            async def main():
                done = asyncio.get_running_loop().create_task(worker())
                await done
                asyncio.get_running_loop().create_task(worker())  # abandoned

            asyncio.run(main())
        assert verdicts["match"] == 1

    def test_cursorsafe_with_user_code_weaving(self):
        verdicts: Counter = Counter()
        session = live_session("cursorsafe", verdicts)

        from repro.instrument.live import on_call, on_return

        def open_cursor(conn):
            return conn.cursor()

        def run_query(cur, sql):
            return cur.execute(sql)

        with session:
            session.weave_functions([
                on_return(open_cursor, "cur_open",
                          {"c": "arg:conn", "k": "result"}),
                on_call(run_query, "cur_exec", {"k": "arg:cur"}),
            ])
            conn = sqlite3.connect(":memory:")
            cursor = open_cursor(conn)
            run_query(cursor, "create table t (x)")
            conn.close()
            session.emit("conn_close", c=conn)  # C type: emitted by user code
            with pytest.raises(sqlite3.ProgrammingError):
                run_query(cursor, "select 1")
        assert verdicts == Counter({"error": 1})


# ---------------------------------------------------------------------------
# Catalogue integration.
# ---------------------------------------------------------------------------


class TestCatalogue:
    def test_catalogue_is_paper_plus_live_plus_protocol(self):
        assert set(CATALOGUE) == (
            set(ALL_PROPERTIES) | set(LIVE_PROPERTIES) | set(PROTOCOL_PROPERTIES)
        )
        assert len(LIVE_PROPERTIES) >= 5
        assert len(PROTOCOL_PROPERTIES) >= 3
        assert not (set(ALL_PROPERTIES) & set(LIVE_PROPERTIES))
        assert not (set(ALL_PROPERTIES) & set(PROTOCOL_PROPERTIES))
        assert not (set(LIVE_PROPERTIES) & set(PROTOCOL_PROPERTIES))

    def test_every_live_property_compiles(self):
        for key, prop in LIVE_PROPERTIES.items():
            spec = prop.make()
            assert spec.properties, key
            assert prop.key == key
            assert prop.description

    def test_property_registry_accepts_live_keys(self):
        registry = property_registry(list(LIVE_PROPERTIES))
        names = {entry.name for entry in registry.loaded()}
        assert len(names) == len(LIVE_PROPERTIES)
        for entry in registry.loaded():
            assert entry.origin["kind"] == "paper"
            assert entry.origin["key"] in LIVE_PROPERTIES

    def test_live_origin_rematerializes(self):
        registry = property_registry(["socketuse"])
        entry = next(iter(registry.loaded()))
        prop = materialize_origin(entry.origin)
        assert prop.fingerprint() == entry.prop.fingerprint()

    def test_default_registry_stays_paper_only(self):
        registry = property_registry()
        keys = {entry.origin["key"] for entry in registry.loaded()}
        assert keys == set(ALL_PROPERTIES)
