"""End-to-end semantics of the ten paper properties.

Each test weaves the property onto the substrate, drives real shim calls,
and asserts that violating scenarios fire the handler exactly where
expected while clean scenarios stay silent — with monitoring performed by
the full RV configuration (coenable GC, lazy propagation).
"""

from __future__ import annotations

import pytest

from repro.instrument.collections_shim import (
    HashedObject,
    MethodBody,
    MonitoredCollection,
    MonitoredFile,
    MonitoredHashSet,
    MonitoredLock,
    MonitoredMap,
    SynchronizedCollection,
    SynchronizedMap,
)
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine


@pytest.fixture
def monitored():
    """Factory: set up one property end-to-end; yields (run, hits)."""
    weavers = []

    def setup(key: str, system: str = "rv"):
        prop = ALL_PROPERTIES[key]
        spec = prop.make().silence()
        hits: list = []
        for compiled in spec.properties:
            for category in compiled.goal:
                compiled.on(category, lambda n, c, b: hits.append((n, c, b)))
        gc_kind = "alldead" if key == "safelock" else None
        if system == "rv" and key == "safelock":
            # Tracematches-analog/state GC cannot host CFG; RV preset works,
            # but use the explicit kind to exercise both code paths.
            engine = MonitoringEngine(spec, gc="coenable")
        else:
            engine = MonitoringEngine(spec, system=system)
        del gc_kind
        weavers.append(prop.instrument(engine))
        return engine, hits

    yield setup
    for weaver in reversed(weavers):
        weaver.unweave()


class TestHasNext(object):
    def test_unchecked_next_fires_both_formalisms(self, monitored):
        engine, hits = monitored("hasnext")
        coll = MonitoredCollection([1, 2])
        iterator = coll.iterator()
        iterator.next()  # never asked has_next
        categories = sorted(category for _n, category, _b in hits)
        assert categories == ["error", "violation"]

    def test_checked_iteration_is_clean(self, monitored):
        engine, hits = monitored("hasnext")
        coll = MonitoredCollection([1, 2, 3])
        iterator = coll.iterator()
        while iterator.has_next():
            iterator.next()
        assert hits == []

    def test_double_next_after_single_check(self, monitored):
        engine, hits = monitored("hasnext")
        coll = MonitoredCollection([1, 2])
        iterator = coll.iterator()
        iterator.has_next()
        iterator.next()
        iterator.next()  # second next unguarded
        assert hits  # both formalisms complain


class TestUnsafeIter:
    def test_update_during_iteration(self, monitored):
        engine, hits = monitored("unsafeiter")
        coll = MonitoredCollection([1, 2, 3])
        iterator = coll.iterator()
        iterator.next()
        coll.add(99)
        iterator.next()
        assert len(hits) == 1
        _name, category, binding = hits[0]
        assert category == "match"
        assert binding["c"] is coll

    def test_iterate_then_update_then_fresh_iterator_clean(self, monitored):
        engine, hits = monitored("unsafeiter")
        coll = MonitoredCollection([1, 2])
        iterator = coll.iterator()
        iterator.next()
        coll.add(3)
        fresh = coll.iterator()
        fresh.next()
        assert hits == []

    def test_two_collections_do_not_interfere(self, monitored):
        engine, hits = monitored("unsafeiter")
        coll_a, coll_b = MonitoredCollection([1]), MonitoredCollection([2])
        iterator = coll_a.iterator()
        coll_b.add(3)  # unrelated update
        iterator.next()
        assert hits == []


class TestUnsafeMapIter:
    def test_map_update_during_view_iteration(self, monitored):
        engine, hits = monitored("unsafemapiter")
        mapping = MonitoredMap()
        mapping.put("a", 1)
        view = mapping.key_set()
        iterator = view.iterator()
        iterator.next()
        mapping.put("b", 2)
        iterator.next()
        assert len(hits) == 1
        assert hits[0][1] == "match"

    def test_plain_iteration_clean(self, monitored):
        engine, hits = monitored("unsafemapiter")
        mapping = MonitoredMap()
        mapping.put("a", 1)
        mapping.put("b", 2)
        iterator = mapping.key_set().iterator()
        while iterator.has_next():
            iterator.next()
        assert hits == []

    def test_update_before_iterator_creation_clean(self, monitored):
        engine, hits = monitored("unsafemapiter")
        mapping = MonitoredMap()
        mapping.put("a", 1)
        view = mapping.values()
        mapping.put("b", 2)          # update before the iterator exists
        iterator = view.iterator()
        iterator.next()
        assert hits == []


class TestUnsafeSyncColl:
    def test_unsynchronized_iterator_creation(self, monitored):
        engine, hits = monitored("unsafesynccoll")
        coll = SynchronizedCollection([1, 2])
        coll.iterator()  # created outside the lock
        assert len(hits) == 1

    def test_synchronized_creation_but_unsynchronized_access(self, monitored):
        engine, hits = monitored("unsafesynccoll")
        coll = SynchronizedCollection([1, 2])
        with coll:
            iterator = coll.iterator()
        iterator.next()  # accessed outside the lock
        assert len(hits) == 1

    def test_fully_synchronized_use_is_clean(self, monitored):
        engine, hits = monitored("unsafesynccoll")
        coll = SynchronizedCollection([1, 2])
        with coll:
            iterator = coll.iterator()
            while iterator.has_next():
                iterator.next()
        assert hits == []

    def test_plain_collections_unaffected(self, monitored):
        engine, hits = monitored("unsafesynccoll")
        coll = MonitoredCollection([1])
        coll.iterator().next()
        assert hits == []


class TestUnsafeSyncMap:
    def test_unsynchronized_view_iterator(self, monitored):
        engine, hits = monitored("unsafesyncmap")
        mapping = SynchronizedMap()
        mapping.put("a", 1)
        view = mapping.key_set()
        view.iterator()  # outside the lock
        assert len(hits) == 1

    def test_synchronized_view_use_is_clean(self, monitored):
        engine, hits = monitored("unsafesyncmap")
        mapping = SynchronizedMap()
        mapping.put("a", 1)
        with mapping:
            view = mapping.key_set()
            iterator = view.iterator()
            iterator.next()
        assert hits == []


class TestSafeLock:
    def test_balanced_nesting_is_clean(self, monitored):
        engine, hits = monitored("safelock")
        lock = MonitoredLock("L")
        with MethodBody():
            lock.acquire()
            with MethodBody():
                lock.acquire()
                lock.release()
            lock.release()
        assert hits == []

    def test_unreleased_lock_in_method_fails(self, monitored):
        engine, hits = monitored("safelock")
        lock = MonitoredLock("L")
        body = MethodBody()
        body.enter()
        lock.acquire()
        body.exit()  # end before release: improperly nested
        assert len(hits) >= 1
        assert hits[0][1] == "fail"

    def test_release_without_acquire_fails(self, monitored):
        engine, hits = monitored("safelock")
        lock = MonitoredLock("L")
        lock.acquire()
        lock.release()
        # Force an unbalanced release through the raw event interface: the
        # shim itself would raise, which is exactly why we go around it.
        import threading

        engine.emit("release", l=lock, t=threading.current_thread())
        assert hits and hits[-1][1] == "fail"


class TestSafeEnum:
    def test_enumeration_after_update(self, monitored):
        engine, hits = monitored("safeenum")
        vector = MonitoredCollection([1, 2, 3])
        enumeration = vector.elements()
        enumeration.next()
        vector.add(4)
        enumeration.next()
        assert len(hits) == 1

    def test_plain_enumeration_clean(self, monitored):
        engine, hits = monitored("safeenum")
        vector = MonitoredCollection([1, 2])
        enumeration = vector.elements()
        enumeration.next()
        enumeration.next()
        assert hits == []


class TestSafeFile:
    def test_read_after_close_fails(self, monitored):
        engine, hits = monitored("safefile")
        handle = MonitoredFile("f")
        handle.open()
        handle.read()
        handle.close()
        handle.read()  # use after close
        assert hits and hits[0][1] == "fail"

    def test_open_use_close_cycles_clean(self, monitored):
        engine, hits = monitored("safefile")
        handle = MonitoredFile("f")
        for _ in range(2):
            handle.open()
            handle.read()
            handle.write("x")
            handle.close()
        assert hits == []

    def test_use_before_open_fails(self, monitored):
        engine, hits = monitored("safefile")
        MonitoredFile("f").write("x")
        assert hits and hits[0][1] == "fail"


class TestSafeFileWriter:
    def test_write_outside_session_fails(self, monitored):
        engine, hits = monitored("safefilewriter")
        handle = MonitoredFile("w")
        handle.open()
        handle.close()
        handle.write("x")
        assert hits and hits[0][1] == "fail"

    def test_write_inside_session_clean(self, monitored):
        engine, hits = monitored("safefilewriter")
        handle = MonitoredFile("w")
        handle.open()
        handle.write("x")
        handle.close()
        assert hits == []


class TestHashSetProperty:
    def test_mutate_then_lookup_matches(self, monitored):
        engine, hits = monitored("hashset")
        hashset = MonitoredHashSet()
        item = HashedObject(1)
        hashset.add(item)
        item.mutate()
        hashset.contains(item)
        assert len(hits) == 1
        assert hits[0][1] == "match"

    def test_lookup_without_mutation_clean(self, monitored):
        engine, hits = monitored("hashset")
        hashset = MonitoredHashSet()
        item = HashedObject(1)
        hashset.add(item)
        hashset.contains(item)
        hashset.remove(item)
        assert hits == []

    def test_mutation_of_unrelated_object_clean(self, monitored):
        engine, hits = monitored("hashset")
        hashset = MonitoredHashSet()
        inside, outside = HashedObject(1), HashedObject(2)
        hashset.add(inside)
        outside.mutate()
        hashset.contains(inside)
        assert hits == []
