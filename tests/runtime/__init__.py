"""Test package marker (enables the relative conftest imports)."""
