"""Kernel-cache correctness across the hot property lifecycle.

The codegen dispatch path compiles one generated module per property
*fingerprint* and shares it process-wide
(``repro.spec.codegen.shared_kernel_cache``).  The contract this suite
pins down:

* equal fingerprints yield byte-identical generated source, so a cache
  hit is always safe — a second engine, a second shard, or a hot
  re-attach reuses the compiled code objects while binding fresh
  per-runtime state;
* distinct fingerprints (different properties, changed semantics) miss by
  construction and get distinct modules;
* ``invalidate`` is purely a memory/perf event: the regenerated module is
  byte-identical and verdicts are unaffected;
* hot attach / detach / re-attach and disable / re-enable rebind kernels
  against the *current* runtime's trees — a detached slot's kernels never
  see another incarnation's state;
* process-backend workers recompile kernels in their own interpreter and
  still produce the inline verdict multiset.
"""

from __future__ import annotations

from collections import Counter

from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries
from repro.service import MonitorService, ingest_symbolic
from repro.spec.codegen import kernel_source_for, shared_kernel_cache

from ..conftest import Obj
from ..persist.conftest import (
    seed_for,
    symbolic_record_key,
    symbolic_verdict_key,
    synth_entries,
)


def _codegen_engine(key: str, **kwargs) -> MonitoringEngine:
    return MonitoringEngine(
        ALL_PROPERTIES[key].make().silence(),
        gc="coenable",
        dispatch="codegen",
        **kwargs,
    )


def _runtime(engine: MonitoringEngine):
    return next(r for r in engine.runtimes if r is not None)


def _prop(engine: MonitoringEngine):
    return next(p for p in engine.properties if p is not None)


def test_same_fingerprint_reuses_cached_module():
    """A second engine hosting the same property is a pure cache hit:
    shared code objects, private kernel closures."""
    first = _codegen_engine("unsafeiter")
    fingerprint = _prop(first).fingerprint()
    assert fingerprint in shared_kernel_cache
    size, hits = len(shared_kernel_cache), shared_kernel_cache.hits
    second = _codegen_engine("unsafeiter")
    assert shared_kernel_cache.hits == hits + 1
    assert len(shared_kernel_cache) == size
    rt_first, rt_second = _runtime(first), _runtime(second)
    assert rt_first._kernel_module is rt_second._kernel_module
    # Same code, never shared state: each runtime's closures are its own.
    assert rt_first._kernels is not rt_second._kernels
    for event, kernel in rt_first._kernels.items():
        assert kernel is not rt_second._kernels[event]


def test_distinct_fingerprints_get_distinct_modules():
    unsafeiter = _prop(_codegen_engine("unsafeiter"))
    hasnext = _prop(_codegen_engine("hasnext"))
    assert unsafeiter.fingerprint() != hasnext.fingerprint()
    assert kernel_source_for(unsafeiter) != kernel_source_for(hasnext)
    # Two compilations of the same specification: same fingerprint,
    # byte-identical source (the cache-safety invariant).
    again = _prop(_codegen_engine("unsafeiter"))
    assert again.fingerprint() == unsafeiter.fingerprint()
    assert kernel_source_for(again) == kernel_source_for(unsafeiter)


def test_invalidation_regenerates_byte_identical_module():
    engine = _codegen_engine("unsafeiter")
    fingerprint = _prop(engine).fingerprint()
    module = _runtime(engine)._kernel_module
    assert shared_kernel_cache.invalidate(fingerprint)
    assert fingerprint not in shared_kernel_cache
    assert not shared_kernel_cache.invalidate(fingerprint)
    misses = shared_kernel_cache.misses
    rebuilt_engine = _codegen_engine("unsafeiter")
    assert shared_kernel_cache.misses == misses + 1
    rebuilt = _runtime(rebuilt_engine)._kernel_module
    assert rebuilt is not module
    assert rebuilt.source == module.source
    assert fingerprint in shared_kernel_cache


def test_hot_reattach_hits_cache_and_matches_upfront_engine():
    """Detach + re-attach: the second attach reuses the compiled module
    (no regeneration) and the re-attached slot behaves exactly like a
    fresh codegen engine fed only the suffix."""
    hot_paper = ALL_PROPERTIES["hasnext"]
    hot_probe = hot_paper.make().silence()
    hot_names = {prop.spec_name for prop in hot_probe.properties}
    entries = synth_entries(
        hot_probe.properties[0].definition, seed_for("codegen-reattach"), events=240
    )
    k = len(entries) // 2

    def collect():
        verdicts: Counter = Counter()

        def on_verdict(prop, category, monitor):
            if prop.spec_name in hot_names:
                verdicts[symbolic_verdict_key(prop, category, monitor)] += 1

        return verdicts, on_verdict

    got, on_verdict = collect()
    engine = _codegen_engine("unsafeiter", on_verdict=on_verdict)
    refs = engine.attach_property(hot_paper.make().silence())
    # The hot property's modules are cached now; warm-up prefix runs on the
    # first incarnation, which is then detached with its whole history.
    tokens: dict = {}
    replay_entries(entries, engine, retire_after_last_use=True, stop=k, tokens=tokens)
    detached: dict[tuple[str, str], object] = {}
    for ref in refs:
        entry = engine.registry.entry(ref)
        detached[(entry.spec_name, entry.formalism)] = engine.detach_property(ref)
    got.clear()
    misses = shared_kernel_cache.misses
    engine.attach_property(hot_paper.make().silence())
    assert shared_kernel_cache.misses == misses  # pure hit on re-attach
    replay_entries(entries, engine, retire_after_last_use=True, start=k, tokens=tokens)

    want, on_verdict = collect()
    upfront = _codegen_engine("hasnext", on_verdict=on_verdict)
    replay_entries(entries, upfront, retire_after_last_use=True, start=k)
    assert got == want
    for prop in hot_probe.properties:
        # stats_for folds the detached first incarnation's totals in;
        # subtract them to compare the re-attached slot's suffix run.
        fresh = engine.stats_for(prop.spec_name, prop.formalism)
        first = detached[(prop.spec_name, prop.formalism)]
        reference = upfront.stats_for(prop.spec_name, prop.formalism)
        assert fresh.events - first.events == reference.events, prop.formalism
        assert (
            fresh.monitors_created - first.monitors_created
            == reference.monitors_created
        ), prop.formalism


def test_disable_reenable_keeps_kernels_live():
    verdicts: Counter = Counter()
    engine = _codegen_engine(
        "unsafeiter", on_verdict=lambda prop, category, monitor: verdicts.update([category])
    )

    def violate():
        c, i = Obj("c"), Obj("i")
        engine.emit("create", c=c, i=i)
        engine.emit("update", c=c)
        engine.emit("next", i=i)

    violate()
    assert verdicts["match"] == 1
    ref = "UnsafeIter/ere"
    engine.set_property_enabled(ref, False)
    events_paused = engine.stats_for("UnsafeIter").events
    violate()  # dropped: the disabled slot sees nothing
    assert engine.stats_for("UnsafeIter").events == events_paused
    assert verdicts["match"] == 1
    engine.set_property_enabled(ref, True)
    violate()
    assert verdicts["match"] == 2


def test_process_backend_recompiles_and_matches_inline():
    """Process-mode workers rebuild their engines (and therefore regenerate
    kernels) in a separate interpreter; the verdict multiset must equal the
    inline run's."""
    spec = ALL_PROPERTIES["unsafeiter"].make().silence()
    entries = synth_entries(
        spec.properties[0].definition, seed_for("codegen-process"), events=300
    )

    def run(mode: str) -> Counter:
        service = MonitorService(
            ALL_PROPERTIES["unsafeiter"].make().silence(),
            shards=2,
            gc="coenable",
            dispatch="codegen",
            mode=mode,
        )
        try:
            ingest_symbolic(service, entries, retire_after_last_use=True)
            service.drain()
            return Counter(
                symbolic_record_key(record) for record in service.verdicts()
            )
        finally:
            service.close()

    inline = run("inline")
    assert inline  # the trace does produce verdicts
    assert run("process") == inline
