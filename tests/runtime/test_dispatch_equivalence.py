"""Compiled fast-path dispatch must equal the retained reference path.

The compiled dispatch layer (slot tuples, DispatchPlan creation strategies,
flat FSM transition tables) re-implements the exact semantics of the
reference interpretation kept in ``PropertyRuntime._handle_reference``.
This suite drives *both* engines in lockstep over randomized traces with
parameter deaths — every property in the library x every GC strategy x a
seed corpus — and asserts the robust observables are identical:

* the verdict multiset (category + parameter-object identities),
* E (events) and M (monitors created),
* handler fires (== goal verdicts, robust to GC timing).

FM/CM are deliberately excluded: they measure *when* lazy scans discover
deaths, which legitimately depends on the number of map operations each
path performs (the compiled path fuses lookups); soundness of flagging is
covered by tests/runtime/test_gc_soundness.py.

The lockstep construction shares one set of parameter objects between the
two engines, so deaths (CPython refcount drops) hit both at the same
boundary and binding identities compare directly.
"""

from __future__ import annotations

import gc
import random
import zlib
from collections import Counter

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries

from ..conftest import Obj

GC_STRATEGIES = ("none", "alldead", "coenable", "statebased")
EVENTS = 350
POOL = 4
KILL_PROBABILITY = 0.12
SEEDS = (1, 2)


def synth_ops(definition, seed: int):
    """A reproducible op list: emits over the alphabet + object kills.

    Pools are small so bindings collide (shared sub-instances exercise the
    defineTo and join creation paths); kills replace a pooled object so the
    name can be re-bound by a fresh identity later (exercising recreation
    and the disable-knowledge checks).
    """
    rng = random.Random(seed)
    alphabet = sorted(definition.alphabet)
    parameters = sorted(definition.parameters)
    ops: list[tuple] = []
    for _ in range(EVENTS):
        if parameters and rng.random() < KILL_PROBABILITY:
            param = rng.choice(parameters)
            ops.append(("kill", param, rng.randrange(POOL)))
        event = rng.choice(alphabet)
        ops.append(
            (
                "emit",
                event,
                {
                    param: rng.randrange(POOL)
                    for param in sorted(definition.params_of(event))
                },
            )
        )
    return ops


#: Every dispatch implementation the lockstep oracle covers; ``reference``
#: is the semantic anchor the other two must match exactly.
DISPATCHES = ("reference", "compiled", "codegen")


def run_lockstep(spec_factory, ops, gc_kind: str, dispatches=DISPATCHES):
    """Run one engine per dispatch over the same objects/deaths.

    Returns ``(engines, verdict_bags)`` keyed by dispatch name; each bag
    counts verdicts keyed by property identity plus the *binding identity*
    of the firing monitor, so a stale or duplicated monitor shows up even
    when verdict totals happen to agree.
    """

    def collector(bag: Counter):
        def on_verdict(prop, category, monitor):
            bag[
                (
                    prop.spec_name,
                    prop.formalism,
                    category,
                    tuple(
                        sorted(
                            (name, id(value))
                            for name, value in monitor.binding().items()
                        )
                    ),
                )
            ] += 1

        return on_verdict

    engines: dict[str, MonitoringEngine] = {}
    verdicts: dict[str, Counter] = {}
    for dispatch in dispatches:
        bag: Counter = Counter()
        engines[dispatch] = MonitoringEngine(
            spec_factory(), gc=gc_kind, on_verdict=collector(bag),
            dispatch=dispatch,
        )
        verdicts[dispatch] = bag
    pools: dict[str, list[Obj]] = {}
    serial = 0
    for op in ops:
        if op[0] == "kill":
            _tag, param, slot = op
            pool = pools.get(param)
            if pool is not None:
                serial += 1
                pool[slot] = Obj(f"{param}#{serial}")  # the old object dies here
        else:
            _tag, event, binding = op
            values = {}
            for param, slot in binding.items():
                pool = pools.get(param)
                if pool is None:
                    pool = pools[param] = [Obj(f"{param}{n}") for n in range(POOL)]
                values[param] = pool[slot]
            for engine in engines.values():
                engine.emit(event, **values)
    pools.clear()
    gc.collect()
    for engine in engines.values():
        engine.flush_gc()
    return engines, verdicts


@pytest.mark.parametrize("gc_kind", GC_STRATEGIES)
@pytest.mark.parametrize("key", sorted(ALL_PROPERTIES))
def test_dispatches_equal_reference(key, gc_kind):
    """The lockstep oracle: compiled AND codegen match reference exactly."""
    paper_prop = ALL_PROPERTIES[key]
    spec = paper_prop.make().silence()
    try:
        MonitoringEngine(paper_prop.make().silence(), gc=gc_kind)
    except UnsupportedFormalismError:
        pytest.skip(f"{key} does not support the {gc_kind} strategy (CFG)")
    for seed in SEEDS:
        ops = synth_ops(spec.definition, seed=zlib.crc32(f"{key}/{seed}".encode()))
        engines, verdicts = run_lockstep(
            lambda: paper_prop.make().silence(), ops, gc_kind
        )
        want = verdicts["reference"]
        reference = engines["reference"]
        for dispatch in ("compiled", "codegen"):
            assert verdicts[dispatch] == want, (key, gc_kind, seed, dispatch)
            for (name, formalism), stats in engines[dispatch].stats().items():
                other = reference.stats_for(name, formalism)
                assert stats.events == other.events, (key, gc_kind, seed, dispatch)
                assert stats.monitors_created == other.monitors_created, (
                    key,
                    gc_kind,
                    seed,
                    dispatch,
                )
                assert stats.handler_fires == other.handler_fires, (
                    key, gc_kind, seed, dispatch,
                )
                assert stats.verdicts == other.verdicts, (key, gc_kind, seed, dispatch)


def test_all_properties_together_compiled_vs_reference():
    """One engine pair hosting every property at once (cross-spec events)."""
    rng = random.Random(20110604)
    specs = [prop.make().silence() for prop in ALL_PROPERTIES.values()]
    domains: dict[str, frozenset] = {}
    for spec in specs:
        for event in spec.definition.alphabet:
            domains[event] = domains.get(event, frozenset()) | spec.definition.params_of(event)
    parameters = sorted({param for domain in domains.values() for param in domain})
    alphabet = sorted(domains)

    def collector(bag: Counter):
        def on_verdict(prop, category, monitor):
            bag[
                (
                    prop.spec_name,
                    prop.formalism,
                    category,
                    tuple(
                        sorted(
                            (name, id(value))
                            for name, value in monitor.binding().items()
                        )
                    ),
                )
            ] += 1

        return on_verdict

    got: Counter = Counter()
    want: Counter = Counter()
    compiled = MonitoringEngine(
        [prop.make().silence() for prop in ALL_PROPERTIES.values()],
        gc="coenable",
        on_verdict=collector(got),
        dispatch="compiled",
    )
    reference = MonitoringEngine(
        [prop.make().silence() for prop in ALL_PROPERTIES.values()],
        gc="coenable",
        on_verdict=collector(want),
        dispatch="reference",
    )
    pools = {param: [Obj(f"{param}{n}") for n in range(POOL)] for param in parameters}
    serial = 0
    for _ in range(600):
        if rng.random() < KILL_PROBABILITY:
            param = rng.choice(parameters)
            serial += 1
            pools[param][rng.randrange(POOL)] = Obj(f"{param}#{serial}")
        event = rng.choice(alphabet)
        values = {param: rng.choice(pools[param]) for param in domains[event]}
        compiled.emit(event, _strict=False, **values)
        reference.emit(event, _strict=False, **values)
    assert got == want
    compiled_stats = compiled.stats()
    for key, stats in compiled_stats.items():
        other = reference.stats_for(*key)
        assert stats.events == other.events, key
        assert stats.monitors_created == other.monitors_created, key


@pytest.mark.parametrize("key", ("hasnext", "unsafeiter", "unsafemapiter", "safeenum"))
def test_targeted_eager_equals_full_eager(key):
    """The targeted eager propagation (purge only affected trees/buckets,
    evict flagged monitors directly) must match the historical full-scan
    eager regime on every robust observable, including flag counts — both
    deliver every pending death notification at the same event boundary."""
    paper_prop = ALL_PROPERTIES[key]
    spec = paper_prop.make().silence()
    ops = synth_ops(spec.definition, seed=zlib.crc32(key.encode()) ^ 0xE46E5)

    def run(propagation):
        verdicts: Counter = Counter()
        engine = MonitoringEngine(
            paper_prop.make().silence(),
            gc="coenable",
            propagation=propagation,
            on_verdict=lambda prop, cat, mon: verdicts.update(
                [(cat, tuple(sorted(name for name, _ in mon.binding().items())))]
            ),
        )
        pools: dict[str, list[Obj]] = {}
        serial = 0
        for op in ops:
            if op[0] == "kill":
                _tag, param, slot = op
                if param in pools:
                    serial += 1
                    pools[param][slot] = Obj(f"{param}#{serial}")
            else:
                _tag, event, binding = op
                values = {}
                for param, slot in binding.items():
                    pool = pools.setdefault(
                        param, [Obj(f"{param}{n}") for n in range(POOL)]
                    )
                    values[param] = pool[slot]
                engine.emit(event, **values)
        pools.clear()
        gc.collect()
        engine.flush_gc()
        stats = next(iter(engine.stats().values()))
        return (
            verdicts,
            stats.events,
            stats.monitors_created,
            stats.monitors_flagged,
        )

    assert run("eager") == run("eager_full")


def test_batched_replay_equals_per_event_replay():
    """emit_batch ingestion lands deaths at the same boundaries: identical
    verdicts, monitor counts and event counts for any batch size."""
    from repro.bench.workloads import WORKLOADS, record_workload_events
    from repro.properties import UNSAFEITER

    entries = record_workload_events(WORKLOADS["bloat"].scaled(0.05), [UNSAFEITER])

    def run(batch_size):
        verdicts: Counter = Counter()
        engine = MonitoringEngine(
            UNSAFEITER.make().silence(),
            gc="coenable",
            on_verdict=lambda prop, cat, mon: verdicts.update([cat]),
        )
        replay_entries(
            entries, engine, retire_after_last_use=True, batch_size=batch_size
        )
        stats = engine.stats_for("UnsafeIter")
        return verdicts, stats.events, stats.monitors_created

    baseline = run(None)
    for batch_size in (1, 7, 64, 100000):
        assert run(batch_size) == baseline, batch_size


def test_emit_batch_counts_and_strictness():
    from repro.core.errors import UnknownEventError
    from repro.properties import UNSAFEITER

    engine = MonitoringEngine(UNSAFEITER.make().silence(), gc="coenable")
    c, i = Obj("c"), Obj("i")
    accepted = engine.emit_batch(
        [("create", {"c": c, "i": i}), ("nosuch", {}), ("next", {"i": i})],
        _strict=False,
    )
    assert accepted == 2
    assert engine.stats_for("UnsafeIter").events == 2
    with pytest.raises(UnknownEventError):
        engine.emit_batch([("nosuch", {})])
