"""Engine dispatch and creation-semantics tests."""

from __future__ import annotations

import pytest

from repro.core.errors import InconsistentEventError, UnknownEventError
from repro.runtime.engine import MonitoringEngine
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event hasnextfalse(i)
  event next(i)
  fsm:
    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    none    [ hasnextfalse -> none  next -> error ]
    error   [ ]
  @error
}
"""


def collect(spec, category):
    hits = []
    for prop in spec.properties:
        if category in prop.template.categories:
            prop.on(category, lambda name, cat, binding: hits.append(binding))
    return hits


class TestDispatch:
    def test_match_on_paper_scenario(self):
        spec = compile_spec(UNSAFEITER)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        c1, i1 = Obj("c1"), Obj("i1")
        engine.emit("create", c=c1, i=i1)
        engine.emit("update", c=c1)
        engine.emit("next", i=i1)
        assert len(hits) == 1
        assert hits[0]["c"] is c1 and hits[0]["i"] is i1

    def test_independent_instances_do_not_interfere(self):
        spec = compile_spec(UNSAFEITER)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        c1, i1, i2 = Obj("c1"), Obj("i1"), Obj("i2")
        engine.emit("create", c=c1, i=i1)
        engine.emit("create", c=c1, i=i2)
        engine.emit("update", c=c1)
        engine.emit("next", i=i2)
        assert len(hits) == 1
        assert hits[0]["i"] is i2

    def test_unknown_event_raises_when_strict(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), gc="none")
        with pytest.raises(UnknownEventError):
            engine.emit("zzz", c=Obj("c"))

    def test_unknown_event_dropped_when_lenient(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), gc="none")
        engine.emit("zzz", _strict=False, c=Obj("c"))  # no raise

    def test_missing_parameter_raises(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), gc="none")
        with pytest.raises(InconsistentEventError):
            engine.emit("create", c=Obj("c"))

    def test_extra_parameters_restricted_away(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), gc="none")
        engine.emit("update", c=Obj("c"), i=Obj("ignored"))
        assert engine.stats_for("UnsafeIter").events == 1

    def test_event_routed_to_all_declaring_specs(self):
        hasnext, unsafeiter = compile_spec(HASNEXT), compile_spec(UNSAFEITER)
        engine = MonitoringEngine([hasnext, unsafeiter], gc="none")
        i1 = Obj("i1")
        engine.emit("next", i=i1)
        assert engine.stats_for("HasNext", "fsm").events == 1
        assert engine.stats_for("UnsafeIter").events == 1

    def test_stats_lookup_errors(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), gc="none")
        with pytest.raises(KeyError):
            engine.stats_for("Nonexistent")


class TestCreationSemantics:
    def test_creation_events_create_monitors(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="none")
        engine.emit("update", c=Obj("c1"))
        assert engine.stats_for("UnsafeIter").monitors_created == 1

    def test_non_creation_events_do_not(self):
        """next is not a creation event for UNSAFEITER: its ENABLE set is
        {{c, i}} — a next with no prior create cannot open a match."""
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="none")
        engine.emit("next", i=Obj("i1"))
        assert engine.stats_for("UnsafeIter").monitors_created == 0

    def test_define_to_from_max_sub_instance(self):
        """A <c1> monitor's state seeds the <c1,i1> monitor (Figure 5 line 4)."""
        spec = compile_spec(UNSAFEITER)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        c1, i1 = Obj("c1"), Obj("i1")
        engine.emit("update", c=c1)            # slice(c1) = update
        engine.emit("create", c=c1, i=i1)      # slice(c1,i1) = update create
        engine.emit("update", c=c1)
        engine.emit("next", i=i1)              # update create update next = match
        assert len(hits) == 1

    def test_skipped_creation_blocks_stale_joins(self):
        """JavaMOP's disable-timestamp rule: once next<i1> was skipped, a
        later <c1,i1> creation would silently lose that event, and the true
        slice (with next before create) can never match — so no monitor may
        be created and no match may ever be reported for <c1,i1>."""
        spec = compile_spec(UNSAFEITER)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        c1, i1 = Obj("c1"), Obj("i1")
        engine.emit("next", i=i1)              # skipped: no monitor
        engine.emit("update", c=c1)            # creates <c1>
        engine.emit("create", c=c1, i=i1)      # must NOT create <c1,i1>
        engine.emit("update", c=c1)
        engine.emit("next", i=i1)
        assert hits == []

    def test_repeated_events_do_not_duplicate_monitors(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="none")
        c1 = Obj("c1")
        for _ in range(5):
            engine.emit("update", c=c1)
        assert engine.stats_for("UnsafeIter").monitors_created == 1

    def test_hasnext_immediate_error_fires_on_creation(self):
        spec = compile_spec(HASNEXT)
        hits = collect(spec, "error")
        engine = MonitoringEngine(spec, gc="none")
        engine.emit("next", i=Obj("i1"))
        assert len(hits) == 1


class TestCrossJoinCreation:
    """The a<x> b<y> c<x,y> shape: a join between *incomparable* instances.

    ENABLE(b) = {{a}} lifts to {{x}}, so b<y1> must join with every existing
    <x?> instance and create <x?, y1> monitors seeded from their states —
    the paper's {theta} ⊔ Theta joins, pruned by enable sets.
    """

    SPEC = """
    AB(x, y) {
      event a(x)
      event b(y)
      event c(x, y)
      ere: a b c
      @match
    }
    """

    def test_join_produces_match(self):
        spec = compile_spec(self.SPEC)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        x1, y1 = Obj("x1"), Obj("y1")
        engine.emit("a", x=x1)
        engine.emit("b", y=y1)     # joins with <x1> -> creates <x1,y1> at "a b"
        engine.emit("c", x=x1, y=y1)
        assert len(hits) == 1

    def test_join_respects_compatibility(self):
        spec = compile_spec(self.SPEC)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        x1, x2, y1 = Obj("x1"), Obj("x2"), Obj("y1")
        engine.emit("a", x=x1)
        engine.emit("a", x=x2)
        engine.emit("b", y=y1)     # joins with both x instances
        engine.emit("c", x=x2, y=y1)
        assert len(hits) == 1
        stats = engine.stats_for("AB")
        assert stats.monitors_created == 4  # <x1>, <x2>, <x1,y1>, <x2,y1>

    def test_b_first_never_matches(self):
        spec = compile_spec(self.SPEC)
        hits = collect(spec, "match")
        engine = MonitoringEngine(spec, gc="none")
        x1, y1 = Obj("x1"), Obj("y1")
        engine.emit("b", y=y1)     # no <x> exists: nothing to join
        engine.emit("a", x=x1)
        engine.emit("c", x=x1, y=y1)
        assert hits == []


class TestEngineConfig:
    def test_system_presets(self):
        engine = MonitoringEngine(compile_spec(UNSAFEITER), system="rv")
        assert engine.gc == "coenable"
        assert engine.propagation == "lazy"

    def test_system_and_gc_mutually_exclusive(self):
        with pytest.raises(ValueError):
            MonitoringEngine(compile_spec(UNSAFEITER), system="rv", gc="none")

    def test_bad_propagation_rejected(self):
        with pytest.raises(ValueError):
            MonitoringEngine(compile_spec(UNSAFEITER), propagation="sometimes")

    def test_accepts_single_property(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec.properties[0], gc="none")
        engine.emit("update", c=Obj("c1"))
        assert engine.stats_for("UnsafeIter").events == 1
