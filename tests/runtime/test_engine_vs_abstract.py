"""Randomized equivalence: production engine vs Algorithm MONITOR (Figure 5).

The engine prunes monitor creation with enable sets and skips stale joins
with the disable/touched rule.  Both optimizations are *goal-preserving*:
every verdict in the goal set that the abstract algorithm reports must be
reported by the engine, for the same parameter instance, at the same event
— and vice versa.  We check this on random parametric traces for three
property shapes (1-param FSM, 2-param ERE, the cross-join ERE, and the
3-param UNSAFEMAPITER pattern).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.events import ParametricEvent
from repro.core.parametric import AbstractParametricMonitor
from repro.core.params import Binding
from repro.runtime.engine import MonitoringEngine
from repro.spec import compile_spec

from ..conftest import Obj

SPECS = {
    "hasnext": """
        HasNext(i) {
          event hasnexttrue(i)
          event hasnextfalse(i)
          event next(i)
          fsm:
            unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
            more    [ hasnexttrue -> more  next -> unknown ]
            none    [ hasnextfalse -> none  next -> error ]
            error   [ ]
          @error
        }
    """,
    "unsafeiter": """
        UnsafeIter(c, i) {
          event create(c, i)
          event update(c)
          event next(i)
          ere: update* create next* update+ next
          @match
        }
    """,
    "crossjoin": """
        AB(x, y) {
          event a(x)
          event b(y)
          event c(x, y)
          ere: a b c | a c
          @match
        }
    """,
    "mapiter": """
        UnsafeMapIter(m, c, i) {
          event createcoll(m, c)
          event createiter(c, i)
          event updatemap(m)
          event useiter(i)
          ere: updatemap* createcoll updatemap* createiter useiter* updatemap+ useiter
          @match
        }
    """,
}

_OBJECTS = [Obj(f"v{i}") for i in range(3)]


def trace_strategy(spec_key: str):
    spec = compile_spec(SPECS[spec_key])
    definition = spec.definition
    events = sorted(definition.alphabet)

    @st.composite
    def traces(draw):
        length = draw(st.integers(min_value=0, max_value=8))
        result = []
        for _ in range(length):
            name = draw(st.sampled_from(events))
            binding = {
                param: draw(st.sampled_from(_OBJECTS))
                for param in sorted(definition.params_of(name))
            }
            result.append(ParametricEvent(name, binding))
        return result

    return traces()


def goal_reports_abstract(spec_source: str, trace) -> list[tuple[str, Binding, int]]:
    """(category, instance, position) triples the abstract algorithm reports."""
    spec = compile_spec(spec_source)
    prop = spec.properties[0]
    monitor = AbstractParametricMonitor(prop.template, prop.definition)
    reports = []
    for position, event in enumerate(trace):
        for theta, category in monitor.process(event).items():
            if category in prop.goal:
                reports.append((category, theta, position))
    return reports


def goal_reports_engine(spec_source: str, trace) -> list[tuple[str, Binding, int]]:
    spec = compile_spec(spec_source)
    reports = []
    position_box = {"pos": 0}

    def on_verdict(prop, category, monitor):
        reports.append((category, monitor.binding(), position_box["pos"]))

    engine = MonitoringEngine(spec, gc="none", on_verdict=on_verdict)
    for position, event in enumerate(trace):
        position_box["pos"] = position
        engine.emit_binding(event.name, event.binding)
    return reports


def normalized(reports):
    return sorted(
        ((category, tuple(sorted((n, id(v)) for n, v in binding.items())), position)
         for category, binding, position in reports)
    )


@settings(max_examples=60, deadline=None)
@given(trace_strategy("hasnext"))
def test_hasnext_goal_equivalence(trace):
    assert normalized(goal_reports_engine(SPECS["hasnext"], trace)) == normalized(
        goal_reports_abstract(SPECS["hasnext"], trace)
    )


@settings(max_examples=60, deadline=None)
@given(trace_strategy("unsafeiter"))
def test_unsafeiter_goal_equivalence(trace):
    assert normalized(goal_reports_engine(SPECS["unsafeiter"], trace)) == normalized(
        goal_reports_abstract(SPECS["unsafeiter"], trace)
    )


@settings(max_examples=60, deadline=None)
@given(trace_strategy("crossjoin"))
def test_crossjoin_goal_equivalence(trace):
    assert normalized(goal_reports_engine(SPECS["crossjoin"], trace)) == normalized(
        goal_reports_abstract(SPECS["crossjoin"], trace)
    )


@settings(max_examples=40, deadline=None)
@given(trace_strategy("mapiter"))
def test_mapiter_goal_equivalence(trace):
    assert normalized(goal_reports_engine(SPECS["mapiter"], trace)) == normalized(
        goal_reports_abstract(SPECS["mapiter"], trace)
    )


@settings(max_examples=30, deadline=None)
@given(trace_strategy("unsafeiter"))
def test_gc_strategies_do_not_change_goal_reports(trace):
    """With every parameter object alive for the whole run, all strategies
    must report exactly the same goal verdicts as gc='none'."""
    baseline = normalized(goal_reports_engine(SPECS["unsafeiter"], trace))
    for gc_kind in ("alldead", "coenable", "statebased"):
        spec = compile_spec(SPECS["unsafeiter"])
        reports = []
        box = {"pos": 0}
        engine = MonitoringEngine(
            spec,
            gc=gc_kind,
            on_verdict=lambda prop, cat, mon: reports.append(
                (cat, mon.binding(), box["pos"])
            ),
        )
        for position, event in enumerate(trace):
            box["pos"] = position
            engine.emit_binding(event.name, event.binding)
        assert normalized(reports) == baseline, gc_kind
