"""Monitor garbage collection behavior — the paper's central claims.

Deterministic object-death scenarios (CPython refcounting makes weakref
death immediate; ``gc.collect()`` guards against stray cycles) assert who
flags what under each strategy:

* RV (coenable): a dead Iterator makes every UNSAFEITER monitor bound to it
  collectable, even while its Collection lives — the Section 1 scenario
  JavaMOP cannot handle;
* JavaMOP (alldead): the same monitors are retained until the Collection
  dies too;
* Tracematches analog (statebased): at least as precise as coenable;
* physical reclamation (CM) happens through lazy structure cleanup.
"""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.runtime.engine import MonitoringEngine
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""

SAFELOCK = """
SafeLock(l, t) {
  event acquire(l, t)
  event release(l, t)
  event begin(t)
  event end(t)
  cfg: S -> S begin S end | S acquire S release | epsilon
  @fail
}
"""


def engine_with_dead_iterator(gc_kind: str):
    """create<c,i>; next<i>; iterator dies; collection stays alive."""
    spec = compile_spec(UNSAFEITER)
    engine = MonitoringEngine(spec, gc=gc_kind)
    c1 = Obj("c1")
    i1 = Obj("i1")
    engine.emit("create", c=c1, i=i1)
    engine.emit("next", i=i1)
    del i1
    gc.collect()
    engine.flush_gc()
    return engine, spec, c1


class TestSection1Scenario:
    """The UNSAFEITER leak the paper opens with."""

    def test_rv_flags_and_collects_dead_iterator_monitor(self):
        engine, _spec, _c1 = engine_with_dead_iterator("coenable")
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_created == 1
        assert stats.monitors_flagged == 1
        assert stats.monitors_collected == 1
        assert stats.live_monitors == 0

    def test_mop_retains_while_collection_lives(self):
        engine, _spec, c1 = engine_with_dead_iterator("alldead")
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged == 0
        assert stats.live_monitors == 1
        del c1  # now the collection dies too...
        gc.collect()
        engine.flush_gc()
        # ...and the monitor becomes unreachable through the dead trees.
        assert engine.stats_for("UnsafeIter").live_monitors == 0

    def test_statebased_flags_dead_iterator_monitor(self):
        engine, _spec, _c1 = engine_with_dead_iterator("statebased")
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged == 1

    def test_none_strategy_never_flags(self):
        engine, _spec, _c1 = engine_with_dead_iterator("none")
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged == 0
        assert stats.live_monitors == 1


class TestDeadCollectionAliveIterator:
    """Dual scenario: collection dies, iterator lives.

    After an update event only {i} is required (the paper's minimized
    ALIVENESS), so coenable keeps the monitor; after create/next both are
    required, so coenable flags it.
    """

    def test_last_event_update_keeps_monitor(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable")
        c1, i1 = Obj("c1"), Obj("i1")
        engine.emit("create", c=c1, i=i1)
        engine.emit("update", c=c1)
        del c1
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        # The <c1,i1> monitor's last event is update: live_i suffices.
        # (Trees keyed by c died, so reachability drops, but the monitor was
        # not *flagged* by the coenable check.)
        assert stats.monitors_flagged <= 1  # the <c1> monitor may be flagged
        del i1

    def test_last_event_next_flags_monitor(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable")
        c1, i1 = Obj("c1"), Obj("i1")
        engine.emit("create", c=c1, i=i1)
        engine.emit("next", i=i1)
        del c1
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged == 1
        del i1


class TestLazyDiscovery:
    """Flagging happens on *access*, not at death time (lazy propagation)."""

    def test_death_alone_does_not_flag(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable")
        c1 = Obj("c1")
        i1 = Obj("i1")
        engine.emit("create", c=c1, i=i1)
        engine.emit("next", i=i1)
        del i1
        gc.collect()
        # No structure has been touched since the death: nothing flagged yet.
        assert engine.stats_for("UnsafeIter").monitors_flagged == 0

    def test_subsequent_activity_discovers_the_death(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable", scan_budget=8)
        c1 = Obj("c1")
        for round_number in range(30):
            iterator = Obj(f"i{round_number}")
            engine.emit("create", c=c1, i=iterator)
            engine.emit("next", i=iterator)
            del iterator
        gc.collect()
        # Keep monitoring: ordinary accesses must discover the corpses.
        for round_number in range(30, 40):
            iterator = Obj(f"i{round_number}")
            engine.emit("create", c=c1, i=iterator)
            engine.emit("next", i=iterator)
            del iterator
        gc.collect()
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged > 0  # no flush_gc was ever called

    def test_eager_propagation_discovers_at_next_event(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable", propagation="eager")
        c1, c2 = Obj("c1"), Obj("c2")
        i1 = Obj("i1")
        engine.emit("create", c=c1, i=i1)
        engine.emit("next", i=i1)
        del i1
        gc.collect()
        engine.emit("update", c=c2)  # unrelated event triggers the full scan
        assert engine.stats_for("UnsafeIter").monitors_flagged == 1


class TestChurnAccounting:
    """E / M / FM / CM bookkeeping over a churny run (Figure 10 shape)."""

    @pytest.mark.parametrize("gc_kind,expect_flagged", [("coenable", True), ("alldead", False)])
    def test_iterator_churn(self, gc_kind, expect_flagged):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc=gc_kind)
        c1 = Obj("c1")
        rounds = 40
        for round_number in range(rounds):
            iterator = Obj(f"i{round_number}")
            engine.emit("create", c=c1, i=iterator)
            engine.emit("next", i=iterator)
            del iterator
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.events == 2 * rounds
        assert stats.monitors_created == rounds
        if expect_flagged:
            assert stats.monitors_flagged == rounds
            assert stats.monitors_collected == rounds
            assert stats.live_monitors == 0
        else:
            assert stats.monitors_flagged == 0
            assert stats.live_monitors == rounds

    def test_peak_live_monitors_stays_low_under_rv(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable", scan_budget=8)
        c1 = Obj("c1")
        for round_number in range(100):
            iterator = Obj(f"i{round_number}")
            engine.emit("create", c=c1, i=iterator)
            engine.emit("next", i=iterator)
            del iterator
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.peak_live_monitors < 100 / 2  # lazy, but far below M


class TestCfgAndStateGc:
    def test_statebased_rejects_cfg(self):
        spec = compile_spec(SAFELOCK)
        with pytest.raises(UnsupportedFormalismError):
            MonitoringEngine(spec, gc="statebased")

    def test_coenable_handles_cfg_conservatively(self):
        """SAFELOCK's @fail goal compiles to a constant-true ALIVENESS: the
        coenable strategy never flags (collection falls back to structure
        death), mirroring that event-based pruning is unsound for fail."""
        spec = compile_spec(SAFELOCK)
        engine = MonitoringEngine(spec, gc="coenable")
        lock = Obj("lock")
        thread = Obj("thread")
        engine.emit("acquire", l=lock, t=thread)
        engine.emit("release", l=lock, t=thread)
        del lock
        gc.collect()
        engine.flush_gc()
        assert engine.stats_for("SafeLock").monitors_flagged == 0


class TestImmortalParameters:
    def test_non_weakrefable_params_never_flag(self):
        spec = compile_spec(UNSAFEITER)
        engine = MonitoringEngine(spec, gc="coenable")
        engine.emit("create", c="interned-string", i=42)
        engine.emit("next", i=42)
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_flagged == 0
        assert stats.live_monitors == 1
