"""GC soundness under randomized event/death interleavings.

Theorem 1 justifies collecting a monitor only when no goal verdict is
reachable anymore.  The observable consequence — and the strongest
invariant this library can assert — is that monitor garbage collection is
*verdict-transparent*: for any interleaving of parametric events and
parameter-object deaths, every GC strategy must report exactly the same
goal verdicts, at the same events, for the same instances, as the
no-collection baseline.  (A dead object cannot appear in future events, so
pruning its goal-unreachable monitors can never lose a report; and
flagging a goal-reachable monitor would lose one — which is what this test
would catch.)

Scenarios are random programs over symbolic objects: each step either
emits an event over live symbols or kills a symbol (dropping the only
strong reference; CPython reclaims it immediately).  Periodic flushes
exercise the notification/flagging machinery mid-run.
"""

from __future__ import annotations

import gc

from hypothesis import given, settings, strategies as st

from repro.runtime.engine import MonitoringEngine
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event hasnextfalse(i)
  event next(i)
  fsm:
    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    none    [ hasnextfalse -> none  next -> error ]
    error   [ ]
  @error
}
"""

_EVENTS = {
    "unsafeiter": [("create", ("c", "i")), ("update", ("c",)), ("next", ("i",))],
    "hasnext": [("hasnexttrue", ("i",)), ("hasnextfalse", ("i",)), ("next", ("i",))],
}
_SPECS = {"unsafeiter": UNSAFEITER, "hasnext": HASNEXT}
_SYMBOLS = [f"s{i}" for i in range(4)]


@st.composite
def scenarios(draw, spec_key):
    """A list of ops: ('emit', name, {param: symbol}) / ('kill', symbol) /
    ('flush',)."""
    length = draw(st.integers(min_value=0, max_value=12))
    ops = []
    for _ in range(length):
        kind = draw(st.sampled_from(["emit", "emit", "emit", "kill", "flush"]))
        if kind == "emit":
            name, params = draw(st.sampled_from(_EVENTS[spec_key]))
            binding = {param: draw(st.sampled_from(_SYMBOLS)) for param in params}
            ops.append(("emit", name, binding))
        elif kind == "kill":
            ops.append(("kill", draw(st.sampled_from(_SYMBOLS))))
        else:
            ops.append(("flush",))
    return ops


def run_scenario(spec_key: str, ops, gc_kind: str, propagation: str = "lazy"):
    """Execute a scenario; returns the normalized goal-report list."""
    spec = compile_spec(_SPECS[spec_key])
    reports: list[tuple] = []
    step_box = {"step": 0}

    def on_verdict(prop, category, monitor):
        names = tuple(sorted(monitor.params))
        symbols = tuple(
            objects_symbols.get(id(monitor.params[name].get()), "<dead>")
            for name in names
        )
        reports.append((step_box["step"], category, names, symbols))

    engine = MonitoringEngine(
        spec, gc=gc_kind, propagation=propagation, on_verdict=on_verdict
    )
    objects: dict[str, Obj] = {}
    objects_symbols: dict[int, str] = {}
    for step, op in enumerate(ops):
        step_box["step"] = step
        if op[0] == "emit":
            _tag, name, binding = op
            values = {}
            for param, symbol in binding.items():
                if symbol not in objects:
                    objects[symbol] = Obj(symbol)
                    objects_symbols[id(objects[symbol])] = symbol
                values[param] = objects[symbol]
            engine.emit(name, **values)
        elif op[0] == "kill":
            _tag, symbol = op
            victim = objects.pop(symbol, None)
            if victim is not None:
                del victim
                gc.collect()
        else:
            engine.flush_gc()
    return reports


@settings(max_examples=50, deadline=None)
@given(scenarios("unsafeiter"))
def test_unsafeiter_gc_is_verdict_transparent(ops):
    baseline = run_scenario("unsafeiter", ops, "none")
    for gc_kind in ("alldead", "coenable", "statebased"):
        assert run_scenario("unsafeiter", ops, gc_kind) == baseline, gc_kind


@settings(max_examples=40, deadline=None)
@given(scenarios("hasnext"))
def test_hasnext_gc_is_verdict_transparent(ops):
    baseline = run_scenario("hasnext", ops, "none")
    for gc_kind in ("alldead", "coenable", "statebased"):
        assert run_scenario("hasnext", ops, gc_kind) == baseline, gc_kind


@settings(max_examples=30, deadline=None)
@given(scenarios("unsafeiter"))
def test_eager_propagation_is_verdict_transparent(ops):
    baseline = run_scenario("unsafeiter", ops, "none")
    assert run_scenario("unsafeiter", ops, "coenable", propagation="eager") == baseline


@settings(max_examples=30, deadline=None)
@given(scenarios("unsafeiter"))
def test_flagged_monitors_never_fire(ops):
    """Direct statement of soundness: a monitor reported at some step was
    never flagged at any earlier step (flagging is terminal and silent)."""
    spec = compile_spec(UNSAFEITER)
    fired_flagged = []

    def on_verdict(prop, category, monitor):
        if monitor.flagged:
            fired_flagged.append(monitor)

    engine = MonitoringEngine(spec, gc="coenable", on_verdict=on_verdict)
    objects: dict[str, Obj] = {}
    for op in ops:
        if op[0] == "emit":
            _tag, name, binding = op
            values = {}
            for param, symbol in binding.items():
                objects.setdefault(symbol, Obj(symbol))
                values[param] = objects[symbol]
            engine.emit(name, **values)
        elif op[0] == "kill":
            objects.pop(op[1], None)
            gc.collect()
        else:
            engine.flush_gc()
    assert fired_flagged == []
