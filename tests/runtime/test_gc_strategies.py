"""Direct strategy-level tests, including the precision hierarchy.

The paper (Section 3, Discussion) places the techniques on a precision
ladder: all-params-dead < event-indexed coenable (RV) <= state-indexed
(Tracematches).  The crafted property below separates the upper two:
after the trace  a b,  the monitor *state* already knows the b-branch was
taken, while the *last event* (b) is shared between two branches — so the
state-based check can flag on x's death where the event-based one cannot.
"""

from __future__ import annotations

import gc

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.runtime.engine import MonitoringEngine
from repro.runtime.gc_strategies import (
    STRATEGY_NAMES,
    AllParamsDead,
    CoenableGc,
    NoGc,
    StateBasedGc,
    make_strategy,
)
from repro.runtime.instance import MonitorInstance
from repro.runtime.refs import ParamRef
from repro.spec import compile_spec

from ..conftest import Obj

# After 'a b', continuing to the goal needs x (event c<x>); after 'b' alone
# it needs y (event d<y>).  The event b is shared, so COENABLE(b) has the
# disjunction {x} | {y}, while SEEABLE(state after 'a b') = {{c}} exactly.
BRANCHY = """
Branchy(x, y) {
  event a(x)
  event b(y)
  event c(x)
  event d(y)
  ere: (a b c) | (b d)
  @match
}
"""


def make_instance(prop, trace, **params) -> MonitorInstance:
    base = prop.template.create()
    last = None
    for event in trace:
        base.step(event)
        last = event
    instance = MonitorInstance(
        prop, base, {k: ParamRef(v) for k, v in params.items()}, serial=1
    )
    instance.last_event = last
    return instance


@pytest.fixture
def branchy_prop():
    return compile_spec(BRANCHY).properties[0]


class TestFactory:
    def test_all_names_construct(self, branchy_prop):
        for name in STRATEGY_NAMES:
            assert make_strategy(name, branchy_prop).name == name

    def test_unknown_name_rejected(self, branchy_prop):
        with pytest.raises(ValueError):
            make_strategy("bogus", branchy_prop)


class TestBasicStrategies:
    def test_nogc_never_flags(self, branchy_prop):
        instance = make_instance(branchy_prop, ["a"], x=Obj("x"))
        gc.collect()
        assert not NoGc().is_unnecessary(instance)

    def test_alldead_requires_every_param_dead(self, branchy_prop):
        keep = Obj("keep")
        instance = make_instance(branchy_prop, ["a"], x=keep, y=Obj("die"))
        gc.collect()
        strategy = AllParamsDead()
        assert not strategy.is_unnecessary(instance)
        del keep
        gc.collect()
        assert strategy.is_unnecessary(instance)

    def test_coenable_uses_last_event(self, branchy_prop):
        x = Obj("x")
        instance = make_instance(branchy_prop, ["a"], x=x)
        strategy = CoenableGc(branchy_prop)
        # COENABLE(a) needs b and c => x and y; y unbound counts alive.
        assert not strategy.is_unnecessary(instance)
        del x
        gc.collect()
        assert strategy.is_unnecessary(instance)

    def test_coenable_without_last_event_falls_back(self, branchy_prop):
        instance = MonitorInstance(
            branchy_prop,
            branchy_prop.template.create(),
            {"x": ParamRef(Obj("die"))},
            serial=1,
        )
        gc.collect()
        assert CoenableGc(branchy_prop).is_unnecessary(instance)


class TestPrecisionHierarchy:
    def test_statebased_strictly_more_precise_after_shared_event(self, branchy_prop):
        """State after 'a b' needs c<x>; last event b alone allows the d<y>
        branch too.  Kill x: state-based flags, event-based cannot."""
        x, y = Obj("x"), Obj("y")
        instance = make_instance(branchy_prop, ["a", "b"], x=x, y=y)
        event_based = CoenableGc(branchy_prop)
        state_based = StateBasedGc(branchy_prop)
        del x
        gc.collect()
        assert not event_based.is_unnecessary(instance)   # {y} disjunct survives
        assert state_based.is_unnecessary(instance)       # state knows better
        del y

    def test_both_agree_when_event_determines_state(self, branchy_prop):
        x, y = Obj("x"), Obj("y")
        instance = make_instance(branchy_prop, ["a"], x=x, y=y)
        del x
        gc.collect()
        assert CoenableGc(branchy_prop).is_unnecessary(instance)
        assert StateBasedGc(branchy_prop).is_unnecessary(instance)
        del y

    def test_statebased_flags_fail_sink(self, branchy_prop):
        instance = make_instance(branchy_prop, ["c"], x=Obj("x"))  # c first: dead
        assert StateBasedGc(branchy_prop).is_unnecessary(instance)


class TestEngineLevelCollectionCounts:
    """Whole-engine runs on crafted traces: the strategies' flag/collect
    counts must reflect the precision ladder, not just the point checks."""

    @staticmethod
    def run_trace(gc_kind: str, events) -> dict:
        """Drive BRANCHY with per-step object lifetimes; returns the final
        E/M/FM/CM row plus the live-monitor count (captured while the
        engine is still alive — afterwards its finalizers keep counting).

        ``events`` is a list of (event, {param: key}, [keys to kill after]).
        """
        engine = MonitoringEngine(compile_spec(BRANCHY).silence(), gc=gc_kind)
        pool: dict[str, Obj] = {}
        for event, binding, kill in events:
            for key in binding.values():
                pool.setdefault(key, Obj(key))
            engine.emit(event, **{name: pool[key] for name, key in binding.items()})
            for key in kill:
                pool.pop(key, None)
            gc.collect()
        engine.flush_gc()
        gc.collect()
        stats = engine.stats_for("Branchy")
        return {**stats.as_row(), "live": stats.live_monitors}

    #: After 'a b' the joined (x,y) monitor's *state* needs c<x>; kill x.
    #: Event-indexed COENABLE(b) keeps the {y}-disjunct alive for it, the
    #: state-indexed check does not.  The dead-x {x}-monitors are caught
    #: by every strategy (their last event 'a' needs x ahead).
    SEPARATING = [
        ("a", {"x": "x1"}, []),
        ("b", {"y": "y1"}, ["x1"]),
        ("a", {"x": "x2"}, []),
        ("b", {"y": "y2"}, ["x2"]),
    ]

    def test_statebased_collects_where_coenable_cannot(self):
        event_based = self.run_trace("coenable", self.SEPARATING)
        state_based = self.run_trace("statebased", self.SEPARATING)
        assert event_based["M"] == state_based["M"]
        # The ladder, on whole-engine collection counts: the state-based
        # strategy additionally reclaims the joined monitors stuck after
        # 'a b' with x dead, which last-event coenable must keep.
        assert state_based["FM"] > event_based["FM"]
        assert state_based["CM"] > event_based["CM"]
        assert state_based["live"] < event_based["live"]

    def test_alldead_matches_coenable_here_and_nogc_flags_nothing(self):
        event_based = self.run_trace("coenable", self.SEPARATING)
        alldead = self.run_trace("alldead", self.SEPARATING)
        none = self.run_trace("none", self.SEPARATING)
        # On this trace the only monitors coenable can reclaim are the
        # all-params-dead ones, so the two lower rungs coincide ...
        assert alldead["FM"] == event_based["FM"] > 0
        # ... and the no-GC baseline reclaims nothing at all.
        assert none["FM"] == none["CM"] == 0
        assert none["live"] == none["M"]

    #: Killing x right after 'a' dooms the (a b c) branch for that slice;
    #: every non-trivial strategy sees it and the whole engine drains.
    AGREEING = [
        ("a", {"x": "x1"}, ["x1"]),
        ("a", {"x": "x2"}, ["x2"]),
    ]

    def test_all_strategies_agree_on_determined_traces(self):
        rows = {
            kind: self.run_trace(kind, self.AGREEING)
            for kind in ("coenable", "statebased", "alldead")
        }
        assert rows["coenable"] == rows["statebased"] == rows["alldead"]
        assert rows["coenable"]["CM"] == rows["coenable"]["M"]
        assert rows["coenable"]["live"] == 0


class TestStateBasedLimits:
    def test_cfg_rejected(self):
        prop = compile_spec(
            """
            SafeLock(l, t) {
              event acquire(l, t)
              event release(l, t)
              cfg: S -> S acquire S release | epsilon
              @match
            }
            """
        ).properties[0]
        with pytest.raises(UnsupportedFormalismError):
            StateBasedGc(prop)

    def test_engine_surfaces_the_rejection(self):
        spec = compile_spec(
            """
            SafeLock(l, t) {
              event acquire(l, t)
              event release(l, t)
              cfg: S -> S acquire S release | epsilon
              @match
            }
            """
        )
        with pytest.raises(UnsupportedFormalismError):
            MonitoringEngine(spec, system="tm")
