"""Indexing tree and join index tests (Section 4.1, Figure 6)."""

from __future__ import annotations

import gc

from repro.runtime.indexing import IndexingTree, JoinIndex
from repro.runtime.instance import MonitorInstance
from repro.runtime.refs import ParamRef

from ..conftest import Obj


class _FakeMonitor:
    def step(self, event):
        return "?"

    def verdict(self):
        return "?"

    def clone(self):
        return _FakeMonitor()


def make_instance(**params) -> MonitorInstance:
    refs = {name: ParamRef(value) for name, value in params.items()}
    return MonitorInstance(prop=None, base=_FakeMonitor(), params=refs, serial=0)


class TestIndexingTree:
    def test_lookup_create_and_find(self):
        tree = IndexingTree(("c", "i"), tracks_extensions=True, notify=lambda m: None)
        c1, i1 = Obj("c1"), Obj("i1")
        assert tree.lookup({"c": c1, "i": i1}, create=False) is None
        leaf = tree.lookup({"c": c1, "i": i1}, create=True)
        leaf.touched = 1  # untouched empty leaves are reclaimable (5.1.1)
        assert leaf is tree.lookup({"c": c1, "i": i1}, create=False)
        assert leaf.extensions is not None

    def test_zero_param_tree_has_single_leaf(self):
        tree = IndexingTree((), tracks_extensions=True, notify=lambda m: None)
        leaf = tree.lookup({}, create=True)
        assert leaf is tree.lookup({}, create=False)

    def test_extensions_only_for_dispatch_trees(self):
        tree = IndexingTree(("c",), tracks_extensions=False, notify=lambda m: None)
        leaf = tree.lookup({"c": Obj("c1")}, create=True)
        assert leaf.extensions is None

    def test_dead_key_notifies_monitors_below(self):
        """Figure 7(A): the <c>-tree notifies all monitors below dead <c2>."""
        notified = []
        tree = IndexingTree(("c",), tracks_extensions=True, notify=notified.append)
        c_live, c_dead = Obj("live"), Obj("dead")
        keep = make_instance(c=c_live)
        lost = make_instance(c=c_dead, i=Obj("i1"))
        tree.lookup({"c": c_live}, create=True).extensions.add(keep)
        tree.lookup({"c": c_dead}, create=True).extensions.add(lost)
        del c_dead
        gc.collect()
        tree.scan_all()
        assert notified == [lost]

    def test_dead_key_removes_mapping(self):
        """Figure 7(B): the broken mapping is cleaned up."""
        tree = IndexingTree(("c", "i"), tracks_extensions=True, notify=lambda m: None)
        c1 = Obj("c1")
        tree.lookup({"c": c1, "i": Obj("die")}, create=True)
        gc.collect()
        tree.scan_all()
        assert list(tree.walk_leaves()) == []

    def test_nested_notification_reaches_deep_monitors(self):
        notified = []
        tree = IndexingTree(("c", "i"), tracks_extensions=True, notify=notified.append)
        c1 = Obj("c1")
        i_dead = Obj("i_dead")
        monitor = make_instance(c=c1, i=i_dead)
        tree.lookup({"c": c1, "i": i_dead}, create=True).extensions.add(monitor)
        del i_dead
        gc.collect()
        tree.scan_all()
        assert notified == [monitor]

    def test_inspection_drops_flagged_own_and_empty_leaves(self):
        tree = IndexingTree(("c",), tracks_extensions=True, notify=lambda m: None)
        c1 = Obj("c1")
        monitor = make_instance(c=c1)
        leaf = tree.lookup({"c": c1}, create=True)
        leaf.own = monitor
        leaf.extensions.add(monitor)
        monitor.flagged = True
        tree.scan_all()
        # The leaf became empty and was dropped entirely.
        assert tree.lookup({"c": c1}, create=False) is None

    def test_touched_leaves_survive_inspection(self):
        tree = IndexingTree(("c",), tracks_extensions=True, notify=lambda m: None)
        c1 = Obj("c1")
        leaf = tree.lookup({"c": c1}, create=True)
        leaf.touched = 7
        tree.scan_all()
        assert tree.lookup({"c": c1}, create=False) is leaf

    def test_walk_leaves(self):
        tree = IndexingTree(("c",), tracks_extensions=True, notify=lambda m: None)
        objs = [Obj(f"c{i}") for i in range(3)]
        leaves = set()
        for serial, obj in enumerate(objs, start=1):
            leaf = tree.lookup({"c": obj}, create=True)
            leaf.touched = serial  # pin against empty-leaf reclamation
            leaves.add(id(leaf))
        found = {id(leaf) for leaf in tree.walk_leaves()}
        assert found == leaves


class TestJoinIndex:
    def test_candidates_by_partial_key(self):
        index = JoinIndex(("c",), notify=lambda m: None)
        c1, c2 = Obj("c1"), Obj("c2")
        m1 = make_instance(m=Obj("m1"), c=c1)
        m2 = make_instance(m=Obj("m2"), c=c2)
        index.add({"c": c1}, m1)
        index.add({"c": c2}, m2)
        assert list(index.candidates({"c": c1})) == [m1]
        assert list(index.candidates({"c": c2})) == [m2]

    def test_empty_key_domain_returns_all(self):
        index = JoinIndex((), notify=lambda m: None)
        m1 = make_instance(x=Obj("x1"))
        m2 = make_instance(x=Obj("x2"))
        index.add({}, m1)
        index.add({}, m2)
        assert list(index.candidates({})) == [m1, m2]

    def test_missing_key_yields_nothing(self):
        index = JoinIndex(("c",), notify=lambda m: None)
        assert list(index.candidates({"c": Obj("nope")})) == []

    def test_flagged_candidates_compacted_on_iteration(self):
        index = JoinIndex(("c",), notify=lambda m: None)
        c1 = Obj("c1")
        m1 = make_instance(m=Obj("m1"), c=c1)
        m2 = make_instance(m=Obj("m2"), c=c1)
        index.add({"c": c1}, m1)
        index.add({"c": c1}, m2)
        m1.flagged = True
        assert list(index.candidates({"c": c1})) == [m2]
