"""Weak-reference substrate tests: ParamRef, RVMap, RVSet."""

from __future__ import annotations

import gc

from repro.runtime.instance import MonitorInstance
from repro.runtime.refs import ParamRef
from repro.runtime.rvmap import RVMap
from repro.runtime.rvset import RVSet

from ..conftest import Obj


class _FakeMonitor:
    """Minimal stand-in for a base monitor."""

    def step(self, event):
        return "?"

    def verdict(self):
        return "?"

    def clone(self):
        return _FakeMonitor()


def make_instance(**params) -> MonitorInstance:
    refs = {name: ParamRef(value) for name, value in params.items()}
    return MonitorInstance(prop=None, base=_FakeMonitor(), params=refs, serial=0)


class TestParamRef:
    def test_alive_while_referenced(self):
        obj = Obj("x")
        ref = ParamRef(obj)
        assert ref.is_alive
        assert ref.get() is obj
        assert ref.refers_to(obj)
        assert ref.is_weak

    def test_dies_with_referent(self):
        ref = ParamRef(Obj("x"))
        gc.collect()
        assert not ref.is_alive
        assert ref.get() is None
        assert "dead" in repr(ref)

    def test_non_weakrefable_values_are_immortal(self):
        ref = ParamRef(42)
        assert ref.is_alive
        assert not ref.is_weak
        assert ref.get() == 42

    def test_refers_to_checks_identity(self):
        a, b = Obj("a"), Obj("a")
        ref = ParamRef(a)
        assert ref.refers_to(a)
        assert not ref.refers_to(b)


class TestRVMap:
    def test_put_get_by_identity(self):
        rvmap = RVMap()
        a, b = Obj("a"), Obj("b")
        rvmap.put(a, 1)
        rvmap.put(b, 2)
        assert rvmap.get(a) == 1
        assert rvmap.get(b) == 2
        assert len(rvmap) == 2

    def test_put_replaces(self):
        rvmap = RVMap()
        a = Obj("a")
        rvmap.put(a, 1)
        rvmap.put(a, 2)
        assert rvmap.get(a) == 2
        assert len(rvmap) == 1

    def test_remove(self):
        rvmap = RVMap()
        a = Obj("a")
        rvmap.put(a, 1)
        assert rvmap.remove(a)
        assert not rvmap.remove(a)
        assert rvmap.get(a) is None

    def test_items_skips_dead(self):
        rvmap = RVMap()
        keep = Obj("keep")
        rvmap.put(keep, 1)
        rvmap.put(Obj("die"), 2)
        gc.collect()
        assert dict((k.name, v) for k, v in rvmap.items()) == {"keep": 1}

    def test_scan_notifies_on_dead_key(self):
        notified = []
        rvmap = RVMap(on_dead_value=notified.append)
        rvmap.put(Obj("die"), "subtree")
        gc.collect()
        cleaned = rvmap.scan_all()
        assert cleaned == 1
        assert notified == ["subtree"]
        assert len(rvmap) == 0

    def test_incremental_scan_on_operations(self):
        """Accessing the map must (eventually) clean dead entries — the
        paper's 'looks through a subset of its entries' behavior."""
        notified = []
        rvmap = RVMap(on_dead_value=notified.append, scan_budget=2)
        keep = [Obj(f"k{i}") for i in range(5)]
        for index, obj in enumerate(keep):
            rvmap.put(obj, index)
        for index in range(5):
            rvmap.put(Obj(f"die{index}"), f"dead{index}")
        gc.collect()
        probe = Obj("probe")
        rvmap.put(probe, "probe")
        for _ in range(20):
            rvmap.get(probe)
        assert len(notified) == 5
        assert len(rvmap) == 6  # 5 keepers + probe

    def test_inspect_value_can_drop_entries(self):
        rvmap = RVMap(inspect_value=lambda value: value != "drop-me")
        keep, drop = Obj("keep"), Obj("drop")
        rvmap.put(keep, "fine")
        rvmap.put(drop, "drop-me")
        rvmap.scan_all()
        assert rvmap.get(drop) is None
        assert rvmap.get(keep) == "fine"

    def test_all_values_includes_dead_subtrees(self):
        rvmap = RVMap()
        rvmap.put(Obj("die"), "subtree")
        gc.collect()
        assert list(rvmap.all_values()) == ["subtree"]

    def test_id_reuse_is_benign(self):
        """A dead entry whose key id gets reused must not shadow lookups."""
        rvmap = RVMap(scan_budget=0)  # never scan: keep the dead entry
        rvmap.put(Obj("die"), "old")
        gc.collect()
        fresh = Obj("fresh")
        rvmap.put(fresh, "new")
        assert rvmap.get(fresh) == "new"


class TestRVSet:
    def test_add_and_iterate(self):
        rvset = RVSet()
        monitors = [make_instance(x=Obj(str(i))) for i in range(3)]
        for monitor in monitors:
            rvset.add(monitor)
        assert list(rvset.iter_active()) == monitors
        assert len(rvset) == 3
        assert rvset

    def test_compact_removes_flagged_in_one_pass(self):
        rvset = RVSet()
        monitors = [make_instance(x=Obj(str(i))) for i in range(5)]
        for monitor in monitors:
            rvset.add(monitor)
        monitors[1].flagged = True
        monitors[3].flagged = True
        removed = []
        count = rvset.compact(on_removed=removed.append)
        assert count == 2
        assert removed == [monitors[1], monitors[3]]
        assert list(rvset) == [monitors[0], monitors[2], monitors[4]]

    def test_iter_active_compacts_first(self):
        rvset = RVSet()
        keep = make_instance(x=Obj("keep"))
        drop = make_instance(x=Obj("drop"))
        rvset.add(keep)
        rvset.add(drop)
        drop.flagged = True
        assert list(rvset.iter_active()) == [keep]
        assert len(rvset) == 1

    def test_has_flagged(self):
        rvset = RVSet()
        monitor = make_instance(x=Obj("x"))
        rvset.add(monitor)
        assert not rvset.has_flagged()
        monitor.flagged = True
        assert rvset.has_flagged()

    def test_compact_noop_when_clean(self):
        rvset = RVSet()
        rvset.add(make_instance(x=Obj("x")))
        assert rvset.compact() == 0
        assert len(rvset) == 1


class TestMonitorInstance:
    def test_liveness_tracking(self):
        keep = Obj("keep")
        instance = make_instance(c=keep, i=Obj("die"))
        gc.collect()
        assert instance.param_alive("c")
        assert not instance.param_alive("i")
        assert instance.liveness() == {"c": True, "i": False}
        assert not instance.all_params_dead()

    def test_all_params_dead(self):
        instance = make_instance(c=Obj("a"), i=Obj("b"))
        gc.collect()
        assert instance.all_params_dead()

    def test_unbound_param_counts_alive(self):
        instance = make_instance(c=Obj("c"))
        assert instance.param_alive("i")  # unbound

    def test_binding_omits_dead(self):
        keep = Obj("keep")
        instance = make_instance(c=keep, i=Obj("die"))
        gc.collect()
        binding = instance.binding()
        assert binding.domain == {"c"}
        assert binding["c"] is keep

    def test_repr_marks_dead_and_flagged(self):
        instance = make_instance(c=Obj("die"))
        gc.collect()
        instance.flagged = True
        text = repr(instance)
        assert "†" in text and "FLAGGED" in text
