"""Hot-load equivalence: attaching a property mid-trace is history-free.

The defining property of the dynamic registry (ISSUE 4 acceptance): for
any split point ``k``, a property hot-loaded at event ``k`` produces the
same verdict multiset and creation count over events ``k..n`` as an engine
constructed with it upfront and fed only ``k..n``.  Parametrized over the
four formalisms (FSM and LTL via HASNEXT, ERE via UNSAFEITER, CFG via
SAFELOCK), all four GC strategies, and both dispatch paths — the
``dispatch="reference"`` rows double as the lockstep check that the
compiled fast path and the reference interpretation agree on hot-loaded
runtimes too.

Traces are symbolic and replayed with ``retire_after_last_use=True``, so
parameter deaths (the GC driver) land between the same two events in every
engine, and verdict bindings stay comparable across engines by symbol.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import replay_entries

from ..persist.conftest import seed_for, synth_entries, symbolic_verdict_key

GC_STRATEGIES = ("none", "alldead", "coenable", "statebased")

#: (hot property, pre-loaded base property): together the hot side covers
#: fsm + ltl (hasnext compiles both logic blocks), ere, and cfg.
HOT_KEYS = ("hasnext", "unsafeiter", "safelock")


def _base_key(hot_key: str) -> str:
    return "unsafeiter" if hot_key != "unsafeiter" else "hasnext"


def _union_entries(hot_spec, base_spec, seed: int):
    """One symbolic trace over both specifications' alphabets."""

    class _Definition:
        parameters = sorted(
            set(hot_spec.definition.parameters) | set(base_spec.definition.parameters)
        )
        alphabet = sorted(set(hot_spec.alphabet) | set(base_spec.alphabet))

        @staticmethod
        def params_of(event):
            if event in hot_spec.alphabet:
                return hot_spec.definition.params_of(event)
            return base_spec.definition.params_of(event)

    return synth_entries(_Definition, seed, events=240)


def _collect(engine_spec_names):
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        if prop.spec_name in engine_spec_names:
            verdicts[symbolic_verdict_key(prop, category, monitor)] += 1

    return verdicts, on_verdict


@pytest.mark.parametrize("dispatch", ("compiled", "reference"))
@pytest.mark.parametrize("gc_kind", GC_STRATEGIES)
@pytest.mark.parametrize("hot_key", HOT_KEYS)
def test_hotload_equals_suffix_only_engine(hot_key, gc_kind, dispatch):
    hot_paper = ALL_PROPERTIES[hot_key]
    base_paper = ALL_PROPERTIES[_base_key(hot_key)]
    hot_probe = hot_paper.make().silence()
    base_probe = base_paper.make().silence()
    try:
        MonitoringEngine(hot_paper.make().silence(), gc=gc_kind)
    except UnsupportedFormalismError:
        pytest.skip(f"{gc_kind} cannot host {hot_key}")
    hot_names = {prop.spec_name for prop in hot_probe.properties}
    entries = _union_entries(hot_probe, base_probe, seed_for(hot_key, gc_kind))

    for k in (0, len(entries) // 3, 2 * len(entries) // 3):
        # Staggered engine: base property upfront, hot property at event k.
        staggered_verdicts, on_verdict = _collect(hot_names)
        staggered = MonitoringEngine(
            base_paper.make().silence(), gc=gc_kind, dispatch=dispatch,
            on_verdict=on_verdict,
        )
        tokens: dict = {}
        replay_entries(
            entries, staggered, retire_after_last_use=True, stop=k, tokens=tokens
        )
        epoch_before = staggered.registry_epoch
        staggered.attach_property(hot_paper.make().silence())
        assert staggered.registry_epoch > epoch_before
        replay_entries(
            entries, staggered, retire_after_last_use=True, start=k, tokens=tokens
        )

        # Reference engine: hot property upfront, fed only the suffix k..n.
        upfront_verdicts, on_verdict = _collect(hot_names)
        upfront = MonitoringEngine(
            hot_paper.make().silence(), gc=gc_kind, dispatch=dispatch,
            on_verdict=on_verdict,
        )
        replay_entries(entries, upfront, retire_after_last_use=True, start=k)

        assert staggered_verdicts == upfront_verdicts, (
            f"hot-load at k={k} diverged for {hot_key}/{gc_kind}/{dispatch}"
        )
        for prop in hot_probe.properties:
            hot_stats = staggered.stats_for(prop.spec_name, prop.formalism)
            ref_stats = upfront.stats_for(prop.spec_name, prop.formalism)
            assert hot_stats.events == ref_stats.events, (k, prop.formalism)
            assert hot_stats.monitors_created == ref_stats.monitors_created, (
                k, prop.formalism,
            )


@pytest.mark.parametrize("gc_kind", GC_STRATEGIES)
def test_hotload_compiled_equals_reference(gc_kind):
    """Lockstep across dispatch paths with a mid-trace hot load."""
    hot_paper = ALL_PROPERTIES["hasnext"]
    base_paper = ALL_PROPERTIES["unsafeiter"]
    hot_probe = hot_paper.make().silence()
    entries = _union_entries(
        hot_probe, base_paper.make().silence(), seed_for("lockstep", gc_kind)
    )
    k = len(entries) // 2
    results = []
    for dispatch in ("compiled", "reference"):
        verdicts, on_verdict = _collect(
            {prop.spec_name for prop in hot_probe.properties} | {"UnsafeIter"}
        )
        engine = MonitoringEngine(
            base_paper.make().silence(), gc=gc_kind, dispatch=dispatch,
            on_verdict=on_verdict,
        )
        tokens: dict = {}
        replay_entries(
            entries, engine, retire_after_last_use=True, stop=k, tokens=tokens
        )
        engine.attach_property(hot_paper.make().silence())
        replay_entries(
            entries, engine, retire_after_last_use=True, start=k, tokens=tokens
        )
        rows = {
            (spec, formalism): (stats.events, stats.monitors_created)
            for (spec, formalism), stats in engine.stats().items()
        }
        results.append((verdicts, rows))
    assert results[0] == results[1]
