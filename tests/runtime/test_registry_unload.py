"""Unregister-under-load: detaching a property mid-trace leaks nothing.

Detach quiesces the runtime (pending coalesced deaths delivered through
``purge_ids``, then a two-pass mark-and-sweep), folds its final statistics
into the engine totals, and drops its indexing trees wholesale.  These
tests assert the observable consequences: every monitor of the detached
property becomes collectible (CM catches up with M once the parameter
objects die), the engine's eager watch table holds no positions for the
dead slot, and the surviving properties keep monitoring undisturbed.
"""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.core.errors import RegistryError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine

from ..conftest import Obj

GC_STRATEGIES = ("none", "alldead", "coenable", "statebased")


def _drive(engine, pools, rounds=30):
    """Interleaved UNSAFEITER/HASNEXT traffic over shared small pools."""
    for serial in range(rounds):
        c = pools["c"][serial % len(pools["c"])]
        i = Obj(f"i{serial}")
        pools["i"].append(i)
        engine.emit("create", c=c, i=i, _strict=False)
        engine.emit("hasnexttrue", i=i, _strict=False)
        engine.emit("next", i=i, _strict=False)
        if serial % 3 == 0:
            engine.emit("update", c=c, _strict=False)
        if serial % 4 == 0:
            pools["i"].pop(0)  # an iterator dies mid-trace


@pytest.mark.parametrize("propagation", ("lazy", "eager"))
@pytest.mark.parametrize("gc_kind", GC_STRATEGIES)
def test_detach_leaks_no_monitors(gc_kind, propagation):
    engine = MonitoringEngine(
        [ALL_PROPERTIES["unsafeiter"].make().silence(),
         ALL_PROPERTIES["hasnext"].make().silence()],
        gc=gc_kind, propagation=propagation,
    )
    pools = {"c": [Obj(f"c{n}") for n in range(4)], "i": []}
    _drive(engine, pools)

    target = engine.registry.entry("UnsafeIter/ere")
    stats_before = engine.stats_for("UnsafeIter", "ere")
    assert stats_before.monitors_created > 0
    probes = [
        weakref.ref(monitor)
        for monitor in engine.runtimes[target.index].live_instances()
    ]
    assert probes

    retired = engine.detach_property("UnsafeIter/ere")
    assert engine.runtimes[target.index] is None
    assert engine.properties[target.index] is None
    # The eager watch table must hold no positions for the dead slot.
    for _guard, positions in engine._watched.values():
        assert all(index != target.index for index, _name in positions)

    # Surviving properties keep monitoring; the retired stats stay in the
    # totals and never move again.
    _drive(engine, pools)
    assert engine.stats_for("UnsafeIter", "ere") is retired
    assert retired.events == stats_before.events
    assert engine.stats_for("HasNext", "fsm").events > 0

    # Once the parameter objects die, every monitor of the detached
    # property is reclaimed: no tree, join index, or watch entry pins one.
    pools.clear()
    gc.collect()
    engine.flush_gc()
    gc.collect()
    assert all(probe() is None for probe in probes)
    assert retired.live_monitors == 0
    assert retired.monitors_collected == retired.monitors_created


def test_detach_with_pending_eager_deaths():
    """Deaths coalesced but not yet propagated are delivered at detach."""
    engine = MonitoringEngine(
        ALL_PROPERTIES["unsafeiter"].make().silence(),
        gc="coenable", propagation="eager",
    )
    c = Obj("c")
    i = Obj("i")
    engine.emit("create", c=c, i=i)
    del i  # death recorded, propagation deferred to the next boundary
    assert engine._pending_dead
    retired = engine.detach_property(0)
    assert not engine._pending_dead
    del c
    gc.collect()
    assert retired.live_monitors == 0


def test_registry_misuse_is_loud():
    engine = MonitoringEngine(ALL_PROPERTIES["unsafeiter"].make().silence())
    engine.detach_property(0)
    with pytest.raises(RegistryError):
        engine.detach_property(0)
    with pytest.raises(RegistryError):
        engine.registry.entry("nonsense")
    with pytest.raises(RegistryError):
        engine.set_property_enabled(0, True)


def test_disable_pauses_without_state_loss():
    engine = MonitoringEngine(ALL_PROPERTIES["hasnext"].make().silence())
    i = Obj("i")
    engine.emit("hasnexttrue", i=i)
    fsm = engine.stats_for("HasNext", "fsm")
    events_before = fsm.events
    epoch = engine.registry_epoch

    engine.set_property_enabled("HasNext/fsm", False)
    assert engine.registry_epoch == epoch + 1
    engine.emit("hasnexttrue", i=i, _strict=False)
    assert fsm.events == events_before  # paused: events dropped, uncounted

    engine.set_property_enabled("HasNext/fsm", True)
    engine.emit("next", i=i)
    assert fsm.events == events_before + 1
    # The LTL sibling saw every event throughout.
    assert engine.stats_for("HasNext", "ltl").events == events_before + 2


def test_paused_events_stay_declared_for_strict_emit():
    """Pausing must be transparent to emitters: a strict emit of an event
    that only a *disabled* property declares is dropped, not rejected as
    undeclared — the property will be resumed."""
    engine = MonitoringEngine(ALL_PROPERTIES["hasnext"].make().silence())
    i = Obj("i")
    engine.set_property_enabled("HasNext/fsm", False)
    engine.set_property_enabled("HasNext/ltl", False)
    engine.emit("hasnexttrue", i=i)  # strict: must not raise
    from repro.core.errors import UnknownEventError

    with pytest.raises(UnknownEventError):
        engine.emit("nonsense", i=i)
    engine.set_property_enabled("HasNext/fsm", True)
    engine.emit("hasnexttrue", i=i)
    assert engine.stats_for("HasNext", "fsm").events == 1


def test_reregister_after_detach_gets_fresh_slot_and_merged_stats():
    engine = MonitoringEngine(ALL_PROPERTIES["unsafeiter"].make().silence())
    c, i = Obj("c"), Obj("i")
    engine.emit("create", c=c, i=i)
    retired = engine.detach_property(0)
    [index] = engine.attach_property(
        ALL_PROPERTIES["unsafeiter"].make().silence()
    )
    assert index == 1
    engine.emit("create", c=c, i=i)
    engine.emit("update", c=c)
    live = engine.runtimes[index].stats
    # stats() merges the retired slot with the live one under the same key,
    # without mutating either record.
    merged = engine.stats()[("UnsafeIter", "ere")]
    assert merged.events == retired.events + live.events == 3
    assert merged.monitors_created == retired.monitors_created + live.monitors_created
