"""Soak/leak regression: long monitored churn must stay flat.

Two tiers over the same churn kernel (random emissions over a mixed
paper + protocol property set with per-round parameter-object death,
plus a hot attach/detach cycle every round):

* a quick ungated smoke (a dozen rounds) that runs in every tier-1
  invocation, and
* a bounded-minutes soak marked ``slow`` and gated behind ``REPRO_SOAK``
  (the nightly CI job sets it) that additionally asserts RSS flatness.

The invariant in both: after each round settles (GC flush + collect),
the engine's live-monitor population returns to the empty-ish baseline —
growth across rounds is precisely the monitor leak the paper's GC
strategies exist to prevent, and the attach/detach cycle checks the
registry's release path doesn't strand slices either.
"""

from __future__ import annotations

import gc
import os
import random
import time

import pytest

from repro.properties import CATALOGUE
from repro.runtime.engine import MonitoringEngine

from ..conftest import Obj

#: Static residents: paper FSM + LTL, paper ERE, two protocol FSMs.
#: (No CFG resident: SafeLock's unbounded state space rejects the
#: state-based GC strategy by design — the soak pins the GC'd path.)
RESIDENT_KEYS = ("hasnext", "safeenum", "reqlife", "connreuse")
#: Hot-cycled guest, attached and detached every round.
GUEST_KEY = "safefile"

EMITS_PER_PROPERTY = 40
POOL = 3

#: Soak knobs (env-tunable so the nightly job can stretch the budget).
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "45"))
SOAK_RSS_TOLERANCE_KB = 40_000


def rss_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")


def build_engine() -> MonitoringEngine:
    return MonitoringEngine(
        [CATALOGUE[key].make().silence() for key in RESIDENT_KEYS],
        gc="statebased",
    )


def churn_round(engine: MonitoringEngine, definitions, rng: random.Random):
    """One wave: emit over every property with round-local objects, plus
    a full hot attach/emit/detach cycle of the guest property."""
    for definition in definitions:
        alphabet = sorted(definition.alphabet)
        pools = {
            param: [Obj(param) for _ in range(POOL)]
            for param in definition.parameters
        }
        for _ in range(EMITS_PER_PROPERTY):
            event = rng.choice(alphabet)
            engine.emit(event, **{
                param: rng.choice(pools[param])
                for param in definition.params_of(event)
            })
        del pools  # the round's parameter objects die here

    guest = CATALOGUE[GUEST_KEY].make().silence()
    (index,) = engine.attach_property(guest)
    alphabet = sorted(guest.definition.alphabet)
    pools = {
        param: [Obj(param) for _ in range(POOL)]
        for param in guest.definition.parameters
    }
    for _ in range(EMITS_PER_PROPERTY // 2):
        event = rng.choice(alphabet)
        engine.emit(event, **{
            param: rng.choice(pools[param])
            for param in guest.definition.params_of(event)
        })
    del pools
    engine.detach_property(index)


def settle(engine: MonitoringEngine) -> int:
    for _ in range(2):
        gc.collect()
        engine.flush_gc()
    return engine.total_live_monitors()


def run_soak(*, rounds: int | None = None, seconds: float | None = None,
             sample_rss: bool = False):
    """Drive churn rounds until the round or time budget runs out.

    Returns ``(monitor_counts, rss_samples)`` — one entry per settled
    round.  Exactly one of ``rounds``/``seconds`` bounds the run.
    """
    engine = build_engine()
    definitions = [
        CATALOGUE[key].make().definition for key in RESIDENT_KEYS
    ]
    rng = random.Random(20110604)
    monitors: list[int] = []
    rss: list[int] = []
    deadline = time.monotonic() + seconds if seconds is not None else None
    count = 0
    while True:
        churn_round(engine, definitions, rng)
        monitors.append(settle(engine))
        if sample_rss:
            rss.append(rss_kb())
        count += 1
        if rounds is not None and count >= rounds:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
    assert engine.stats_for(
        "HasNext", "fsm"
    ).events >= count * EMITS_PER_PROPERTY // len(
        CATALOGUE["hasnext"].make().definition.alphabet
    ) // 2, "the soak must actually monitor events"
    return monitors, rss


def assert_flat(monitors: list[int]) -> None:
    baseline = monitors[0]
    assert baseline < 40, f"baseline suspiciously large: {baseline}"
    for count in monitors[1:]:
        assert count <= baseline + 5, (
            f"monitor population grew across rounds: {monitors}"
        )


def test_churn_smoke_population_returns_to_baseline():
    """Ungated tier-1 smoke: a dozen rounds, flat monitor population."""
    monitors, _rss = run_soak(rounds=12)
    assert_flat(monitors)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="bounded-minutes soak: set REPRO_SOAK=1 (nightly CI does)",
)
def test_soak_monitors_and_rss_stay_flat():
    """The nightly soak: churn for REPRO_SOAK_SECONDS, flat RSS on top."""
    monitors, rss = run_soak(seconds=SOAK_SECONDS, sample_rss=True)
    assert len(monitors) >= 20, f"soak too short to be meaningful: {monitors}"
    assert_flat(monitors)
    # Compare steady state (later samples) against the early baseline so
    # allocator warm-up doesn't count as growth.
    assert max(rss) - rss[0] < SOAK_RSS_TOLERANCE_KB, f"RSS grew: {rss}"
