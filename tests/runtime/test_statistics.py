"""MonitorStats: counters, merging, and the JSON snapshot round trip.

The snapshot/round-trip contract matters beyond metrics plumbing: the
checkpoint codec embeds ``stats_snapshot()`` output in engine snapshots
and rebuilds the records with ``from_snapshot`` on restore, so every
counter must survive the trip exactly and old snapshots must stay
loadable.
"""

from __future__ import annotations

import json

from repro.runtime.engine import MonitoringEngine
from repro.runtime.statistics import MonitorStats
from repro.spec import compile_spec

from ..conftest import Obj

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event next(i)

  fsm:
    unknown [ hasnexttrue -> more  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    error   [ ]
  @error "improper Iterator use found!"
}
"""


def populated() -> MonitorStats:
    stats = MonitorStats()
    for _ in range(5):
        stats.record_event()
    stats.record_creation()
    stats.record_creation()
    stats.record_flag()
    stats.record_collection()
    stats.record_verdict("match")
    stats.record_verdict("match")
    stats.record_verdict("fail")
    stats.record_handler()
    return stats


class TestRoundTrip:
    def test_snapshot_is_loadable_and_exact(self):
        stats = populated()
        rebuilt = MonitorStats.from_snapshot(stats.snapshot())
        assert rebuilt == stats
        assert rebuilt.snapshot() == stats.snapshot()

    def test_snapshot_survives_json(self):
        stats = populated()
        rebuilt = MonitorStats.from_snapshot(json.loads(json.dumps(stats.snapshot())))
        assert rebuilt == stats

    def test_derived_live_monitors_is_recomputed_not_stored(self):
        stats = populated()
        snapshot = stats.snapshot()
        assert snapshot["live_monitors"] == 1  # 2 created - 1 collected
        snapshot["live_monitors"] = 999  # derived field: must be ignored
        assert MonitorStats.from_snapshot(snapshot).live_monitors == 1

    def test_missing_counters_default_to_zero(self):
        """Old/partial snapshots (earlier format versions) stay loadable."""
        rebuilt = MonitorStats.from_snapshot({"events": 7})
        assert rebuilt.events == 7
        assert rebuilt.monitors_created == 0
        assert rebuilt.verdicts == {}

    def test_engine_stats_snapshot_round_trips(self):
        engine = MonitoringEngine(compile_spec(HASNEXT).silence(), gc="coenable")
        i1 = Obj("i1")
        engine.emit("hasnexttrue", i=i1)
        engine.emit("next", i=i1)
        for label, record in engine.stats_snapshot().items():
            spec_name, _, formalism = label.rpartition("/")
            rebuilt = MonitorStats.from_snapshot(record)
            assert rebuilt == engine.stats_for(spec_name, formalism)
        del i1


class TestMergeInteraction:
    def test_merge_of_round_tripped_records_is_exact(self):
        first, second = populated(), populated()
        direct = MonitorStats.merged([first, second])
        via_snapshot = MonitorStats.merged(
            [
                MonitorStats.from_snapshot(first.snapshot()),
                MonitorStats.from_snapshot(second.snapshot()),
            ]
        )
        assert direct == via_snapshot

    def test_as_row_unaffected_by_round_trip(self):
        stats = populated()
        assert MonitorStats.from_snapshot(stats.snapshot()).as_row() == stats.as_row()
