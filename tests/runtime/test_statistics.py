"""MonitorStats: counters, merging, and the JSON snapshot round trip.

The snapshot/round-trip contract matters beyond metrics plumbing: the
checkpoint codec embeds ``stats_snapshot()`` output in engine snapshots
and rebuilds the records with ``from_snapshot`` on restore, so every
counter must survive the trip exactly and old snapshots must stay
loadable.
"""

from __future__ import annotations

import json

from repro.runtime.engine import MonitoringEngine
from repro.runtime.statistics import MonitorStats
from repro.spec import compile_spec

from ..conftest import Obj

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event next(i)

  fsm:
    unknown [ hasnexttrue -> more  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    error   [ ]
  @error "improper Iterator use found!"
}
"""


def populated() -> MonitorStats:
    stats = MonitorStats()
    for _ in range(5):
        stats.record_event()
    stats.record_creation()
    stats.record_creation()
    stats.record_flag()
    stats.record_collection()
    stats.record_verdict("match")
    stats.record_verdict("match")
    stats.record_verdict("fail")
    stats.record_handler()
    return stats


class TestRoundTrip:
    def test_snapshot_is_loadable_and_exact(self):
        stats = populated()
        rebuilt = MonitorStats.from_snapshot(stats.snapshot())
        assert rebuilt == stats
        assert rebuilt.snapshot() == stats.snapshot()

    def test_snapshot_survives_json(self):
        stats = populated()
        rebuilt = MonitorStats.from_snapshot(json.loads(json.dumps(stats.snapshot())))
        assert rebuilt == stats

    def test_derived_live_monitors_is_recomputed_not_stored(self):
        stats = populated()
        snapshot = stats.snapshot()
        assert snapshot["live_monitors"] == 1  # 2 created - 1 collected
        snapshot["live_monitors"] = 999  # derived field: must be ignored
        assert MonitorStats.from_snapshot(snapshot).live_monitors == 1

    def test_missing_counters_default_to_zero(self):
        """Old/partial snapshots (earlier format versions) stay loadable."""
        rebuilt = MonitorStats.from_snapshot({"events": 7})
        assert rebuilt.events == 7
        assert rebuilt.monitors_created == 0
        assert rebuilt.verdicts == {}

    def test_engine_stats_snapshot_round_trips(self):
        engine = MonitoringEngine(compile_spec(HASNEXT).silence(), gc="coenable")
        i1 = Obj("i1")
        engine.emit("hasnexttrue", i=i1)
        engine.emit("next", i=i1)
        for label, record in engine.stats_snapshot().items():
            spec_name, _, formalism = label.rpartition("/")
            rebuilt = MonitorStats.from_snapshot(record)
            assert rebuilt == engine.stats_for(spec_name, formalism)
        del i1


class TestPeakUpperBound:
    """``peak_live_monitors`` merge semantics: summed peaks are only a bound."""

    def _with_peak(self, peak: int) -> MonitorStats:
        stats = MonitorStats()
        for _ in range(peak):
            stats.record_creation()
        assert stats.peak_live_monitors == peak
        return stats

    def test_fresh_record_peak_is_exact(self):
        assert populated().peak_is_upper_bound is False

    def test_merging_two_observed_peaks_marks_upper_bound(self):
        merged = MonitorStats.merged([self._with_peak(3), self._with_peak(2)])
        assert merged.peak_live_monitors == 5
        assert merged.peak_is_upper_bound is True

    def test_merging_zero_peak_shards_stays_exact(self):
        """Only one shard ever created monitors: the sum IS the true peak."""
        merged = MonitorStats.merged([self._with_peak(3), MonitorStats()])
        assert merged.peak_live_monitors == 3
        assert merged.peak_is_upper_bound is False

    def test_flag_is_sticky_through_further_merges(self):
        bound = MonitorStats.merged([self._with_peak(1), self._with_peak(1)])
        merged = MonitorStats.merged([bound, MonitorStats()])
        assert merged.peak_is_upper_bound is True

    def test_flag_survives_snapshot_round_trip(self):
        bound = MonitorStats.merged([self._with_peak(1), self._with_peak(1)])
        snapshot = bound.snapshot()
        assert snapshot["peak_is_upper_bound"] is True
        assert MonitorStats.from_snapshot(snapshot).peak_is_upper_bound is True

    def test_old_snapshots_without_the_flag_default_to_exact(self):
        rebuilt = MonitorStats.from_snapshot({"peak_live_monitors": 4})
        assert rebuilt.peak_live_monitors == 4
        assert rebuilt.peak_is_upper_bound is False

    def test_unknown_snapshot_keys_are_ignored(self):
        snapshot = populated().snapshot()
        snapshot["future_counter"] = 123
        assert MonitorStats.from_snapshot(snapshot) == populated()


class TestMergeInteraction:
    def test_merge_of_round_tripped_records_is_exact(self):
        first, second = populated(), populated()
        direct = MonitorStats.merged([first, second])
        via_snapshot = MonitorStats.merged(
            [
                MonitorStats.from_snapshot(first.snapshot()),
                MonitorStats.from_snapshot(second.snapshot()),
            ]
        )
        assert direct == via_snapshot

    def test_as_row_unaffected_by_round_trip(self):
        stats = populated()
        assert MonitorStats.from_snapshot(stats.snapshot()).as_row() == stats.as_row()
