"""Seeded randomized fuzzing of the dispatch-equivalence oracle.

Generalizes ``test_dispatch_equivalence``'s fixed traces: for **every**
CATALOGUE property (paper substrate + live-resource + protocol), random
event/death interleavings are synthesized from the property's own
alphabet and driven through the reference, compiled and codegen engines
in lockstep over shared parameter objects.  Any divergence in the robust
observables (verdict multisets with binding identities, E, M, handler
fires) is a bug in one of the dispatch tiers.

On failure the offending op list is **greedily minimized** (ddmin-style
chunk removal while the divergence persists) and dumped as NDJSON —
``REPRO_FUZZ_DUMP`` names the directory (default: the system temp dir) —
so the exact interleaving can be replayed with :func:`load_ops`.
"""

from __future__ import annotations

import gc
import json
import os
import random
import tempfile
import zlib
from collections import Counter
from pathlib import Path

import pytest

from repro.core.errors import UnsupportedFormalismError
from repro.properties import CATALOGUE
from repro.runtime.engine import MonitoringEngine

from ..conftest import Obj

DISPATCHES = ("reference", "compiled", "codegen")
#: GC strategy rotates per (property, seed) so the corpus covers them all
#: without multiplying the matrix.
GC_STRATEGIES = ("statebased", "coenable", "alldead", "none")
SEEDS = (11, 23)
EVENTS = 220
POOL = 4
KILL_PROBABILITY = 0.15


# ---------------------------------------------------------------------------
# Op synthesis and NDJSON (de)serialization.
# ---------------------------------------------------------------------------


def synth_ops(definition, seed: int) -> list[dict]:
    """A reproducible op list over one property's alphabet, JSON-shaped.

    ``{"op": "emit", "event": e, "binding": {param: slot}}`` emits with
    pooled objects; ``{"op": "kill", "param": p, "slot": n}`` replaces a
    pooled object so the old identity dies mid-trace.
    """
    rng = random.Random(seed)
    alphabet = sorted(definition.alphabet)
    parameters = sorted(definition.parameters)
    ops: list[dict] = []
    for _ in range(EVENTS):
        if parameters and rng.random() < KILL_PROBABILITY:
            ops.append({
                "op": "kill",
                "param": rng.choice(parameters),
                "slot": rng.randrange(POOL),
            })
        event = rng.choice(alphabet)
        ops.append({
            "op": "emit",
            "event": event,
            "binding": {
                param: rng.randrange(POOL)
                for param in sorted(definition.params_of(event))
            },
        })
    return ops


def dump_ops(path: Path, meta: dict, ops: list[dict]) -> None:
    """Write a failure reproduction: one meta line, then one op per line."""
    with open(path, "w") as sink:
        sink.write(json.dumps({"meta": meta}) + "\n")
        for op in ops:
            sink.write(json.dumps(op) + "\n")


def load_ops(path: Path) -> tuple[dict, list[dict]]:
    """Read a dump back as ``(meta, ops)`` — the replay entry point."""
    with open(path) as source:
        first, *rest = [json.loads(line) for line in source if line.strip()]
    return first["meta"], rest


# ---------------------------------------------------------------------------
# The lockstep oracle.
# ---------------------------------------------------------------------------


def _collector(bag: Counter):
    def on_verdict(prop, category, monitor):
        bag[(
            prop.spec_name,
            prop.formalism,
            category,
            tuple(sorted(
                (name, id(value)) for name, value in monitor.binding().items()
            )),
        )] += 1

    return on_verdict


def discrepancy(spec_factory, ops: list[dict], gc_kind: str) -> "str | None":
    """Run all three dispatch tiers over ``ops``; describe any divergence.

    Returns ``None`` when reference, compiled and codegen agree on every
    robust observable, else a human-readable description of the first
    disagreement (the fuzzer's failure predicate — also the minimizer's).
    """
    engines: dict[str, MonitoringEngine] = {}
    verdicts: dict[str, Counter] = {}
    for dispatch in DISPATCHES:
        bag: Counter = Counter()
        engines[dispatch] = MonitoringEngine(
            spec_factory(), gc=gc_kind, dispatch=dispatch,
            on_verdict=_collector(bag),
        )
        verdicts[dispatch] = bag
    pools: dict[str, list[Obj]] = {}
    serial = 0
    for op in ops:
        if op["op"] == "kill":
            pool = pools.get(op["param"])
            if pool is not None:
                serial += 1
                pool[op["slot"]] = Obj(f"{op['param']}#{serial}")
        else:
            values = {}
            for param, slot in op["binding"].items():
                pool = pools.get(param)
                if pool is None:
                    pool = pools[param] = [
                        Obj(f"{param}{n}") for n in range(POOL)
                    ]
                values[param] = pool[slot]
            for engine in engines.values():
                engine.emit(op["event"], **values)
    pools.clear()
    gc.collect()
    for engine in engines.values():
        engine.flush_gc()
    reference = engines["reference"]
    for dispatch in ("compiled", "codegen"):
        if verdicts[dispatch] != verdicts["reference"]:
            return f"{dispatch}: verdict multiset diverges from reference"
        for (name, formalism), stats in engines[dispatch].stats().items():
            other = reference.stats_for(name, formalism)
            for field in ("events", "monitors_created", "handler_fires",
                          "verdicts"):
                if getattr(stats, field) != getattr(other, field):
                    return (f"{dispatch}: {name}/{formalism} {field} "
                            f"{getattr(stats, field)} != {getattr(other, field)}")
    return None


# ---------------------------------------------------------------------------
# Greedy minimization (ddmin-style chunk removal).
# ---------------------------------------------------------------------------


def minimize(ops: list[dict], fails) -> list[dict]:
    """Smallest op list (under greedy chunk removal) still failing.

    ``fails(ops)`` is the predicate; chunks halve from len/2 down to 1,
    restarting after any successful removal — classic delta debugging
    without the complement bookkeeping (the predicate is cheap here).
    """
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        shrunk = False
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and fails(candidate):
                ops = candidate
                shrunk = True
            else:
                start += chunk
        if not shrunk:
            chunk //= 2
    return ops


def _dump_dir() -> Path:
    configured = os.environ.get("REPRO_FUZZ_DUMP")
    path = Path(configured) if configured else Path(tempfile.gettempdir())
    path.mkdir(parents=True, exist_ok=True)
    return path


# ---------------------------------------------------------------------------
# The fuzz corpus: every CATALOGUE property × seeds.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(CATALOGUE))
def test_fuzz_dispatch_lockstep(key: str):
    prop = CATALOGUE[key]
    for index, seed_base in enumerate(SEEDS):
        seed = zlib.crc32(f"{key}/{seed_base}".encode())
        gc_kind = GC_STRATEGIES[(seed + index) % len(GC_STRATEGIES)]

        def factory():
            return prop.make().silence()

        try:
            MonitoringEngine(factory(), gc=gc_kind)
        except UnsupportedFormalismError:
            gc_kind = "none"  # CFG properties: fall back, keep fuzzing
        spec = factory()
        ops = synth_ops(spec.definition, seed=seed)
        failure = discrepancy(factory, ops, gc_kind)
        if failure is not None:
            minimal = minimize(
                ops, lambda candidate: discrepancy(factory, candidate, gc_kind)
            )
            dump = _dump_dir() / f"fuzz-{key}-{seed_base}.ndjson"
            dump_ops(dump, {
                "property": key, "gc": gc_kind, "seed": seed_base,
                "failure": failure, "ops": len(minimal),
            }, minimal)
            pytest.fail(
                f"{key} [{gc_kind}, seed {seed_base}]: {failure} — "
                f"minimized reproduction ({len(minimal)} ops) at {dump}"
            )


# ---------------------------------------------------------------------------
# The harness itself is tested: minimizer and dump/replay round-trip.
# ---------------------------------------------------------------------------


def test_minimizer_reaches_a_minimal_core():
    """On a synthetic predicate (needs one 'a' emit AND one 'b' emit) the
    greedy minimizer must strip everything else."""
    rng = random.Random(99)
    ops = [
        {"op": "emit", "event": rng.choice("abcde"), "binding": {}}
        for _ in range(100)
    ]
    ops.append({"op": "emit", "event": "a", "binding": {}})
    ops.append({"op": "emit", "event": "b", "binding": {}})

    def fails(candidate):
        events = [op["event"] for op in candidate]
        return "a" in events and "b" in events

    minimal = minimize(list(ops), fails)
    assert sorted(op["event"] for op in minimal) == ["a", "b"]


def test_dump_roundtrips(tmp_path):
    spec = CATALOGUE["hasnext"].make()
    ops = synth_ops(spec.definition, seed=5)
    path = tmp_path / "repro.ndjson"
    dump_ops(path, {"property": "hasnext", "gc": "none", "seed": 5}, ops)
    meta, loaded = load_ops(path)
    assert meta["property"] == "hasnext"
    assert loaded == ops
    # A loaded dump is directly replayable through the oracle.
    assert discrepancy(
        lambda: CATALOGUE["hasnext"].make().silence(), loaded, "none"
    ) is None
