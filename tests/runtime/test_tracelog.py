"""Trace recording and replay tests."""

from __future__ import annotations

import gc
import io

from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import ReplayToken, TraceRecorder, read_trace, replay
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""


def record_paper_scenario() -> str:
    spec = compile_spec(UNSAFEITER).silence()
    engine = MonitoringEngine(spec, gc="none")
    sink = io.StringIO()
    TraceRecorder(sink).attach(engine)
    c1, i1, i2 = Obj("c1"), Obj("i1"), Obj("i2")
    engine.emit("create", c=c1, i=i1)
    engine.emit("create", c=c1, i=i2)
    engine.emit("update", c=c1)
    engine.emit("next", i=i1)
    return sink.getvalue()


class TestRecording:
    def test_one_json_line_per_event(self):
        log = record_paper_scenario()
        entries = read_trace(log.splitlines())
        assert [entry["event"] for entry in entries] == [
            "create", "create", "update", "next",
        ]

    def test_identity_structure_preserved(self):
        entries = read_trace(record_paper_scenario().splitlines())
        c_first = entries[0]["params"]["c"]
        c_second = entries[1]["params"]["c"]
        i_first = entries[0]["params"]["i"]
        i_second = entries[1]["params"]["i"]
        assert c_first == c_second            # same collection, same symbol
        assert i_first != i_second            # distinct iterators
        assert entries[3]["params"]["i"] == i_first

    def test_recorder_counts(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        sink = io.StringIO()
        recorder = TraceRecorder(sink).attach(engine)
        engine.emit("update", c=Obj("c"))
        assert recorder.events_recorded == 1

    def test_immortal_values_share_symbols(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        sink = io.StringIO()
        TraceRecorder(sink).attach(engine)
        engine.emit("update", c="shared")
        engine.emit("update", c="shared")
        entries = read_trace(sink.getvalue().splitlines())
        assert entries[0]["params"]["c"] == entries[1]["params"]["c"]
        assert entries[0]["params"]["c"].startswith("v:")


class TestReplay:
    def test_replay_reproduces_goal_verdicts(self):
        log = record_paper_scenario()
        spec = compile_spec(UNSAFEITER)
        hits = []
        spec.properties[0].on("match", lambda n, c, b: hits.append(c))
        engine = MonitoringEngine(spec, gc="none")
        tokens = replay(log.splitlines(), engine)
        assert hits == ["match"]
        assert all(isinstance(token, ReplayToken) for token in tokens.values())

    def test_replay_under_different_gc_strategy(self):
        """The point of the tool: re-monitor a recorded trace offline with a
        different engine configuration."""
        log = record_paper_scenario()
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="mop")
        replay(log.splitlines(), engine)
        assert engine.stats_for("UnsafeIter").events == 4

    def test_retire_after_last_use_lets_monitors_collect(self):
        log = record_paper_scenario()
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        tokens = replay(log.splitlines(), engine, retire_after_last_use=True)
        assert tokens == {}  # every token retired at its last occurrence
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_collected == stats.monitors_created > 0

    def test_replay_skips_unknown_events(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        lines = ['{"event": "nonexistent", "params": {"x": "o1"}}']
        replay(lines, engine)  # must not raise
        assert engine.stats_for("UnsafeIter").events == 0


class TestRoundTrip:
    """Record → replay must reproduce the live run's verdicts exactly."""

    def _busy_run(self, record_to=None):
        """A run with many overlapping slices; returns its engine."""
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, system="rv")
        if record_to is not None:
            TraceRecorder(record_to).attach(engine)
        collections = [Obj(f"c{n}") for n in range(4)]
        for round_no in range(6):
            for collection in collections:
                iterators = [Obj(f"i{round_no}") for _ in range(3)]
                for iterator in iterators:
                    engine.emit("create", c=collection, i=iterator)
                    engine.emit("next", i=iterator)
                if round_no % 2:
                    engine.emit("update", c=collection)
                for iterator in iterators:
                    engine.emit("next", i=iterator)
        return engine

    def test_replay_verdict_multiset_matches_live_run(self):
        sink = io.StringIO()
        live = self._busy_run(record_to=sink)
        live_stats = live.stats_for("UnsafeIter")
        assert live_stats.verdicts  # the scenario actually fires

        replayed = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        replay(sink.getvalue().splitlines(), replayed)
        replay_stats = replayed.stats_for("UnsafeIter")
        assert replay_stats.verdicts == live_stats.verdicts
        assert replay_stats.events == live_stats.events
        assert replay_stats.monitors_created == live_stats.monitors_created

    def test_retire_after_last_use_changes_collection_counts(self):
        sink = io.StringIO()
        self._busy_run(record_to=sink)
        log = sink.getvalue().splitlines()

        kept = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        tokens = replay(log, kept, retire_after_last_use=False)
        gc.collect()
        kept.flush_gc()

        retired = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        replay(log, retired, retire_after_last_use=True)
        gc.collect()
        retired.flush_gc()

        kept_stats = kept.stats_for("UnsafeIter")
        retired_stats = retired.stats_for("UnsafeIter")
        # Same trace, same verdicts — but with tokens retired at last use the
        # parameter deaths let the GC strategy reclaim monitors.
        assert retired_stats.verdicts == kept_stats.verdicts
        assert retired_stats.monitors_collected > kept_stats.monitors_collected
        del tokens
        gc.collect()
