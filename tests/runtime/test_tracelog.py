"""Trace recording and replay tests."""

from __future__ import annotations

import gc
import io

from repro.runtime.engine import MonitoringEngine
from repro.runtime.tracelog import ReplayToken, TraceRecorder, read_trace, replay
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""


def record_paper_scenario() -> str:
    spec = compile_spec(UNSAFEITER).silence()
    engine = MonitoringEngine(spec, gc="none")
    sink = io.StringIO()
    TraceRecorder(sink).attach(engine)
    c1, i1, i2 = Obj("c1"), Obj("i1"), Obj("i2")
    engine.emit("create", c=c1, i=i1)
    engine.emit("create", c=c1, i=i2)
    engine.emit("update", c=c1)
    engine.emit("next", i=i1)
    return sink.getvalue()


class TestRecording:
    def test_one_json_line_per_event(self):
        log = record_paper_scenario()
        entries = read_trace(log.splitlines())
        assert [entry["event"] for entry in entries] == [
            "create", "create", "update", "next",
        ]

    def test_identity_structure_preserved(self):
        entries = read_trace(record_paper_scenario().splitlines())
        c_first = entries[0]["params"]["c"]
        c_second = entries[1]["params"]["c"]
        i_first = entries[0]["params"]["i"]
        i_second = entries[1]["params"]["i"]
        assert c_first == c_second            # same collection, same symbol
        assert i_first != i_second            # distinct iterators
        assert entries[3]["params"]["i"] == i_first

    def test_recorder_counts(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        sink = io.StringIO()
        recorder = TraceRecorder(sink).attach(engine)
        engine.emit("update", c=Obj("c"))
        assert recorder.events_recorded == 1

    def test_immortal_values_share_symbols(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        sink = io.StringIO()
        TraceRecorder(sink).attach(engine)
        engine.emit("update", c="shared")
        engine.emit("update", c="shared")
        entries = read_trace(sink.getvalue().splitlines())
        assert entries[0]["params"]["c"] == entries[1]["params"]["c"]
        assert entries[0]["params"]["c"].startswith("v:")


class TestReplay:
    def test_replay_reproduces_goal_verdicts(self):
        log = record_paper_scenario()
        spec = compile_spec(UNSAFEITER)
        hits = []
        spec.properties[0].on("match", lambda n, c, b: hits.append(c))
        engine = MonitoringEngine(spec, gc="none")
        tokens = replay(log.splitlines(), engine)
        assert hits == ["match"]
        assert all(isinstance(token, ReplayToken) for token in tokens.values())

    def test_replay_under_different_gc_strategy(self):
        """The point of the tool: re-monitor a recorded trace offline with a
        different engine configuration."""
        log = record_paper_scenario()
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="mop")
        replay(log.splitlines(), engine)
        assert engine.stats_for("UnsafeIter").events == 4

    def test_retire_after_last_use_lets_monitors_collect(self):
        log = record_paper_scenario()
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        tokens = replay(log.splitlines(), engine, retire_after_last_use=True)
        assert tokens == {}  # every token retired at its last occurrence
        gc.collect()
        engine.flush_gc()
        stats = engine.stats_for("UnsafeIter")
        assert stats.monitors_collected == stats.monitors_created > 0

    def test_replay_skips_unknown_events(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        lines = ['{"event": "nonexistent", "params": {"x": "o1"}}']
        replay(lines, engine)  # must not raise
        assert engine.stats_for("UnsafeIter").events == 0
