"""Sharding determinism: the service must equal a single engine.

The acceptance property of the sharded service: for every property in the
library, a :class:`MonitorService` with 4 shards yields the **same verdict
multiset** as one :class:`MonitoringEngine` over the same trace — anchor
routing, sticky delivery, pretouch, and pinning must never create, lose,
or duplicate a verdict.  Traces are synthesized per property from its own
alphabet with seeded randomness and small object pools, so slices overlap
heavily and the creation/suppression paths all fire.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter

import pytest

from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.service import MonitorService

from ..conftest import Obj

#: Pool sizes chosen so bindings collide (shared parents, reused children).
POOL = 5
EVENTS = 400


def synth_trace(definition, seed: int):
    """A random but reproducible trace over a specification's alphabet."""
    rng = random.Random(seed)
    pools = {
        param: [Obj(f"{param}{n}") for n in range(POOL)]
        for param in definition.parameters
    }
    alphabet = sorted(definition.alphabet)
    trace = []
    for _ in range(EVENTS):
        event = rng.choice(alphabet)
        binding = {
            param: rng.choice(pools[param]) for param in definition.params_of(event)
        }
        trace.append((event, binding))
    return trace, pools


def single_engine_multiset(spec, trace, system: str) -> Counter:
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        verdicts[
            (
                prop.spec_name,
                prop.formalism,
                category,
                tuple(sorted((n, id(v)) for n, v in monitor.binding().items())),
            )
        ] += 1

    engine = MonitoringEngine(spec, system=system, on_verdict=on_verdict)
    for event, params in trace:
        engine.emit(event, **params)
    return verdicts


@pytest.mark.parametrize("key", sorted(ALL_PROPERTIES))
def test_four_shards_match_single_engine(key):
    paper_prop = ALL_PROPERTIES[key]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=zlib.crc32(key.encode()))
    want = single_engine_multiset(spec, trace, system="rv")

    service_spec = paper_prop.make().silence()
    with MonitorService(service_spec, shards=4, system="rv", mode="inline") as service:
        service.emit_batch(trace)
        got = service.verdict_multiset()
    assert got == want
    # Event accounting is exact as well: each property of the spec counted
    # every trace event declaring it exactly once across all shards.
    engine = MonitoringEngine(spec, system="rv")
    for event, params in trace:
        engine.emit(event, **params)
    with MonitorService(paper_prop.make().silence(), shards=4, mode="inline") as svc:
        svc.emit_batch(trace)
        for (name, formalism), merged in svc.stats().items():
            single = engine.stats_for(name, formalism)
            assert merged.events == single.events, (name, formalism)
            assert merged.monitors_created == single.monitors_created


@pytest.mark.parametrize("shards", (1, 2, 3, 7))
def test_shard_count_never_changes_verdicts(shards):
    paper_prop = ALL_PROPERTIES["unsafeiter"]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=20110604)
    want = single_engine_multiset(spec, trace, system="rv")
    with MonitorService(
        paper_prop.make().silence(), shards=shards, system="rv", mode="inline"
    ) as service:
        service.emit_batch(trace)
        assert service.verdict_multiset() == want


def test_thread_mode_matches_inline_multiset():
    paper_prop = ALL_PROPERTIES["unsafeiter"]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=411)
    want = single_engine_multiset(spec, trace, system="rv")
    with MonitorService(
        paper_prop.make().silence(), shards=4, system="rv", mode="thread"
    ) as service:
        for event, params in trace:
            service.emit(event, **params)
        service.drain()
        assert service.verdict_multiset() == want


def test_all_properties_together_under_sharding():
    """One service hosting every paper property at once (the ALL column)."""
    specs = [prop.make().silence() for prop in ALL_PROPERTIES.values()]
    definitionful = [(spec, spec.definition) for spec in specs]
    rng = random.Random(8128)
    pools: dict[str, list[Obj]] = {}
    events = []
    for spec, definition in definitionful:
        for param in definition.parameters:
            pools.setdefault(param, [Obj(f"{param}{n}") for n in range(POOL)])
    alphabet = sorted({e for _s, d in definitionful for e in d.alphabet})
    # Several specs may declare one event name with different parameter
    # lists (SAFEFILE's and SAFEFILEWRITER's ``open``); emit the union and
    # let each property restrict to its own D(e), as the weaver does.
    domains: dict[str, frozenset] = {}
    for _spec, definition in definitionful:
        for event in definition.alphabet:
            domains[event] = domains.get(event, frozenset()) | definition.params_of(event)
    for _ in range(EVENTS):
        event = rng.choice(alphabet)
        events.append(
            (event, {param: rng.choice(pools[param]) for param in domains[event]})
        )

    want: Counter = Counter()
    engines = [
        MonitoringEngine(
            spec,
            system="rv",
            on_verdict=lambda prop, category, monitor: want.update(
                [
                    (
                        prop.spec_name,
                        prop.formalism,
                        category,
                        tuple(
                            sorted((n, id(v)) for n, v in monitor.binding().items())
                        ),
                    )
                ]
            ),
        )
        for spec in specs
    ]
    for event, params in events:
        for engine in engines:
            engine.emit(event, _strict=False, **params)

    fresh = [prop.make().silence() for prop in ALL_PROPERTIES.values()]
    with MonitorService(fresh, shards=4, system="rv", mode="inline") as service:
        service.emit_batch(events, _strict=False)
        assert service.verdict_multiset() == want
