"""Deterministic fault injection: plans, worker state, guarded dispatch.

The fault layer is the chaos benchmark's foundation, so its own contract
must be exact: seeded campaigns replay bit-identically, faults fire at
their scheduled delivery ordinals and exactly once, and the guarded
dispatch loop's retry/quarantine behaviour is observable delivery by
delivery.
"""

from __future__ import annotations

import errno

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    InjectedCrash,
    InjectedPoison,
    QuarantinePolicy,
    WorkerFaultState,
    supervised_dispatch,
    tear_wal_tail,
)
from repro.persist.wal import WalWriter, iter_wal_records, repair_tail


class _Recorder:
    """An engine double recording every dispatched delivery."""

    def __init__(self, fail_events: "set[str] | None" = None):
        self.dispatched: list[tuple] = []
        self.fail_events = fail_events or set()

    def emit_selected_batch(self, items):
        for item in items:
            if item[0] in self.fail_events:
                raise RuntimeError(f"real bug on {item[0]}")
            self.dispatched.append(item)


def _items(n: int, event: str = "e"):
    return [(f"{event}{i}", {}, ((0,), None, None, ())) for i in range(n)]


# -- FaultPlan -----------------------------------------------------------------


def test_crash_campaign_is_deterministic():
    a = FaultPlan.crash_campaign(seed=42, shards=4, deliveries=1000, crashes=3)
    b = FaultPlan.crash_campaign(seed=42, shards=4, deliveries=1000, crashes=3)
    assert a.armed() == b.armed()
    assert len(a.armed()) == 3
    # Positions land in the middle 80% of the run.
    for fault in a.armed():
        assert 100 <= fault["at"] <= 900
        assert 0 <= fault["shard"] < 4
    # A different seed moves the schedule.
    c = FaultPlan.crash_campaign(seed=43, shards=4, deliveries=1000, crashes=3)
    assert [f["at"] for f in c.armed()] != [f["at"] for f in a.armed()]


def test_add_validates_kind_and_position():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.add("meteor", shard=0, at=1)
    with pytest.raises(ValueError):
        plan.add("crash", shard=0)  # dispatch faults need a position
    plan.add("wal", shard=0)  # wal faults may be positionless ("next write")
    assert plan.armed(kind="wal")


def test_disarm_is_one_shot_and_earliest_picks_by_position():
    plan = FaultPlan()
    late = plan.add("crash", shard=1, at=50)
    early = plan.add("crash", shard=1, at=10)
    other = plan.add("crash", shard=0, at=5)
    fired = plan.disarm_earliest(1)
    assert fired is not None and fired["id"] == early
    assert plan.disarm(late) is True
    assert plan.disarm(late) is False  # already fired
    assert [f["id"] for f in plan.armed()] == [other]
    assert plan.disarm_earliest(1) is None


def test_worker_config_carries_only_dispatch_kinds():
    plan = FaultPlan()
    plan.add("crash", shard=0, at=3)
    plan.add("queue", shard=0, at=1, duration=0.1)
    plan.add("wal", shard=0, at=1)
    plan.add("poison", shard=0, at=7)
    config = plan.worker_config(0, start_count=40)
    assert config["start_count"] == 40
    assert sorted(f["kind"] for f in config["faults"]) == ["crash", "poison"]
    assert plan.worker_config(3) is None
    assert set(FAULT_KINDS) >= {f["kind"] for f in plan.armed()}


def test_queue_delay_hook_counts_puts_and_disarms():
    plan = FaultPlan()
    plan.add("queue", shard=2, at=3, duration=0.5)
    assert plan.queue_delay_hook(0) is None
    delay = plan.queue_delay_hook(2)
    assert [delay(), delay(), delay(), delay()] == [0.0, 0.0, 0.5, 0.0]
    assert not plan.armed(kind="queue")


def test_wal_fault_hook_raises_enospc_once(tmp_path):
    plan = FaultPlan()
    plan.add("wal", shard=0, at=2)
    hook = plan.wal_fault_hook(0)
    hook("append")
    with pytest.raises(OSError) as exc_info:
        hook("append")
    assert exc_info.value.errno == errno.ENOSPC
    hook("append")  # disarmed: the third write is clean
    assert not plan.armed(kind="wal")


# -- WorkerFaultState + supervised_dispatch ------------------------------------


def test_crash_fires_before_dispatch_and_stays_armed():
    plan = FaultPlan()
    fault_id = plan.add("crash", shard=0, at=3)
    state = WorkerFaultState(plan.worker_config(0))
    engine = _Recorder()
    with pytest.raises(InjectedCrash) as exc_info:
        supervised_dispatch(engine, _items(5), state=state)
    assert exc_info.value.fault_id == fault_id
    # Two deliveries landed; the crashing third did not dispatch.
    assert [item[0] for item in engine.dispatched] == ["e0", "e1"]
    assert state.count == 2
    # The crash is NOT consumed by the worker — the supervisor disarms it
    # when it handles the restart (that is what makes it one-shot).
    assert state.due(3) is not None


def test_start_count_resumes_absolute_ordinals():
    plan = FaultPlan()
    plan.add("crash", shard=0, at=3)
    # A recovering worker that already dispatched 10 deliveries never
    # reaches ordinal 3 again: the fault cannot re-fire.
    state = WorkerFaultState(plan.worker_config(0, start_count=10))
    engine = _Recorder()
    assert supervised_dispatch(engine, _items(5), state=state) == 5
    assert state.count == 15


def test_stall_consumes_and_dispatch_proceeds():
    plan = FaultPlan()
    plan.add("stall", shard=0, at=2, duration=0.0)
    state = WorkerFaultState(plan.worker_config(0))
    engine = _Recorder()
    assert supervised_dispatch(engine, _items(3), state=state) == 3
    assert len(engine.dispatched) == 3
    assert state.due(2) is None  # consumed


def test_poison_retries_then_quarantines():
    plan = FaultPlan()
    plan.add("poison", shard=0, at=2)
    state = WorkerFaultState(plan.worker_config(0))
    engine = _Recorder()
    quarantined = []
    consumed = supervised_dispatch(
        engine,
        _items(4),
        state=state,
        quarantine=QuarantinePolicy(retries=2, backoff=0.0),
        on_quarantine=lambda item, exc, attempts: quarantined.append(
            (item[0], exc, attempts)
        ),
    )
    assert consumed == 4
    # The poisoned delivery is skipped; its neighbours each dispatch once.
    assert [item[0] for item in engine.dispatched] == ["e0", "e2", "e3"]
    assert len(quarantined) == 1
    name, failure, attempts = quarantined[0]
    assert name == "e1" and attempts == 3
    assert isinstance(failure, InjectedPoison)
    assert state.quarantined == 1 and state.count == 4


def test_real_exception_quarantines_like_poison():
    engine = _Recorder(fail_events={"bad"})
    quarantined = []
    items = [("ok", {}, ()), ("bad", {}, ()), ("ok2", {}, ())]
    supervised_dispatch(
        engine,
        items,
        quarantine=QuarantinePolicy(retries=1, backoff=0.0),
        on_quarantine=lambda item, exc, attempts: quarantined.append(item[0]),
    )
    assert quarantined == ["bad"]
    assert [item[0] for item in engine.dispatched] == ["ok", "ok2"]


def test_without_handler_poison_reraises():
    engine = _Recorder(fail_events={"bad"})
    with pytest.raises(RuntimeError):
        supervised_dispatch(
            engine,
            [("bad", {}, ())],
            quarantine=QuarantinePolicy(retries=0, backoff=0.0),
        )


def test_quarantine_policy_round_trips_config():
    policy = QuarantinePolicy(retries=5, backoff=0.25)
    clone = QuarantinePolicy.from_config(policy.to_config())
    assert (clone.retries, clone.backoff) == (5, 0.25)
    assert QuarantinePolicy.from_config(None) is None


# -- corruption helpers --------------------------------------------------------


def test_tear_wal_tail_leaves_repairable_torn_record(tmp_path):
    directory = str(tmp_path / "wal")
    writer = WalWriter(directory, fsync_interval=1)
    for n in range(5):
        writer.append_delivery(f"e{n}", {"p": f"o:{n}"}, [[0], None, None, []])
    writer.close()
    removed = tear_wal_tail(directory)
    assert removed > 0
    # The four intact records survive; the torn fifth is gone.
    suffix = [
        payload
        for _seq, kind, payload in iter_wal_records(directory)
        if kind == "delivery"
    ]
    assert [event for event, _symbols, _plan in suffix] == ["e0", "e1", "e2", "e3"]
    assert repair_tail(directory) > 0  # the torn bytes are cut for good
