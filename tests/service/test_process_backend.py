"""Process shard backend: the determinism suite, across a real fork.

Mirrors ``test_determinism``'s acceptance property for ``mode="process"``:
for every library property, a 4-process service over a synthesized trace
yields the same verdict multiset and the same exact event/creation
accounting as a single in-process engine — routing, serialized delivery,
token materialization, retire propagation, and verdict return must never
create, lose, or duplicate anything.  Plus lifecycle (idempotent close,
context manager, worker teardown) and checkpoint/migration paths.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter

import pytest

from repro.core.errors import ServiceError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.service import MonitorService, ingest_symbolic

from ..conftest import Obj

POOL = 5
EVENTS = 400


def synth_trace(definition, seed: int):
    rng = random.Random(seed)
    pools = {
        param: [Obj(f"{param}{n}") for n in range(POOL)]
        for param in definition.parameters
    }
    alphabet = sorted(definition.alphabet)
    trace = []
    for _ in range(EVENTS):
        event = rng.choice(alphabet)
        trace.append(
            (event, {p: rng.choice(pools[p]) for p in definition.params_of(event)})
        )
    return trace, pools


def single_engine_multiset(spec, trace) -> Counter:
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        verdicts[
            (
                prop.spec_name,
                prop.formalism,
                category,
                tuple(sorted((n, id(v)) for n, v in monitor.binding().items())),
            )
        ] += 1

    engine = MonitoringEngine(spec, system="rv", on_verdict=on_verdict)
    for event, params in trace:
        engine.emit(event, **params)
    return verdicts


@pytest.mark.parametrize("key", sorted(ALL_PROPERTIES))
def test_process_backend_matches_single_engine(key):
    paper_prop = ALL_PROPERTIES[key]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=zlib.crc32(key.encode()))
    want = single_engine_multiset(spec, trace)

    engine = MonitoringEngine(paper_prop.make().silence(), system="rv")
    for event, params in trace:
        engine.emit(event, **params)

    with MonitorService(
        paper_prop.make().silence(), shards=4, system="rv", mode="process"
    ) as service:
        service.emit_batch(trace)
        service.drain()
        got = service.verdict_multiset()
        stats = service.stats()
    assert got == want
    for (name, formalism), merged in stats.items():
        single = engine.stats_for(name, formalism)
        assert merged.events == single.events, (name, formalism)
        assert merged.monitors_created == single.monitors_created, (name, formalism)


def test_backend_keyword_is_a_mode_alias():
    with MonitorService(
        ALL_PROPERTIES["hasnext"].make().silence(), shards=2, backend="process"
    ) as service:
        assert service.mode == "process"
        i = Obj("i")
        service.emit("next", i=i)
        service.drain()
        assert service.stats_for("HasNext", "fsm").events == 1
        del i


def test_stats_survive_close_and_double_close():
    paper_prop = ALL_PROPERTIES["unsafeiter"]
    service = MonitorService(paper_prop.make().silence(), shards=2, mode="process")
    c, i = Obj("c"), Obj("i")
    service.emit("create", c=c, i=i)
    service.emit("update", c=c)
    service.close()
    service.close()  # idempotent
    stats = service.stats_for("UnsafeIter")
    assert stats.events == 2
    # create<c,i> plus the fresh {c}-slice opened by update<c> (update* prefix).
    assert stats.monitors_created == 2
    with pytest.raises(ServiceError):
        service.emit("update", c=c)
    del c, i


def test_workers_are_reaped_on_close():
    service = MonitorService(
        ALL_PROPERTIES["unsafeiter"].make().silence(), shards=3, mode="process"
    )
    procs = list(service._pool._procs)
    assert all(p.is_alive() for p in procs)
    service.close()
    assert all(not p.is_alive() for p in procs)


def test_context_manager_reaps_workers():
    with MonitorService(
        ALL_PROPERTIES["unsafeiter"].make().silence(), shards=2, mode="process"
    ) as service:
        procs = list(service._pool._procs)
    assert all(not p.is_alive() for p in procs)


def test_retire_propagation_drives_worker_gc():
    """Dropping a parent object must reach the workers and collect monitors."""
    paper_prop = ALL_PROPERTIES["unsafeiter"]
    with MonitorService(
        paper_prop.make().silence(), shards=2, gc="coenable", mode="process"
    ) as service:
        c = Obj("c")
        iterators = [Obj(f"i{n}") for n in range(8)]
        for index in range(len(iterators)):
            service.emit("create", c=c, i=iterators[index])
        service.drain()
        del iterators  # all iterators die; coenable flags their monitors
        import gc as _gc

        _gc.collect()
        service.emit("update", c=c)  # flush pending retires, tick the shards
        service.drain()
        stats = service.stats_for("UnsafeIter")
        assert stats.monitors_created >= 8
        service.close()
        # All 8 iterator monitors became unnecessary (their i died; the
        # coenable check needs a future next<i>) and were collected by the
        # workers' end-of-run flush; the {c}-slice monitor survives.
        final = service.stats_for("UnsafeIter")
        assert final.monitors_collected == 8
        del c


def test_per_shard_stats_keep_shape_after_close():
    paper_prop = ALL_PROPERTIES["hasnext"]
    service = MonitorService(paper_prop.make().silence(), shards=3, mode="process")
    i = Obj("i")
    service.emit("next", i=i)
    service.close()
    per_shard = service.per_shard_stats()
    assert len(per_shard) == 3  # one entry per shard, even after close
    assert sum(s.events for shard in per_shard for s in shard.values()) == 2
    del i


def test_immortal_binding_values_resolve_like_thread_mode():
    """Non-weakrefable parameters (ints, strings) must come back as the
    live values in verdict bindings, not as their 'v:...' symbol text."""
    paper_prop = ALL_PROPERTIES["hasnext"]
    records = []
    with MonitorService(
        paper_prop.make().silence(),
        shards=2,
        system="rv",
        mode="process",
        on_verdict=records.append,
    ) as service:
        service.emit("next", i=42)  # immortal parameter: next before hasnexttrue
        service.drain()
    assert records, "expected a verdict from next-without-hasnext"
    assert any(dict(record.binding).get("i") == 42 for record in records)


def test_drain_after_migration_still_waits_for_new_verdicts():
    """A restarted worker counts verdicts from zero; drain() must still
    wait for verdicts it produces after the migration."""
    paper_prop = ALL_PROPERTIES["hasnext"]
    iterators = [Obj(f"i{n}") for n in range(6)]
    round_one = [("next", {"i": iterators[n]}) for n in range(6)]
    round_two = [("hasnexttrue", {"i": iterators[n]}) for n in range(6)] + round_one

    # Reference: the same two rounds with no migration, inline.
    with MonitorService(
        paper_prop.make().silence(), shards=2, system="rv", mode="inline"
    ) as reference:
        reference.emit_batch(round_one + round_two)
        expected = len(reference.verdicts())

    records = []
    with MonitorService(
        paper_prop.make().silence(),
        shards=2,
        system="rv",
        mode="process",
        on_verdict=records.append,
    ) as service:
        service.emit_batch(round_one)
        service.drain()
        before = len(records)
        assert before > 0
        for shard in range(2):
            service.restart_shard(shard)
        service.emit_batch(round_two)
        service.drain()
        # The happens-before edge: every post-restart verdict is already
        # delivered when drain() returns, despite the counter reset.
        assert len(records) == expected
    del iterators


def test_on_verdict_exception_surfaces_instead_of_hanging():
    """A raising user callback must not kill the verdict drainer: the
    failure surfaces at the next drain, and close still completes."""
    paper_prop = ALL_PROPERTIES["hasnext"]

    def explode(_record):
        raise RuntimeError("callback boom")

    service = MonitorService(
        paper_prop.make().silence(),
        shards=2,
        system="rv",
        mode="process",
        on_verdict=explode,
    )
    i = Obj("i")
    service.emit("next", i=i)  # produces a verdict -> callback raises
    with pytest.raises(ServiceError, match="boom"):
        service.drain()
    with pytest.raises(ServiceError):
        service.close()
    del i


def test_shard_migration_preserves_run():
    """checkpoint → terminate → restore a worker mid-stream, seamlessly."""
    paper_prop = ALL_PROPERTIES["hasnext"]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=411)
    want = single_engine_multiset(spec, trace)
    with MonitorService(
        paper_prop.make().silence(), shards=4, system="rv", mode="process"
    ) as service:
        service.emit_batch(trace[:200])
        for shard in range(4):
            service.restart_shard(shard)
        service.emit_batch(trace[200:])
        service.drain()
        assert service.verdict_multiset() == want


def test_process_checkpoint_restores_into_inline():
    """A process-mode checkpoint is mode-portable: restore inline."""
    paper_prop = ALL_PROPERTIES["unsafeiter"]
    spec = paper_prop.make().silence()
    trace, pools = synth_trace(spec.definition, seed=20110604)
    want = single_engine_multiset(spec, trace)

    got: Counter = Counter()

    def collect(record):
        got[record.key()] += 1

    service = MonitorService(
        paper_prop.make().silence(),
        shards=4,
        system="rv",
        mode="process",
        keep_verdict_log=False,
        on_verdict=collect,
    )
    service.emit_batch(trace[:200])
    checkpoint = service.checkpoint()
    service.close()

    restored = MonitorService.restore(
        checkpoint,
        paper_prop.make().silence(),
        mode="inline",
        keep_verdict_log=False,
        on_verdict=collect,
    )
    # The prefix's objects live on in the parent; map them to their
    # restored stand-ins through the symbol the service minted for them.
    remap = {
        id(service._registry.resolve(symbol)): token
        for symbol, token in restored.restored_tokens.items()
        if service._registry.resolve(symbol) is not None
    }
    for event, params in trace[200:]:
        restored.emit(
            event, **{n: remap.get(id(v), v) for n, v in params.items()}
        )
    restored.close()
    # Compare category totals: binding identities necessarily differ
    # between the original objects and their restored stand-ins.
    assert Counter(k[2] for k in got) == Counter(k[2] for k in want)
    rows = {k: s for k, s in restored.stats().items()}
    engine = MonitoringEngine(paper_prop.make().silence(), system="rv")
    for event, params in trace:
        engine.emit(event, **params)
    for (name, formalism), merged in rows.items():
        assert merged.events == engine.stats_for(name, formalism).events
