"""Service-level registry operations: determinism, barriers, all backends.

Registry operations go through a shard barrier under the emit lock, so a
property registered (or unregistered) mid-stream switches every shard
between the same two events.  The acceptance check mirrors the service
determinism suite: a 4-shard service with hot ops produces the same
verdict multiset and merged statistics as a single engine applying the
identical ops at the identical trace positions — in inline, thread, and
process modes.
"""

from __future__ import annotations

import gc
from collections import Counter

import pytest

from repro.core.errors import ServiceError
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.service import MonitorService, ingest_symbolic
from repro.runtime.tracelog import replay_entries

from ..persist.conftest import (
    seed_for,
    symbolic_record_key,
    symbolic_verdict_key,
    synth_entries,
)

BASE = "unsafeiter"
HOT = "hasnext"


def _entries(seed: int, events: int = 240):
    base_spec = ALL_PROPERTIES[BASE].make()
    hot_spec = ALL_PROPERTIES[HOT].make()

    class _Definition:
        parameters = sorted(
            set(base_spec.definition.parameters)
            | set(hot_spec.definition.parameters)
        )
        alphabet = sorted(set(base_spec.alphabet) | set(hot_spec.alphabet))

        @staticmethod
        def params_of(event):
            if event in base_spec.alphabet:
                return base_spec.definition.params_of(event)
            return hot_spec.definition.params_of(event)

    return synth_entries(_Definition, seed, events=events)


def _single_engine_with_ops(entries, k_register, k_unregister):
    """The reference run: one engine, ops applied at the same positions."""
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        verdicts[symbolic_verdict_key(prop, category, monitor)] += 1

    engine = MonitoringEngine(
        ALL_PROPERTIES[BASE].make().silence(), gc="coenable", on_verdict=on_verdict
    )
    tokens: dict = {}
    replay_entries(entries, engine, retire_after_last_use=True,
                   stop=k_register, tokens=tokens)
    engine.attach_property(ALL_PROPERTIES[HOT].make().silence())
    replay_entries(entries, engine, retire_after_last_use=True,
                   start=k_register, stop=k_unregister, tokens=tokens)
    engine.detach_property("HasNext/fsm")
    replay_entries(entries, engine, retire_after_last_use=True,
                   start=k_unregister, tokens=tokens)
    engine.flush_gc()
    rows = {
        key: (stats.events, stats.monitors_created)
        for key, stats in engine.stats().items()
    }
    return verdicts, rows


def _service_with_ops(mode, entries, k_register, k_unregister):
    service = MonitorService(
        ALL_PROPERTIES[BASE] if mode == "process"
        else ALL_PROPERTIES[BASE].make().silence(),
        shards=4, gc="coenable", mode=mode,
    )
    tokens: dict = {}
    try:
        ingest_symbolic(service, entries, retire_after_last_use=True,
                        stop=k_register, tokens=tokens)
        service.register_property(ALL_PROPERTIES[HOT])
        ingest_symbolic(service, entries, retire_after_last_use=True,
                        start=k_register, stop=k_unregister, tokens=tokens)
        service.unregister_property("HasNext/fsm")
        ingest_symbolic(service, entries, retire_after_last_use=True,
                        start=k_unregister, tokens=tokens)
        service.drain()
        verdicts = Counter(
            symbolic_record_key(record) for record in service.verdicts()
        )
        rows = {
            key: (stats.events, stats.monitors_created)
            for key, stats in service.stats().items()
        }
        return verdicts, rows
    finally:
        service.close()


@pytest.mark.parametrize("mode", ("inline", "thread", "process"))
def test_hot_ops_match_single_engine(mode):
    entries = _entries(seed_for("service-ops", mode))
    k_register, k_unregister = len(entries) // 4, 3 * len(entries) // 4
    want_verdicts, want_rows = _single_engine_with_ops(
        entries, k_register, k_unregister
    )
    got_verdicts, got_rows = _service_with_ops(
        mode, entries, k_register, k_unregister
    )
    assert got_verdicts == want_verdicts
    assert got_rows == want_rows


def test_unregister_under_load_leaks_nothing_in_process_backend():
    entries = _entries(seed_for("service-leak"), events=300)
    service = MonitorService(
        ALL_PROPERTIES[BASE], shards=2, gc="coenable", mode="process"
    )
    try:
        tokens: dict = {}
        k = len(entries) // 2
        ingest_symbolic(service, entries, retire_after_last_use=True,
                        stop=k, tokens=tokens)
        service.drain()
        before = service.stats_for("UnsafeIter", "ere")
        assert before.monitors_created > 0
        service.unregister_property("UnsafeIter/ere")
        # The stream keeps flowing; the retired property's events are
        # unknown to the service now and dropped (non-strict replay).
        ingest_symbolic(service, entries, retire_after_last_use=True,
                        start=k, tokens=tokens)
        service.drain()
        tokens.clear()
        gc.collect()
        after = service.stats_for("UnsafeIter", "ere")
        assert after.events == before.events
        # Workers report the retired slot's folded statistics, and every
        # monitor it ever created has been reclaimed in the workers once
        # its parameters retired: nothing pins a detached runtime.
        assert after.live_monitors == 0
        assert after.monitors_collected == after.monitors_created
    finally:
        service.close()


def test_double_unregister_rejected_without_killing_workers():
    """Validation happens parent-side, before broadcasting: a repeated
    unregister raises instead of detonating a RegistryError inside every
    shard worker process."""
    from repro.core.errors import RegistryError

    service = MonitorService(
        [ALL_PROPERTIES[BASE], ALL_PROPERTIES[HOT]], shards=2,
        gc="coenable", mode="process",
    )
    try:
        service.unregister_property("HasNext/fsm")
        with pytest.raises(RegistryError, match="already removed"):
            service.unregister_property("HasNext/fsm")
        with pytest.raises(RegistryError, match="removed"):
            service.set_property_enabled("HasNext/fsm", True)
        # The workers survived the rejected operations.
        service.emit("next", i=object())
        service.drain()
        assert service.stats_for("HasNext", "ltl").events == 1
    finally:
        service.close()


def test_register_requires_portable_origin_in_process_mode():
    service = MonitorService(
        ALL_PROPERTIES[BASE], shards=2, gc="coenable", mode="process"
    )
    try:
        with pytest.raises(ServiceError, match="re-materializable"):
            service.register_property(ALL_PROPERTIES[HOT].make().silence())
    finally:
        service.close()


def test_registered_property_routes_and_epoch_advances():
    service = MonitorService(
        ALL_PROPERTIES[BASE].make().silence(), shards=4, mode="inline"
    )
    try:
        epoch = service.registry_epoch
        assert not service.router.declared("hasnexttrue")
        indexes = service.register_property(ALL_PROPERTIES[HOT])
        assert service.registry_epoch == epoch + len(indexes)
        assert service.router.declared("hasnexttrue")
        routing = {row["property"] for row in service.describe_routing()}
        assert "HasNext/fsm" in routing
        service.unregister_property("HasNext/fsm")
        service.unregister_property("HasNext/ltl")
        assert not service.router.declared("hasnexttrue")
        # Every shard engine mirrored the operations in lock step.
        for engine in service.engines:
            assert engine.registry_epoch == service.registry_epoch
    finally:
        service.close()


def test_disable_enable_round_trip_inline():
    entries = _entries(seed_for("service-disable"), events=120)
    service = MonitorService(
        [ALL_PROPERTIES[BASE].make().silence(),
         ALL_PROPERTIES[HOT].make().silence()],
        shards=4, mode="inline",
    )
    try:
        k = len(entries) // 3
        tokens: dict = {}
        ingest_symbolic(service, entries, stop=k, tokens=tokens)
        paused = service.stats_for("HasNext", "fsm").events
        service.set_property_enabled("HasNext/fsm", False)
        ingest_symbolic(service, entries, start=k, stop=2 * k, tokens=tokens)
        assert service.stats_for("HasNext", "fsm").events == paused
        service.set_property_enabled("HasNext/fsm", True)
        ingest_symbolic(service, entries, start=2 * k, tokens=tokens)
        assert service.stats_for("HasNext", "fsm").events > paused
    finally:
        service.close()
