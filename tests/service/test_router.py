"""Anchor selection and shard routing tests."""

from __future__ import annotations

import gc

from repro.properties import ALL_PROPERTIES
from repro.service.router import (
    ShardRouter,
    choose_anchor,
    has_join_plans,
    valid_anchors,
)
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""

#: Two independent single-parameter slices: no parameter occurs in every
#: realizable monitor domain, so the property cannot be anchored.
UNANCHORABLE = """
TwoSlices(a, b) {
  event ea(a)
  event eb(b)
  ere: ea | eb
  @match
}
"""


def _prop(source: str):
    return compile_spec(source).properties[0]


class TestAnchorSelection:
    def test_paper_property_anchors(self):
        expected = {
            "hasnext": "i",
            "unsafeiter": "c",
            "unsafemapiter": "m",
            "unsafesynccoll": "c",
            "unsafesyncmap": "m",
            "safelock": "t",
        }
        for key, anchor in expected.items():
            for prop in ALL_PROPERTIES[key].make().properties:
                assert choose_anchor(prop) == anchor, key

    def test_anchor_is_in_every_monitor_domain(self):
        for paper_prop in ALL_PROPERTIES.values():
            for prop in paper_prop.make().properties:
                anchor = choose_anchor(prop)
                assert anchor is not None
                for domain in prop.monitor_domains():
                    assert anchor in domain

    def test_unanchorable_property(self):
        prop = _prop(UNANCHORABLE)
        assert valid_anchors(prop) == frozenset()
        assert choose_anchor(prop) is None

    def test_join_detection(self):
        # UNSAFEMAPITER's createiter has enable {m, c}, incomparable with
        # D(createiter) = {c, i}: a join-style creation.
        mapiter = ALL_PROPERTIES["unsafemapiter"].make().properties[0]
        assert has_join_plans(mapiter)
        assert not has_join_plans(_prop(UNSAFEITER))


class TestRouting:
    def test_anchored_events_route_to_one_shard(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c = Obj("c")
        deliveries = list(router.route("update", {"c": c}))
        assert len(deliveries) == 1
        shard, (props, recording, pretouched, count_only) = deliveries[0]
        assert shard == router.shard_of(c)
        assert props == (0,)
        assert recording is None  # the routed shard records the event
        assert not count_only

    def test_same_object_same_shard(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c = Obj("c")
        assert router.shard_of(c) == router.shard_of(c)

    def test_objects_spread_over_shards(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        keep = [Obj(str(n)) for n in range(256)]
        hit = {router.shard_of(obj) for obj in keep}
        assert hit == {0, 1, 2, 3}

    def test_unseen_anchor_free_event_is_count_only(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        i = Obj("i")
        deliveries = list(router.route("next", {"i": i}))
        # Nothing can process it; shard 0 only records the count.
        assert len(deliveries) == 1
        shard, (props, _recording, _pre, count_only) = deliveries[0]
        assert shard == 0 and props == () and count_only == (0,)

    def test_sticky_association_follows_anchor(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c, i = Obj("c"), Obj("i")
        [(create_shard, _)] = router.route("create", {"c": c, "i": i})
        [(next_shard, (props, _rec, _pre, _count))] = router.route("next", {"i": i})
        assert next_shard == create_shard
        assert props == (0,)

    def test_pretouch_reported_when_shard_missed_touches(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c1, i = Obj("c1"), Obj("i")
        [(s1, _)] = router.route("create", {"c": c1, "i": i})
        list(router.route("next", {"i": i}))  # delivered to s1 only
        # Find a collection hashing to a different shard.
        c2 = Obj("c2")
        while router.shard_of(c2) == s1:
            c2 = Obj("c2")
        [(s2, (_props, _rec, pretouched, _count))] = router.route(
            "create", {"c": c2, "i": i}
        )
        assert s2 != s1
        assert pretouched == {0: frozenset({frozenset({"i"})})}

    def test_no_pretouch_on_the_touched_shard(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c, i = Obj("c"), Obj("i")
        [(shard, _)] = router.route("create", {"c": c, "i": i})
        list(router.route("next", {"i": i}))
        [(again, (_props, _rec, pretouched, _count))] = router.route(
            "create", {"c": c, "i": i}
        )
        assert again == shard and pretouched is None

    def test_broadcast_for_join_properties(self):
        mapiter = ALL_PROPERTIES["unsafemapiter"].make().properties[0]
        router = ShardRouter([mapiter], shards=4)
        i = Obj("i")
        deliveries = dict(router.route("useiter", {"i": i}))
        assert set(deliveries) == {0, 1, 2, 3}
        # Exactly one shard records the broadcast event.
        recorded = [
            shard
            for shard, (props, recording, _pre, _count) in deliveries.items()
            if recording is None or 0 in recording
        ]
        assert recorded == [0]

    def test_pinned_property_stays_whole(self):
        prop = _prop(UNANCHORABLE)
        router = ShardRouter([prop], shards=4)
        assert router.routes[0].is_pinned
        pin = router.routes[0].pinned_shard
        a, b = Obj("a"), Obj("b")
        for event, params in (("ea", {"a": a}), ("eb", {"b": b})):
            [(shard, (props, recording, _pre, _count))] = router.route(event, params)
            assert shard == pin and props == (0,) and recording is None

    def test_single_shard_short_circuit(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=1)
        i = Obj("i")
        [(shard, (props, recording, pretouched, count_only))] = router.route(
            "next", {"i": i}
        )
        assert shard == 0 and props == (0,) and recording is None
        assert pretouched is None and count_only == ()

    def test_dead_objects_are_purged_from_sticky_state(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        c, i = Obj("c"), Obj("i")
        list(router.route("create", {"c": c, "i": i}))
        list(router.route("next", {"i": i}))
        state = router._sticky[0]
        assert state.assoc and state.touch_all
        del c, i
        gc.collect()
        assert not state.assoc
        assert not state.touch_all
        assert not state.guards

    def test_unknown_event_routes_nowhere(self):
        router = ShardRouter([_prop(UNSAFEITER)], shards=4)
        assert list(router.route("nope", {})) == []
        assert not router.declared("nope")
        assert router.declared("next")

    def test_describe_names_strategy(self):
        router = ShardRouter(
            [_prop(UNSAFEITER), ALL_PROPERTIES["unsafemapiter"].make().properties[0]],
            shards=4,
        )
        table = {row["property"]: row for row in router.describe()}
        assert table["UnsafeIter/ere"]["anchor"] == "c"
        assert table["UnsafeIter/ere"]["anchor_free_delivery"] == "sticky"
        assert table["UnsafeMapIter/ere"]["anchor_free_delivery"] == "broadcast"
