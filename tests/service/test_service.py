"""MonitorService lifecycle, ingestion, aggregation, and failure tests."""

from __future__ import annotations

import io
from collections import Counter

import pytest

from repro.core.errors import ServiceError, UnknownEventError
from repro.runtime.engine import MonitoringEngine
from repro.runtime.statistics import MonitorStats
from repro.runtime.tracelog import TraceRecorder, read_trace
from repro.service import MonitorService, ingest_symbolic
from repro.spec import compile_spec

from ..conftest import Obj

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match
}
"""


def paper_trace():
    """Figure 3's scenario: two iterators over one collection, one update."""
    c1, i1, i2 = Obj("c1"), Obj("i1"), Obj("i2")
    events = [
        ("create", {"c": c1, "i": i1}),
        ("create", {"c": c1, "i": i2}),
        ("update", {"c": c1}),
        ("next", {"i": i1}),
    ]
    return events, (c1, i1, i2)


class TestIngestion:
    @pytest.mark.parametrize("mode", ("inline", "thread"))
    def test_paper_scenario_fires_once(self, mode):
        events, keep = paper_trace()
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=4, system="rv", mode=mode
        ) as service:
            for event, params in events:
                service.emit(event, **params)
            service.drain()
            verdicts = service.verdicts()
            assert [v.category for v in verdicts] == ["match"]
            assert verdicts[0].spec_name == "UnsafeIter"

    def test_emit_batch_counts_accepted(self):
        events, keep = paper_trace()
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=2, mode="inline"
        ) as service:
            accepted = service.emit_batch(events + [("nope", {})], _strict=False)
            assert accepted == len(events)

    def test_strict_unknown_event_raises(self):
        with MonitorService(compile_spec(UNSAFEITER), shards=2, mode="inline") as service:
            with pytest.raises(UnknownEventError):
                service.emit("nope")

    def test_on_verdict_callback_streams_records(self):
        events, keep = paper_trace()
        seen = []
        service = MonitorService(
            compile_spec(UNSAFEITER).silence(),
            shards=3,
            mode="inline",
            on_verdict=seen.append,
        )
        service.emit_batch(events)
        service.close()
        assert [record.category for record in seen] == ["match"]
        assert dict(seen[0].binding)["c"] is keep[0]

    def test_concurrent_emitters_preserve_per_slice_order(self):
        """Several producer threads share one service; each producer's
        slices must still see their events in that producer's order."""
        import threading

        producers = 4
        collections_each = 8
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        keep: list[Obj] = []

        def slice_events(tag: str):
            out = []
            for serial in range(collections_each):
                collection, iterator = Obj(f"c{tag}.{serial}"), Obj(f"i{tag}.{serial}")
                keep.extend((collection, iterator))
                out.extend(
                    [
                        ("create", {"c": collection, "i": iterator}),
                        ("update", {"c": collection}),
                        ("next", {"i": iterator}),
                    ]
                )
            return out
        per_producer = [slice_events(str(n)) for n in range(producers)]
        for events in per_producer:
            for event, params in events:
                engine.emit(event, **params)

        with MonitorService(
            compile_spec(UNSAFEITER).silence(),
            shards=4,
            system="rv",
            mode="thread",
            queue_capacity=4,
        ) as service:
            def producer(events):
                # Event-by-event, so producers genuinely interleave at the
                # route+enqueue boundary.
                for event, params in events:
                    service.emit(event, **params)

            threads = [
                threading.Thread(target=producer, args=(events,))
                for events in per_producer
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.drain()
            stats = service.stats_for("UnsafeIter")
            assert stats.verdicts == engine.stats_for("UnsafeIter").verdicts
            assert stats.events == engine.stats_for("UnsafeIter").events

    def test_backpressure_with_tiny_queue(self):
        spec = compile_spec(UNSAFEITER).silence()
        with MonitorService(
            spec, shards=2, mode="thread", queue_capacity=1, batch_size=1
        ) as service:
            collections = [Obj(f"c{n}") for n in range(16)]
            for serial, collection in enumerate(collections):
                iterator = Obj(f"i{serial}")
                service.emit("create", c=collection, i=iterator)
                service.emit("update", c=collection)
                service.emit("next", i=iterator)
            service.drain()
            assert service.stats_for("UnsafeIter").events == 48


class TestAggregation:
    def test_merged_stats_match_single_engine(self):
        events, keep = paper_trace()
        engine = MonitoringEngine(compile_spec(UNSAFEITER).silence(), system="rv")
        for event, params in events:
            engine.emit(event, **params)
        single = engine.stats_for("UnsafeIter")

        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=4, system="rv", mode="inline"
        ) as service:
            service.emit_batch(events)
            merged = service.stats_for("UnsafeIter")
            assert merged.events == single.events
            assert merged.monitors_created == single.monitors_created
            assert merged.verdicts == single.verdicts

    def test_per_shard_stats_partition_the_events(self):
        events, keep = paper_trace()
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=4, mode="inline"
        ) as service:
            service.emit_batch(events)
            per_shard = [
                stats[("UnsafeIter", "ere")].events for stats in service.per_shard_stats()
            ]
            assert sum(per_shard) == service.stats_for("UnsafeIter").events

    def test_engine_stats_snapshot_is_json_serializable(self):
        import json

        events, keep = paper_trace()
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=2, mode="inline"
        ) as service:
            service.emit_batch(events)
            for engine in service.engines:
                payload = json.loads(json.dumps(engine.stats_snapshot()))
                assert set(payload) == {"UnsafeIter/ere"}
                rebuilt = MonitorStats.from_snapshot(payload["UnsafeIter/ere"])
                assert rebuilt.events == payload["UnsafeIter/ere"]["events"]

    def test_monitor_stats_merge_and_snapshot_roundtrip(self):
        first = MonitorStats(events=3, monitors_created=2, handler_fires=1)
        first.record_verdict("match")
        second = MonitorStats(events=5, monitors_collected=1, peak_live_monitors=4)
        second.record_verdict("match")
        second.record_verdict("fail")
        merged = MonitorStats.merged([first, second])
        assert merged.events == 8
        assert merged.verdicts == {"match": 2, "fail": 1}
        assert first.events == 3  # inputs untouched
        rebuilt = MonitorStats.from_snapshot(merged.snapshot())
        assert rebuilt.snapshot() == merged.snapshot()


class TestLifecycle:
    def test_close_is_idempotent_and_emit_after_close_raises(self):
        service = MonitorService(compile_spec(UNSAFEITER), shards=2, mode="thread")
        service.close()
        service.close()
        with pytest.raises(ServiceError):
            service.emit("update", c=Obj("c"))

    def test_worker_failure_surfaces_at_drain(self):
        spec = compile_spec(UNSAFEITER)

        def explode(_name, _category, _binding):
            raise RuntimeError("handler boom")

        spec.properties[0].on("match", explode)
        events, keep = paper_trace()
        service = MonitorService(spec, shards=2, mode="thread")
        with pytest.raises(ServiceError, match="boom"):
            service.emit_batch(events)
            service.drain()
        with pytest.raises(ServiceError):
            service.close()

    def test_context_manager_closes(self):
        with MonitorService(compile_spec(UNSAFEITER), shards=2, mode="thread") as service:
            pass
        with pytest.raises(ServiceError):
            service.emit("update", c=Obj("c"))

    def test_close_leaks_no_worker_threads(self):
        import threading

        before = {thread.name for thread in threading.enumerate()}
        with MonitorService(compile_spec(UNSAFEITER), shards=3, mode="thread") as service:
            events, keep = paper_trace()
            service.emit_batch(events)
            service.drain()
        service.close()  # second close: still no-op, still no leaks
        leaked = {
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith("repro-shard-")
        } - before
        assert not leaked

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            MonitorService(compile_spec(UNSAFEITER), shards=0)
        with pytest.raises(ValueError):
            MonitorService(compile_spec(UNSAFEITER), mode="carrier-pigeon")
        with pytest.raises(ValueError):
            MonitorService([])


class TestSymbolicIngestion:
    def test_recorded_trace_replays_into_service(self):
        spec = compile_spec(UNSAFEITER).silence()
        engine = MonitoringEngine(spec, gc="none")
        sink = io.StringIO()
        TraceRecorder(sink).attach(engine)
        events, keep = paper_trace()
        for event, params in events:
            engine.emit(event, **params)
        entries = [
            (entry["event"], entry["params"])
            for entry in read_trace(sink.getvalue().splitlines())
        ]
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=4, system="rv", mode="inline"
        ) as service:
            alive = ingest_symbolic(service, entries)
            assert Counter(v.category for v in service.verdicts()) == Counter(
                engine.stats_for("UnsafeIter").verdicts
            )
            assert set(alive) == {"o1", "o2", "o3"}

    def test_retire_after_last_use_drops_tokens(self):
        events, keep = paper_trace()
        entries = [
            (event, {name: f"t{id(value)}" for name, value in params.items()})
            for event, params in events
        ]
        with MonitorService(
            compile_spec(UNSAFEITER).silence(), shards=2, system="rv", mode="inline"
        ) as service:
            alive = ingest_symbolic(service, entries, retire_after_last_use=True)
            assert alive == {}
