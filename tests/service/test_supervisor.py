"""Shard supervision: crash recovery, quarantine, shedding, health.

The acceptance property of the fault-tolerance plane: a supervised
service subjected to a seeded fault campaign yields the **same verdict
multiset** as an unfaulted single-engine run — restarts recover shard
state from checkpoint + journal suffix without creating, losing, or
duplicating a verdict, in thread and process mode alike.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter

import pytest

from repro.core.errors import ServiceError, SupervisionError
from repro.faults import FaultPlan, QuarantinePolicy
from repro.properties import ALL_PROPERTIES
from repro.runtime.engine import MonitoringEngine
from repro.service import MonitorService, ShardSupervisor, supervise

from ..conftest import Obj

POOL = 5
EVENTS = 400
MODES = ("thread", "process")


def synth_trace(definition, seed: int):
    rng = random.Random(seed)
    pools = {
        param: [Obj(f"{param}{n}") for n in range(POOL)]
        for param in definition.parameters
    }
    alphabet = sorted(definition.alphabet)
    trace = []
    for _ in range(EVENTS):
        event = rng.choice(alphabet)
        trace.append(
            (event, {p: rng.choice(pools[p]) for p in definition.params_of(event)})
        )
    return trace, pools


def single_engine_multiset(spec, trace) -> Counter:
    verdicts: Counter = Counter()

    def on_verdict(prop, category, monitor):
        verdicts[
            (
                prop.spec_name,
                prop.formalism,
                category,
                tuple(sorted((n, id(v)) for n, v in monitor.binding().items())),
            )
        ] += 1

    engine = MonitoringEngine(spec, system="rv", on_verdict=on_verdict)
    for event, params in trace:
        engine.emit(event, **params)
    return verdicts


def run_supervised(
    key, tmp_path, mode, plan, *, quarantine=None, options=None, shards=3
):
    paper = ALL_PROPERTIES[key]
    opts = {"checkpoint_interval": 48}
    opts.update(options or {})
    sup = supervise(
        paper.make().silence(),
        str(tmp_path / "sup"),
        plan=plan,
        quarantine=quarantine,
        shards=shards,
        system="rv",
        mode=mode,
        supervisor_options=opts,
    )
    return sup


@pytest.mark.parametrize("mode", MODES)
def test_crash_campaign_matches_single_engine(tmp_path, mode):
    key = "hasnext"
    paper = ALL_PROPERTIES[key]
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=zlib.crc32(key.encode()))
    want = single_engine_multiset(spec, trace)

    plan = FaultPlan.crash_campaign(seed=11, shards=3, deliveries=EVENTS, crashes=3)
    # Routing hashes object identities, so which shard sees how many
    # deliveries varies run to run; a low-ordinal crash on every shard
    # guarantees at least one fires regardless of the spread.
    for shard in range(3):
        plan.add("crash", shard=shard, at=10)
    with run_supervised(key, tmp_path, mode, plan) as sup:
        for start in range(0, EVENTS, 37):
            sup.service.emit_batch(trace[start : start + 37])
        sup.drain()
        got = sup.service.verdict_multiset()
        restarts = sup.restarts()
        quarantined = sup.quarantined()
        shed = sup.shed_counts()
    assert got == want
    assert restarts >= 1, "the campaign never fired"
    assert quarantined == []
    assert shed == {"property": 0, "sampled": 0}


@pytest.mark.parametrize("mode", MODES)
def test_explicit_mid_stream_crash_recovers_from_checkpoint(tmp_path, mode):
    key = "unsafeiter"
    paper = ALL_PROPERTIES[key]
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=7)
    want = single_engine_multiset(spec, trace)

    plan = FaultPlan()
    # Identity-hash routing spreads deliveries unpredictably across runs,
    # so arm the same mid-stream crash on every shard: whichever shard
    # reaches ordinal 60 dies there.
    for shard in range(3):
        plan.add("crash", shard=shard, at=60)
    with run_supervised(key, tmp_path, mode, plan) as sup:
        # Feed events until the busiest shard has ~30 deliveries (safely
        # before the crash ordinal), take a deterministic checkpoint
        # there, then pour in the rest — crashes fire past it.
        position = 0
        while max(s["deliveries"] for s in sup.health()["shards"]) < 30:
            sup.service.emit_batch(trace[position : position + 5])
            position += 5
        sup.drain()
        sup.checkpoint_now()
        checkpoints = [s["checkpoint"] for s in sup.health()["shards"]]
        sup.service.emit_batch(trace[position:])
        sup.drain()
        got = sup.service.verdict_multiset()
        health = sup.health()
    assert got == want
    restarted = [s for s in health["shards"] if s["restarts"]]
    assert restarted, "no shard reached the crash ordinal"
    for shard in restarted:
        assert shard["alive"] and shard["last_failure"] == "crash"
    # The checkpoint actually participated: every shard had one on disk
    # before any crash, so recovery replayed only the journal suffix.
    assert all(ckpt is not None for ckpt in checkpoints)
    assert max(ckpt["journal_seq"] for ckpt in checkpoints) > 0


@pytest.mark.parametrize("mode", MODES)
def test_poison_event_is_quarantined_with_provenance(tmp_path, mode):
    plan = FaultPlan()
    plan.add("poison", shard=0, at=10)
    key = "hasnext"
    paper = ALL_PROPERTIES[key]
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=5)
    # One shard, so the poisoned ordinal is deterministic.
    with run_supervised(
        key, tmp_path, mode, plan, shards=1,
        quarantine=QuarantinePolicy(retries=2, backoff=0.001),
    ) as sup:
        sup.service.emit_batch(trace)
        sup.drain()
        records = sup.quarantined()
        health = sup.health()
    assert len(records) == 1
    record = records[0]
    assert record["shard"] == 0
    assert record["attempts"] == 3  # first try + two retries
    assert "InjectedPoison" in record["error"]
    assert record["event"] in spec.definition.alphabet
    assert record["position"] == 10
    assert health["quarantine"]["depth"] == 1
    # Monitoring continued: no shard died over the poison.
    assert all(shard["restarts"] == 0 for shard in health["shards"])


@pytest.mark.parametrize("mode", MODES)
def test_serialize_fault_quarantines_too(tmp_path, mode):
    plan = FaultPlan()
    plan.add("serialize", shard=0, at=5)
    with run_supervised(
        "hasnext", tmp_path, mode, plan, shards=1,
        quarantine=QuarantinePolicy(retries=1, backoff=0.001),
    ) as sup:
        spec = ALL_PROPERTIES["hasnext"].make().silence()
        trace, pools = synth_trace(spec.definition, seed=9)
        sup.service.emit_batch(trace)
        sup.drain()
        records = sup.quarantined()
    assert len(records) == 1
    assert "serialize" in records[0]["error"]


@pytest.mark.parametrize("mode", MODES)
def test_queue_stall_fault_only_delays(tmp_path, mode):
    """A queue-delay fault slows a put but loses nothing."""
    plan = FaultPlan()
    plan.add("queue", shard=0, at=2, duration=0.05)
    key = "hasnext"
    spec = ALL_PROPERTIES[key].make().silence()
    trace, pools = synth_trace(spec.definition, seed=3)
    want = single_engine_multiset(spec, trace)
    if mode == "process":
        pytest.skip("queue faults hook the thread backend's shard queues")
    with run_supervised(key, tmp_path, mode, plan, shards=1) as sup:
        for start in range(0, EVENTS, 50):
            sup.service.emit_batch(trace[start : start + 50])
        sup.drain()
        got = sup.service.verdict_multiset()
    assert got == want
    assert not plan.armed(kind="queue")


def test_restart_budget_exhaustion_is_fatal(tmp_path):
    """A shard that keeps dying eventually fails the whole service."""
    plan = FaultPlan()
    for at in (2, 3, 4, 5):
        plan.add("crash", shard=0, at=at)
    paper = ALL_PROPERTIES["hasnext"]
    sup = supervise(
        paper.make().silence(),
        str(tmp_path / "sup"),
        plan=plan,
        shards=1,
        system="rv",
        mode="thread",
        supervisor_options={
            "restart_budget": 2,
            "restart_backoff": 0.001,
            "start": False,  # drive restarts explicitly, no health thread
        },
    )
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=1)
    # Budget exhaustion surfaces as SupervisionError from ensure_healthy,
    # or as the service-level failure on the next emit — whichever the
    # caller hits first (both are ServiceError).
    with pytest.raises(ServiceError):
        for event, params in trace:
            sup.service.emit_batch([(event, params)])
            sup.ensure_healthy()
    assert sup.health()["fatal"] is not None
    # close() re-raises the stored failure so unattended callers see it.
    with pytest.raises(ServiceError):
        sup.service.close()


def test_supervisor_rejects_inline_mode(tmp_path):
    service = MonitorService(
        ALL_PROPERTIES["hasnext"].make().silence(), shards=2, mode="inline"
    )
    with pytest.raises(SupervisionError):
        ShardSupervisor(service, str(tmp_path / "sup"))
    service.close()


def test_health_snapshot_shape(tmp_path):
    with run_supervised("hasnext", tmp_path, "thread", None) as sup:
        i = Obj("i")
        sup.service.emit("next", i=i)
        sup.drain()
        health = sup.health()
        del i
    assert health["mode"] == "thread"
    assert len(health["shards"]) == 3
    for shard in health["shards"]:
        assert shard["alive"] is True
        assert shard["restarts"] == 0
        assert shard["queue_capacity"] > 0
        assert shard["journal_error"] is None
    assert health["quarantine"]["depth"] == 0
    assert health["shed"] == {"level": 0, "counts": {"property": 0, "sampled": 0}}


def test_shed_ladder_escalates_and_deescalates(tmp_path):
    """Drive the shed ladder directly: level 1 drops only events declared
    solely by sheddable properties; level 2 samples; de-escalation
    restores everything. Counts are exact."""
    paper = ALL_PROPERTIES["hasnext"]
    service = MonitorService(
        paper.make().silence(), shards=2, system="rv", mode="thread"
    )
    # Every property of the spec is sheddable, so every event it declares
    # may be dropped whole at level 1.
    all_indexes = [
        index for index, prop in enumerate(service.properties) if prop is not None
    ]
    sup = ShardSupervisor(
        service,
        str(tmp_path / "sup"),
        sheddable=all_indexes,
        start=False,
    )
    i1 = Obj("i1")
    try:
        service.emit("next", i=i1)
        sup._escalate_shed()  # -> property shedding
        assert sup.shed_level == 1
        for _ in range(5):
            service.emit("next", i=i1)
        assert sup.shed_counts()["property"] == 5
        sup._escalate_shed()  # -> sampled shedding on top
        assert sup.shed_level == 2
        sup._deescalate_shed()
        assert sup.shed_level == 0
        service.emit("next", i=i1)
        sup.drain()
        # Exactly the unshed events reached the shards.
        assert service.stats_for("HasNext", "fsm").events == 2
        health = sup.health()
        assert health["shed"]["counts"]["property"] == 5
    finally:
        sup.close()
        del i1


@pytest.mark.parametrize("mode", MODES)
def test_restart_metrics_are_recorded(tmp_path, mode):
    plan = FaultPlan()
    # On every shard: identity-hash routing means any single shard may be
    # starved of deliveries in a given run, but never all of them.
    plan.add("crash", shard=0, at=20)
    plan.add("crash", shard=1, at=20)
    paper = ALL_PROPERTIES["hasnext"]
    sup = supervise(
        paper.make().silence(),
        str(tmp_path / "sup"),
        plan=plan,
        shards=2,
        system="rv",
        mode=mode,
        telemetry=True,
        supervisor_options={"checkpoint_interval": 16},
    )
    spec = paper.make().silence()
    trace, pools = synth_trace(spec.definition, seed=13)
    with sup:
        sup.service.emit_batch(trace)
        sup.drain()
        snapshot = sup.service.metrics_snapshot()
        restarts = sup.restarts()
    assert restarts >= 1
    total = sum(
        value
        for _key, value in snapshot["repro_shard_restarts_total"]["series"]
    )
    assert total == restarts
    alive = {
        tuple(key): value
        for key, value in snapshot["repro_shard_alive"]["series"]
    }
    assert all(value == 1 for value in alive.values())
