"""Spec compiler tests: templates, goals, handlers, static analyses."""

from __future__ import annotations

import pytest

from repro.core.errors import SpecCompileError
from repro.core.monitor import run_monitor
from repro.spec import compile_spec, load_spec

UNSAFEITER = """
UnsafeIter(c, i) {
  event create(c, i)
  event update(c)
  event next(i)
  ere: update* create next* update+ next
  @match "boom"
}
"""


class TestCompile:
    def test_event_definition(self):
        spec = compile_spec(UNSAFEITER)
        assert spec.definition.params_of("create") == {"c", "i"}
        assert spec.alphabet == {"create", "update", "next"}
        assert spec.parameters == ("c", "i")

    def test_goal_from_handlers(self):
        spec = compile_spec(UNSAFEITER)
        assert spec.properties[0].goal == frozenset({"match"})

    def test_default_goal_when_no_handler(self):
        spec = compile_spec(
            "P(x) {\n event e(x)\n ere: e\n}"
        )
        assert spec.properties[0].goal == frozenset({"match"})

    def test_default_goal_ltl(self):
        spec = compile_spec(
            "P(x) {\n event good(x)\n event bad(x)\n ltl: [] good\n}"
        )
        assert spec.properties[0].goal == frozenset({"violation"})

    def test_template_runs(self):
        spec = compile_spec(UNSAFEITER)
        template = spec.properties[0].template
        assert run_monitor(template, ["create", "update", "next"]) == "match"

    def test_static_analyses_present(self):
        prop = compile_spec(UNSAFEITER).properties[0]
        assert set(prop.coenable) == {"create", "update", "next"}
        assert set(prop.aliveness) == {"create", "update", "next"}
        assert set(prop.param_enable) == {"create", "update", "next"}

    def test_property_named(self):
        spec = compile_spec(UNSAFEITER)
        assert spec.property_named("ere") is spec.properties[0]
        with pytest.raises(SpecCompileError):
            spec.property_named("cfg")

    def test_formalism_error_wrapped(self):
        with pytest.raises(SpecCompileError):
            compile_spec("P(x) {\n event e(x)\n ere: e |\n @match\n}")

    def test_goal_category_must_exist(self):
        with pytest.raises(SpecCompileError):
            compile_spec("P(x) {\n event e(x)\n ere: e\n @violation\n}")

    def test_load_spec(self, tmp_path):
        path = tmp_path / "prop.rv"
        path.write_text(UNSAFEITER, encoding="utf-8")
        spec = load_spec(str(path))
        assert spec.name == "UnsafeIter"


class TestHandlers:
    def test_declared_message_prints(self, capsys):
        spec = compile_spec(UNSAFEITER)
        from repro.core.params import Binding

        spec.properties[0].fire("match", Binding())
        assert capsys.readouterr().out.strip() == "boom"

    def test_on_attaches_callable(self):
        spec = compile_spec(UNSAFEITER)
        calls = []
        spec.properties[0].on("match", lambda name, cat, b: calls.append((name, cat)))
        from repro.core.params import Binding

        spec.properties[0].fire("match", Binding())
        assert calls == [("UnsafeIter", "match")]

    def test_on_unknown_category_rejected(self):
        spec = compile_spec(UNSAFEITER)
        with pytest.raises(SpecCompileError):
            spec.properties[0].on("nonsense", lambda *a: None)

    def test_spec_level_on_requires_some_property(self):
        spec = compile_spec(UNSAFEITER)
        with pytest.raises(SpecCompileError):
            spec.on("nonsense", lambda *a: None)

    def test_silence_drops_handlers(self, capsys):
        spec = compile_spec(UNSAFEITER).silence()
        from repro.core.params import Binding

        spec.properties[0].fire("match", Binding())
        assert capsys.readouterr().out == ""

    def test_handled_categories(self):
        spec = compile_spec(UNSAFEITER)
        assert spec.properties[0].handled_categories == {"match"}


class TestAllPaperSpecs:
    def test_every_shipped_property_compiles_with_analyses(self):
        from repro.properties import ALL_PROPERTIES

        for key, prop in ALL_PROPERTIES.items():
            spec = prop.make()
            for compiled in spec.properties:
                assert compiled.goal, key
                assert compiled.aliveness, key
                assert compiled.param_enable, key
