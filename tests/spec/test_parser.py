"""Spec-language parser tests."""

from __future__ import annotations

import pytest

from repro.core.errors import SpecSyntaxError
from repro.spec.ast import EventDecl, HandlerDecl
from repro.spec.parser import parse_spec

HASNEXT = """
HasNext(i) {
  event hasnexttrue(i)
  event hasnextfalse(i)
  event next(i)

  fsm:
    unknown [ hasnexttrue -> more  hasnextfalse -> none  next -> error ]
    more    [ hasnexttrue -> more  next -> unknown ]
    none    [ hasnextfalse -> none  next -> error ]
    error   [ ]
  @error "improper Iterator use found!"

  ltl: [](next => (*)hasnexttrue)
  @violation "improper Iterator use found!"
}
"""


class TestHappyPath:
    def test_header(self):
        ast = parse_spec(HASNEXT)
        assert ast.name == "HasNext"
        assert ast.parameters == ("i",)

    def test_events(self):
        ast = parse_spec(HASNEXT)
        assert ast.events == (
            EventDecl("hasnexttrue", ("i",)),
            EventDecl("hasnextfalse", ("i",)),
            EventDecl("next", ("i",)),
        )

    def test_two_logic_blocks_with_their_handlers(self):
        ast = parse_spec(HASNEXT)
        assert [logic.formalism for logic in ast.logics] == ["fsm", "ltl"]
        fsm, ltl = ast.logics
        assert fsm.handlers == (HandlerDecl("error", "improper Iterator use found!"),)
        assert ltl.handlers == (
            HandlerDecl("violation", "improper Iterator use found!"),
        )

    def test_multiline_fsm_body_captured(self):
        ast = parse_spec(HASNEXT)
        body = ast.logics[0].body
        assert "unknown [" in body
        assert "error   [ ]" in body

    def test_handler_without_message(self):
        ast = parse_spec(
            "P(x) {\n event e(x)\n ere: e\n @match\n}"
        )
        assert ast.logics[0].handlers == (HandlerDecl("match", None),)

    def test_multiple_handlers_per_block(self):
        ast = parse_spec(
            'P(x) {\n event e(x)\n ere: e\n @match "m"\n @fail "f"\n}'
        )
        assert [h.category for h in ast.logics[0].handlers] == ["match", "fail"]

    def test_comments_stripped(self):
        ast = parse_spec(
            """
            P(x) {          // header comment
              event e(x)    # trailing comment
              ere: e e*     // pattern comment
              @match
            }
            """
        )
        assert ast.events[0].name == "e"
        assert "//" not in ast.logics[0].body

    def test_zero_parameter_event_allowed(self):
        ast = parse_spec("P(x) {\n event tick()\n event e(x)\n ere: tick e\n @match\n}")
        assert ast.events[0].params == ()

    def test_cfg_body_spans_lines(self):
        ast = parse_spec(
            """
            SafeLock(l, t) {
              event acquire(l, t)
              event release(l, t)
              cfg: S -> S acquire S release
                 | epsilon
              @fail
            }
            """
        )
        assert "|" in ast.logics[0].body


class TestErrors:
    @pytest.mark.parametrize(
        "text,needle",
        [
            ("", "empty"),
            ("P(x) {", "closing"),
            ("nonsense here", "header"),
            ("P(x) {\n ere: e\n}", "no events"),
            ("P(x) {\n event e(x)\n}", "no logic"),
            ("P(x) {\n event e(y)\n ere: e\n}", "undeclared"),
            ("P(x) {\n event e(x)\n event e(x)\n ere: e\n}", "twice"),
            ("P(x) {\n event e(x)\n @match\n ere: e\n}", "before any logic"),
            ("P(x, x) {\n event e(x)\n ere: e\n}", "duplicate"),
            ("P(x) {\n event e(x)\n ere:\n @match\n}", "empty"),
            ("P(x) {\n event e(x)\n ere: e\n @match\n garbage line\n}", "cannot parse"),
        ],
    )
    def test_rejects(self, text, needle):
        with pytest.raises(SpecSyntaxError) as excinfo:
            parse_spec(text)
        assert needle in str(excinfo.value).lower()

    def test_bad_parameter_name(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("P(1x) {\n event e(1x)\n ere: e\n}")
