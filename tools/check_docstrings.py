#!/usr/bin/env python3
"""D1xx-style docstring lint for the public API surface (stdlib-only).

The container bakes no third-party linters, so this is a minimal
pydocstyle/ruff-D1xx equivalent implemented on ``ast``: it reports
**missing** docstrings on

* the module itself (D100),
* public classes (D101),
* public methods of public classes (D102),
* public module-level functions (D103).

"Public" means the name has no leading underscore (dunder methods other
than ``__init__`` are exempt, as are ``@overload``/``@property`` setters'
duplicates — anything whose body is a bare ``...``/``pass`` stub).
Nested (function-local) definitions are never required to carry
docstrings.

Usage::

    python tools/check_docstrings.py FILE [FILE ...]

Exit status 1 if any finding is reported.  CI runs it over the modules
named in :data:`DEFAULT_TARGETS`; the tier-1 suite mirrors it in
``tests/docs/test_docstring_lint.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: The public-API modules the docstring gate protects (repo-relative).
DEFAULT_TARGETS = (
    "src/repro/runtime/engine.py",
    "src/repro/runtime/tracelog.py",
    "src/repro/service/service.py",
    "src/repro/spec/registry.py",
    "src/repro/persist/recovery.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/telemetry.py",
    "src/repro/obs/http.py",
    "src/repro/obs/provenance.py",
    "src/repro/obs/sink.py",
    "src/repro/instrument/live.py",
    "src/repro/instrument/aspects.py",
    "src/repro/properties/__init__.py",
    "src/repro/properties/live_resources.py",
    "src/repro/properties/protocol.py",
    "src/repro/app/server.py",
    "src/repro/app/driver.py",
    "src/repro/app/weave.py",
)


def _is_stub(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Bodies that are a bare ``...`` / ``pass`` / docstring-only stub."""
    body = node.body
    if len(body) != 1:
        return False
    only = body[0]
    if isinstance(only, ast.Pass):
        return True
    return isinstance(only, ast.Expr) and isinstance(only.value, ast.Constant)


def _wants_docstring(name: str) -> bool:
    if name == "__init__":
        return False  # documented on the class (the codebase's convention)
    if name.startswith("__") and name.endswith("__"):
        return False
    return not name.startswith("_")


def check_file(path: Path) -> list[str]:
    """All missing-docstring findings for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: list[str] = []
    if ast.get_docstring(tree) is None:
        findings.append(f"{path}:1 D100 missing module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _wants_docstring(node.name) and not _is_stub(node):
                if ast.get_docstring(node) is None:
                    findings.append(
                        f"{path}:{node.lineno} D103 missing docstring on "
                        f"function {node.name!r}"
                    )
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                findings.append(
                    f"{path}:{node.lineno} D101 missing docstring on "
                    f"class {node.name!r}"
                )
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _wants_docstring(member.name) or _is_stub(member):
                    continue
                if ast.get_docstring(member) is None:
                    findings.append(
                        f"{path}:{member.lineno} D102 missing docstring on "
                        f"method {node.name}.{member.name!r}"
                    )
    return findings


def main(argv: list[str]) -> int:
    """CLI entry point: lint the given files (or the default targets)."""
    targets = [Path(arg) for arg in argv] or [Path(t) for t in DEFAULT_TARGETS]
    all_findings: list[str] = []
    for target in targets:
        if not target.exists():
            all_findings.append(f"{target}: file does not exist")
            continue
        all_findings.extend(check_file(target))
    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"\n{len(all_findings)} docstring finding(s)")
        return 1
    print(f"docstring lint clean over {len(targets)} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
