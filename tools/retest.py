#!/usr/bin/env python3
"""Rerun a (failing) test repeatedly and report its pass rate.

The repo's flake policy is zero tolerance: the ``flaky`` marker must have
no members (``tests/meta/test_flake_policy.py`` enforces it), so a test
that fails intermittently has to be diagnosed, not quarantined.  This
tool is the diagnosis step — it answers "how flaky is it?" with data::

    python tools/retest.py tests/app/test_leak_flat.py -n 20
    python tools/retest.py "tests/x.py::test_y" -n 50 -- -q -x

Everything after ``--`` is forwarded to pytest verbatim.  Each run is a
fresh interpreter (a fresh event loop, fresh import state, fresh RNG
default state), so cross-run contamination cannot mask the flake.  Exit
status is 0 only for a 100% pass rate.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time


def run_once(test_id: str, pytest_args: list[str]) -> bool:
    """One fresh-interpreter pytest run; True when it passed."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", test_id, *pytest_args],
        env=env,
        capture_output=True,
        text=True,
    )
    return proc.returncode == 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if "--" in raw:
        split = raw.index("--")
        raw, forwarded = raw[:split], raw[split + 1:]
    else:
        forwarded = []
    parser = argparse.ArgumentParser(
        description="Rerun a test N times and report its pass rate "
        "(args after -- are forwarded to pytest).",
    )
    parser.add_argument("test", help="pytest node id or file to rerun")
    parser.add_argument("-n", "--runs", type=int, default=10,
                        help="number of fresh-interpreter runs (default 10)")
    args = parser.parse_args(raw)
    if args.runs < 1:
        parser.error("--runs must be >= 1")

    pytest_args = forwarded or ["-q"]
    passes = 0
    started = time.monotonic()
    for attempt in range(1, args.runs + 1):
        ok = run_once(args.test, pytest_args)
        passes += ok
        print(f"run {attempt:>3}/{args.runs}: {'pass' if ok else 'FAIL'}",
              flush=True)
    elapsed = time.monotonic() - started
    rate = passes / args.runs
    print(f"\npass rate: {passes}/{args.runs} ({rate:.0%}) "
          f"in {elapsed:.1f}s")
    if passes < args.runs:
        print("verdict: FLAKY — fix the test or the code; the flaky marker "
              "is not an option (zero-member policy)")
        return 1
    print("verdict: stable across all runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
